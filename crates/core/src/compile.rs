//! Compilation of the XQuery Core into the algebra — Section 4, Figs. 2–3.
//!
//! The compiler maintains an environment mapping in-scope FLWOR/quantifier
//! variables to tuple-field names; every reference to a bound variable
//! compiles to `IN#field` (the paper's `Clauses[$Var/IN#Var]` substitution).
//! Shadowed variables get fresh field names. Variables *not* in the tuple
//! environment (globals and function parameters) compile to `Var[q]`, which
//! resolves in the algebra context at evaluation time.
//!
//! A FLWOR nested inside an item expression compiles with `IN` as its
//! initial tuple stream (so outer fields flow through the dependent join);
//! a top-level FLWOR starts from `([])`, the singleton empty-tuple table
//! (paper plan P1, line 13).

use std::collections::HashMap;

use xqr_frontend::core_ast::{CoreClause, CoreExpr, CoreModule, CoreOrderSpec};
use xqr_frontend::CoreFunction;
use xqr_xml::axes::{Axis, KindTest, NodeTest};
use xqr_xml::QName;

use crate::algebra::{Field, NamePlan, Op, OrderSpecPlan, Plan};

/// A compiled user function.
#[derive(Clone, Debug)]
pub struct CompiledFunction {
    pub name: QName,
    pub params: Vec<QName>,
    pub param_types: Vec<Option<xqr_types::SequenceType>>,
    pub return_type: Option<xqr_types::SequenceType>,
    pub body: Plan,
}

/// A compiled module: the algebra context of Section 3 ("function
/// parameters and the compiled query plans for user-defined functions").
#[derive(Clone, Debug)]
pub struct CompiledModule {
    pub functions: HashMap<QName, CompiledFunction>,
    /// Globals in declaration order (externals are the plan's parameters).
    pub globals: Vec<CompiledGlobal>,
    pub body: Plan,
}

/// One compiled global variable.
///
/// External globals are the compiled plan's *parameters*: `plan` (when
/// present) compiles the declared default value, and the actual argument
/// bound at execution time is checked against `as_type`. For ordinary
/// globals and lifted constants `plan` is the initializer.
#[derive(Clone, Debug)]
pub struct CompiledGlobal {
    pub name: QName,
    pub as_type: Option<xqr_types::SequenceType>,
    pub external: bool,
    pub plan: Option<Plan>,
}

impl CompiledModule {
    /// The module's external parameters (name, declared type, has-default).
    pub fn parameters(&self) -> impl Iterator<Item = &CompiledGlobal> {
        self.globals.iter().filter(|g| g.external)
    }
}

/// Compiles a normalized module.
pub fn compile_module(m: &CoreModule) -> CompiledModule {
    let mut c = Compiler::default();
    let mut functions = HashMap::new();
    for f in &m.functions {
        functions.insert(f.name.clone(), compile_function(&mut c, f));
    }
    let mut globals: Vec<CompiledGlobal> = m
        .variables
        .iter()
        .map(|g| CompiledGlobal {
            name: g.name.clone(),
            as_type: g.as_type.clone(),
            external: g.external,
            plan: g.value.as_ref().map(|e| c.expr(e, &Env::empty())),
        })
        .collect();
    // Constant lifting applies only to the main body: leading `let` clauses
    // of the top-level FLWOR whose values reference no tuple fields (e.g.
    // `let $auction := doc('auction.xml')`) become algebra-context globals,
    // so downstream plans that read them stay "independent of IN" and the
    // join/unnesting rewritings apply.
    c.allow_constant_lift = true;
    let body = c.expr(&m.body, &Env::empty());
    c.allow_constant_lift = false;
    globals.extend(c.lifted.drain(..).map(|(q, p)| CompiledGlobal {
        name: q,
        as_type: None,
        external: false,
        plan: Some(p),
    }));
    CompiledModule {
        functions,
        globals,
        body,
    }
}

/// Compiles a single expression with no variables in scope (for tests).
pub fn compile_expr(e: &CoreExpr) -> Plan {
    Compiler::default().expr(e, &Env::empty())
}

fn compile_function(c: &mut Compiler, f: &CoreFunction) -> CompiledFunction {
    // Function parameters live in the algebra context (Var), not in tuples.
    let body = c.expr(&f.body, &Env::empty());
    CompiledFunction {
        name: f.name.clone(),
        params: f.params.iter().map(|(q, _)| q.clone()).collect(),
        param_types: f.params.iter().map(|(_, t)| t.clone()).collect(),
        return_type: f.return_type.clone(),
        body,
    }
}

/// Variable → tuple-field environment (persistent: clones are cheap since
/// scopes are small).
#[derive(Clone, Default)]
struct Env {
    bindings: HashMap<QName, Field>,
    /// Variables lifted into algebra-context constants (compile to `Var`).
    constants: HashMap<QName, QName>,
    /// True when an enclosing tuple stream exists (so nested FLWORs start
    /// from `IN` rather than `([])`).
    in_tuple_context: bool,
    /// True inside conditionally-evaluated branches (if/typeswitch):
    /// lifting a `let` out of those would evaluate it unconditionally and
    /// change error behavior.
    conditional: bool,
}

impl Env {
    fn empty() -> Env {
        Env::default()
    }

    fn lookup(&self, q: &QName) -> Option<&Field> {
        self.bindings.get(q)
    }
}

#[derive(Default)]
struct Compiler {
    fresh: usize,
    /// Lifted constants, appended to the module globals (main body only).
    lifted: Vec<(QName, Plan)>,
    allow_constant_lift: bool,
}

impl Compiler {
    /// Allocates a fresh field name derived from a variable name.
    fn fresh_field(&mut self, base: &str) -> Field {
        self.fresh += 1;
        // Strip normalization prefixes for readability: fs:dot → dot.
        let short = base.rsplit(':').next().unwrap_or(base);
        let short = short.split('#').next().unwrap_or(short);
        if self.fresh == 1 {
            // Keep the very first binding of a name pretty when possible.
        }
        format!("{short}_{}", self.fresh).into()
    }

    fn expr(&mut self, e: &CoreExpr, env: &Env) -> Plan {
        match e {
            CoreExpr::Literal(v) => Plan::new(Op::Scalar(v.clone())),
            CoreExpr::Var(q) => match env.lookup(q) {
                Some(f) => Plan::new(Op::FieldAccess {
                    field: f.clone(),
                    input: Plan::boxed(Op::Input),
                }),
                None => match env.constants.get(q) {
                    Some(lifted) => Plan::new(Op::Var(lifted.clone())),
                    None => Plan::new(Op::Var(q.clone())),
                },
            },
            CoreExpr::Seq(items) => Plan::new(Op::Sequence(
                items.iter().map(|i| self.expr(i, env)).collect(),
            )),
            CoreExpr::Empty => Plan::new(Op::Empty),
            CoreExpr::Flwor { clauses, ret } => self.flwor(clauses, ret, env),
            CoreExpr::Quantified {
                every,
                clauses,
                satisfies,
            } => {
                let (plan, inner_env) = self.clauses(clauses, env);
                let pred = self.expr(satisfies, &inner_env);
                if *every {
                    Plan::new(Op::MapEvery {
                        dep: Box::new(pred),
                        input: Box::new(plan),
                    })
                } else {
                    Plan::new(Op::MapSome {
                        dep: Box::new(pred),
                        input: Box::new(plan),
                    })
                }
            }
            CoreExpr::Typeswitch {
                var,
                input,
                cases,
                default,
            } => self.typeswitch(var, input, cases, default, env),
            CoreExpr::If { cond, then, els } => {
                let mut branch_env = env.clone();
                branch_env.conditional = true;
                Plan::new(Op::Cond {
                    cond: Box::new(self.expr(cond, env)),
                    then: Box::new(self.expr(then, &branch_env)),
                    els: Box::new(self.expr(els, &branch_env)),
                })
            }
            CoreExpr::Step { input, axis, test } => {
                let input = self.expr(input, env);
                // Peephole: `descendant-or-self::node()/child::T` (the
                // expansion of `//T`) is exactly `descendant::T` — one
                // range/postings scan instead of materializing every node
                // of the subtree as an intermediate context set. Sound
                // because child never yields attributes and the descendant
                // kernel skips them; dedup/order are preserved (both sides
                // emit a duplicate-free document-order set).
                if *axis == Axis::Child {
                    if let Op::TreeJoin {
                        axis: Axis::DescendantOrSelf,
                        test: NodeTest::Kind(KindTest::AnyKind),
                        input: inner,
                    } = &input.op
                    {
                        return Plan::new(Op::TreeJoin {
                            axis: Axis::Descendant,
                            test: test.clone(),
                            input: inner.clone(),
                        });
                    }
                }
                Plan::new(Op::TreeJoin {
                    axis: *axis,
                    test: test.clone(),
                    input: Box::new(input),
                })
            }
            CoreExpr::Call { name, args } => {
                let args: Vec<Plan> = args.iter().map(|a| self.expr(a, env)).collect();
                match name.local_part() {
                    // fn:doc / document() compile to the Parse operator.
                    "doc" | "document" if args.len() == 1 => Plan::new(Op::Parse {
                        uri: Box::new(args.into_iter().next().expect("one arg")),
                    }),
                    "serialize" if args.len() == 1 => Plan::new(Op::Serialize {
                        input: Box::new(args.into_iter().next().expect("one arg")),
                    }),
                    _ => Plan::new(Op::Call {
                        name: name.clone(),
                        args,
                    }),
                }
            }
            CoreExpr::ElementCtor { name, content } => Plan::new(Op::Element {
                name: self.name_plan(name, env),
                content: Box::new(self.expr(content, env)),
            }),
            CoreExpr::AttributeCtor { name, content } => Plan::new(Op::Attribute {
                name: self.name_plan(name, env),
                content: Box::new(self.expr(content, env)),
            }),
            CoreExpr::TextCtor(c) => Plan::new(Op::Text(Box::new(self.expr(c, env)))),
            CoreExpr::CommentCtor(c) => Plan::new(Op::Comment(Box::new(self.expr(c, env)))),
            CoreExpr::PiCtor { target, content } => Plan::new(Op::Pi {
                target: target.clone(),
                content: Box::new(self.expr(content, env)),
            }),
            CoreExpr::DocumentCtor(c) => Plan::new(Op::DocumentNode(Box::new(self.expr(c, env)))),
            CoreExpr::Cast { expr, ty, optional } => Plan::new(Op::Cast {
                ty: *ty,
                optional: *optional,
                input: Box::new(self.expr(expr, env)),
            }),
            CoreExpr::Castable { expr, ty, optional } => Plan::new(Op::Castable {
                ty: *ty,
                optional: *optional,
                input: Box::new(self.expr(expr, env)),
            }),
            CoreExpr::TypeAssert { expr, st } => Plan::new(Op::TypeAssert {
                st: st.clone(),
                input: Box::new(self.expr(expr, env)),
            }),
            CoreExpr::InstanceOf { expr, st } => Plan::new(Op::TypeMatches {
                st: st.clone(),
                input: Box::new(self.expr(expr, env)),
            }),
            CoreExpr::Validate { mode, expr } => Plan::new(Op::Validate {
                mode: *mode,
                input: Box::new(self.expr(expr, env)),
            }),
        }
    }

    fn name_plan(&mut self, name: &Result<QName, Box<CoreExpr>>, env: &Env) -> NamePlan {
        match name {
            Ok(q) => NamePlan::Static(q.clone()),
            Err(e) => NamePlan::Dynamic(Box::new(self.expr(e, env))),
        }
    }

    /// Compiles a clause list into a tuple-stream plan, per Fig. 2,
    /// returning the plan and the extended environment.
    fn clauses(&mut self, clauses: &[CoreClause], env: &Env) -> (Plan, Env) {
        let can_lift = self.allow_constant_lift && !env.in_tuple_context && !env.conditional;
        let mut plan = if env.in_tuple_context {
            Plan::input()
        } else {
            Plan::new(Op::TupleTable)
        };
        let mut env = env.clone();
        env.in_tuple_context = true;
        for clause in clauses {
            match clause {
                CoreClause::For {
                    var,
                    at,
                    as_type,
                    expr,
                } => {
                    // (FOR): MapConcat{MapFromItem{[x : [as T](IN)]}(E)}(Op0)
                    let source = self.expr(expr, &env);
                    let field = self.fresh_field(var.local_part());
                    let item_plan = match as_type {
                        Some(st) => Plan::new(Op::TypeAssert {
                            st: per_item_type(st),
                            input: Plan::boxed(Op::Input),
                        }),
                        None => Plan::input(),
                    };
                    let from_item = Plan::new(Op::MapFromItem {
                        dep: Plan::boxed(Op::Tuple(vec![(field.clone(), item_plan)])),
                        input: Box::new(source),
                    });
                    plan = Plan::new(Op::MapConcat {
                        dep: Box::new(from_item),
                        input: Box::new(plan),
                    });
                    env.bindings.insert(var.clone(), field);
                    if let Some(at_var) = at {
                        let at_field = self.fresh_field(at_var.local_part());
                        plan = Plan::new(Op::MapIndex {
                            field: at_field.clone(),
                            input: Box::new(plan),
                        });
                        env.bindings.insert(at_var.clone(), at_field);
                    }
                }
                CoreClause::Let { var, as_type, expr } => {
                    // (LET): MapConcat{[x : [as T](E)]}(Op0)
                    let mut value = self.expr(expr, &env);
                    if let Some(st) = as_type {
                        value = Plan::new(Op::TypeAssert {
                            st: st.clone(),
                            input: Box::new(value),
                        });
                    }
                    // Constant lifting (main body, top-level FLWOR): a let
                    // whose value reads no tuple fields is loop-invariant
                    // and becomes an algebra-context constant.
                    if can_lift && !crate::fields::uses_input(&value) {
                        self.fresh += 1;
                        let lifted_name =
                            QName::local(&format!("fs:const-{}#{}", var.local_part(), self.fresh));
                        self.lifted.push((lifted_name.clone(), value));
                        env.bindings.remove(var);
                        env.constants.insert(var.clone(), lifted_name);
                        continue;
                    }
                    let field = self.fresh_field(var.local_part());
                    plan = Plan::new(Op::MapConcat {
                        dep: Plan::boxed(Op::Tuple(vec![(field.clone(), value)])),
                        input: Box::new(plan),
                    });
                    env.bindings.insert(var.clone(), field);
                }
                CoreClause::Where(pred) => {
                    // (WHERE): Select{E}(Op0)
                    let p = self.expr(pred, &env);
                    plan = Plan::new(Op::Select {
                        pred: Box::new(p),
                        input: Box::new(plan),
                    });
                }
                CoreClause::OrderBy(specs) => {
                    // (ORDERBY): OrderBy{keys}(Op0)
                    let specs = specs
                        .iter()
                        .map(|s: &CoreOrderSpec| OrderSpecPlan {
                            key: self.expr(&s.key, &env),
                            descending: s.descending,
                            empty_least: s.empty_least,
                        })
                        .collect();
                    plan = Plan::new(Op::OrderBy {
                        specs,
                        input: Box::new(plan),
                    });
                }
            }
        }
        // If every clause was lifted (the stream is still `([])` with no
        // field bindings), the return clause is still in constant context:
        // chains of top-level `let … return let … return …` keep lifting.
        if can_lift && matches!(plan.op, Op::TupleTable) {
            env.in_tuple_context = false;
        }
        (plan, env)
    }

    fn flwor(&mut self, clauses: &[CoreClause], ret: &CoreExpr, env: &Env) -> Plan {
        let (plan, inner_env) = self.clauses(clauses, env);
        let ret_plan = self.expr(ret, &inner_env);
        Plan::new(Op::MapToItem {
            dep: Box::new(ret_plan),
            input: Box::new(plan),
        })
    }

    /// Fig. 3: typeswitch compiles to a tuple holding the operand in the
    /// common variable's field, concatenated with the enclosing tuple, under
    /// a MapToItem whose dependent plan is a Cond cascade of TypeMatches.
    fn typeswitch(
        &mut self,
        var: &QName,
        input: &CoreExpr,
        cases: &[(xqr_types::SequenceType, CoreExpr)],
        default: &CoreExpr,
        env: &Env,
    ) -> Plan {
        let operand = self.expr(input, env);
        let field = self.fresh_field(var.local_part());
        let tuple = Plan::new(Op::Tuple(vec![(field.clone(), operand)]));
        let table = if env.in_tuple_context {
            Plan::new(Op::TupleConcat(Box::new(tuple), Plan::boxed(Op::Input)))
        } else {
            tuple
        };
        let mut inner_env = env.clone();
        inner_env.in_tuple_context = true;
        inner_env.conditional = true;
        inner_env.bindings.insert(var.clone(), field.clone());
        // Build the Cond cascade from the last case outward.
        let mut acc = self.expr(default, &inner_env);
        for (st, body) in cases.iter().rev() {
            let then = self.expr(body, &inner_env);
            let cond = Plan::new(Op::TypeMatches {
                st: st.clone(),
                input: Box::new(Plan::new(Op::FieldAccess {
                    field: field.clone(),
                    input: Plan::boxed(Op::Input),
                })),
            });
            acc = Plan::new(Op::Cond {
                cond: Box::new(cond),
                then: Box::new(then),
                els: Box::new(acc),
            });
        }
        Plan::new(Op::MapToItem {
            dep: Box::new(acc),
            input: Box::new(table),
        })
    }
}

/// For-clause `as T` assertions apply per item: strip the occurrence
/// indicator down to exactly-one.
fn per_item_type(st: &xqr_types::SequenceType) -> xqr_types::SequenceType {
    xqr_types::SequenceType::new(st.item.clone(), xqr_types::Occurrence::One)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algebra::count_ops;
    use crate::pretty::compact;
    use xqr_frontend::parser::parse_expr_str;

    fn compile(q: &str) -> Plan {
        let e = parse_expr_str(q).unwrap();
        let core = xqr_frontend::normalize::normalize_expr(&e);
        compile_expr(&core)
    }

    #[test]
    fn for_clause_matches_paper_rule() {
        // Op_for from Section 4:
        // MapConcat{MapFromItem{[p:IN]}(TreeJoin…)}(([])) under MapToItem.
        let p = compile("for $p in $auction//person return $p");
        let Op::MapToItem { dep, input } = &p.op else {
            panic!("MapToItem")
        };
        assert!(matches!(dep.op, Op::FieldAccess { .. }));
        let Op::MapConcat {
            dep: mc_dep,
            input: mc_in,
        } = &input.op
        else {
            panic!("MapConcat, got {}", compact(input));
        };
        assert!(matches!(mc_in.op, Op::TupleTable));
        let Op::MapFromItem { dep: tuple, .. } = &mc_dep.op else {
            panic!("MapFromItem")
        };
        assert!(matches!(tuple.op, Op::Tuple(ref fs) if fs.len() == 1));
    }

    #[test]
    fn let_clause_matches_paper_rule() {
        let p = compile("for $p in $s let $a := count($p) return $a");
        // let compiles to MapConcat{[a: Call[count](IN#p)]}(…)
        let Op::MapToItem { input, .. } = &p.op else {
            panic!()
        };
        let Op::MapConcat { dep, .. } = &input.op else {
            panic!("let MapConcat")
        };
        let Op::Tuple(fields) = &dep.op else {
            panic!("Tuple, got {}", compact(dep))
        };
        assert_eq!(fields.len(), 1);
        assert!(fields[0].0.starts_with('a'));
        assert!(matches!(fields[0].1.op, Op::Call { .. }));
    }

    #[test]
    fn at_clause_adds_map_index() {
        let p = compile("for $x at $i in (1,2,3) return $i");
        assert_eq!(count_ops(&p, &|o| matches!(o, Op::MapIndex { .. })), 1);
    }

    #[test]
    fn where_becomes_select() {
        let p = compile("for $x in $s where $x = 1 return $x");
        assert_eq!(count_ops(&p, &|o| matches!(o, Op::Select { .. })), 1);
    }

    #[test]
    fn order_by_becomes_orderby() {
        let p = compile("for $x in $s order by $x descending return $x");
        assert_eq!(count_ops(&p, &|o| matches!(o, Op::OrderBy { .. })), 1);
    }

    #[test]
    fn nested_flwor_starts_from_input() {
        let p = compile("for $p in $s return (for $t in $u return ($p, $t))");
        // The inner FLWOR's first MapConcat must have IN (not ([])) as input.
        let mut found_inner_input = false;
        fn walk(p: &Plan, found: &mut bool) {
            if let Op::MapConcat { input, .. } = &p.op {
                if matches!(input.op, Op::Input) {
                    *found = true;
                }
            }
            for (c, _) in p.op.children() {
                walk(c, found);
            }
        }
        walk(&p, &mut found_inner_input);
        assert!(
            found_inner_input,
            "nested FLWOR compiled against IN: {}",
            compact(&p)
        );
    }

    #[test]
    fn variable_shadowing_gets_distinct_fields() {
        let p = compile("for $x in $s return (for $x in $t return $x)");
        // Two tuple constructors with different field names.
        let mut fields = Vec::new();
        fn collect(p: &Plan, out: &mut Vec<String>) {
            if let Op::Tuple(fs) = &p.op {
                for (f, _) in fs {
                    out.push(f.to_string());
                }
            }
            for (c, _) in p.op.children() {
                collect(c, out);
            }
        }
        collect(&p, &mut fields);
        assert_eq!(fields.len(), 2);
        assert_ne!(fields[0], fields[1]);
    }

    #[test]
    fn quantifier_compiles_to_map_some() {
        let p = compile("some $x in (1,2) satisfies $x = 2");
        assert!(matches!(p.op, Op::MapSome { .. }));
        let p = compile("every $x in (1,2) satisfies $x = 2");
        assert!(matches!(p.op, Op::MapEvery { .. }));
    }

    #[test]
    fn typeswitch_matches_fig3() {
        let p = compile(
            "typeswitch ($a) case $u as xs:integer return $u \
             case xs:string return 1 default return 2",
        );
        // MapToItem{Cond{…, Cond{…}(TypeMatches)}(TypeMatches)}([x: $a])
        let Op::MapToItem { dep, input } = &p.op else {
            panic!()
        };
        assert!(
            matches!(input.op, Op::Tuple(_)),
            "top-level: no ++IN needed"
        );
        let Op::Cond { cond, els, .. } = &dep.op else {
            panic!("Cond cascade")
        };
        assert!(matches!(cond.op, Op::TypeMatches { .. }));
        assert!(
            matches!(els.op, Op::Cond { .. }),
            "second case nested in else"
        );
    }

    #[test]
    fn for_as_type_asserts_per_item() {
        let p = compile("for $a as element(*,Auction)* in $s return $a");
        let mut asserted = None;
        fn find(p: &Plan, out: &mut Option<xqr_types::SequenceType>) {
            if let Op::TypeAssert { st, .. } = &p.op {
                *out = Some(st.clone());
            }
            for (c, _) in p.op.children() {
                find(c, out);
            }
        }
        find(&p, &mut asserted);
        let st = asserted.expect("TypeAssert present");
        assert_eq!(st.occ, xqr_types::Occurrence::One, "per-item assertion");
    }

    #[test]
    fn doc_call_becomes_parse() {
        let p = compile("doc('auction.xml')");
        assert!(matches!(p.op, Op::Parse { .. }));
    }

    #[test]
    fn paper_q8_naive_plan_shape() {
        // The Section 2 example must produce the P1 ingredients: two
        // MapFromItem/MapConcat pairs, a Select, a Validate, a TypeAssert.
        let p = compile(
            "for $p in $auction//person \
             let $a as element(*,Auction)* := \
                for $t in $auction//closed_auction \
                where $t/buyer/@person = $p/@id \
                return validate { $t } \
             return <item person=\"{$p/name/text()}\">{ count($a/element(*,USSeller)) }</item>",
        );
        assert_eq!(count_ops(&p, &|o| matches!(o, Op::MapFromItem { .. })), 2);
        assert_eq!(count_ops(&p, &|o| matches!(o, Op::Select { .. })), 1);
        assert_eq!(count_ops(&p, &|o| matches!(o, Op::Validate { .. })), 1);
        assert_eq!(count_ops(&p, &|o| matches!(o, Op::TypeAssert { .. })), 1);
        assert_eq!(count_ops(&p, &|o| matches!(o, Op::Element { .. })), 1);
        assert_eq!(count_ops(&p, &|o| matches!(o, Op::TupleTable)), 1);
    }
}
