//! Peephole analysis marking *fusable* comparison predicates.
//!
//! The compiler lowers value predicates and arithmetic into per-tuple
//! `Call[fs:*]` nodes; profiling shows these dominate the value-heavy
//! XMark queries (one dynamic dispatch, one atomization, one type
//! promotion per row). The batched executor in `xqr-runtime` replaces
//! those chains with type-specialized kernels — but only for predicate
//! shapes this module certifies: a single two-argument `fs:general-*` /
//! `fs:value-*` comparison whose operands are *fusable chains*
//! (deterministic, side-effect-free expressions that read the input tuple
//! through field access only). Anything else keeps the scalar path.
//!
//! The analysis is purely structural and lives in `xqr-core` beside the
//! other plan analyses (`fields`), so both the runtime and the explain
//! machinery can consult it without duplicating the shape rules.

use crate::algebra::{Op, Plan};

/// A comparison predicate split into its operator name and operands.
pub struct ComparisonSplit<'p> {
    /// The builtin's local name (`fs:general-gt`, `fs:value-eq`, …).
    pub name: &'p str,
    /// The two-letter operator suffix (`eq`, `ne`, `lt`, `le`, `gt`, `ge`).
    pub suffix: &'p str,
    /// General (existential, atomizing, error-swallowing) vs value
    /// (singleton, strict) comparison semantics.
    pub general: bool,
    pub lhs: &'p Plan,
    pub rhs: &'p Plan,
}

/// Splits a predicate of the shape `Call[fs:general-*|fs:value-*](a, b)`.
pub fn comparison_split(pred: &Plan) -> Option<ComparisonSplit<'_>> {
    let Op::Call { name, args } = &pred.op else {
        return None;
    };
    if args.len() != 2 {
        return None;
    }
    let local = name.local_part();
    let (general, suffix) = if let Some(s) = local.strip_prefix("fs:general-") {
        (true, s)
    } else if let Some(s) = local.strip_prefix("fs:value-") {
        (false, s)
    } else {
        return None;
    };
    if !matches!(suffix, "eq" | "ne" | "lt" | "le" | "gt" | "ge") {
        return None;
    }
    Some(ComparisonSplit {
        name: local,
        suffix,
        general,
        lhs: &args[0],
        rhs: &args[1],
    })
}

/// Is this operand expression a fusable chain? Fusable chains are
/// deterministic and side-effect-free, read `IN` only through
/// `FieldAccess` over `Input` (never the raw tuple), and are closed under
/// the step/cardinality/arithmetic calls the normalizer emits around
/// comparison operands. Their value for a given tuple can therefore be
/// computed once and cached — re-evaluation can neither change the result
/// nor produce a different dynamic error.
pub fn fusable_operand(p: &Plan) -> bool {
    match &p.op {
        Op::Scalar(_) | Op::Var(_) => true,
        Op::FieldAccess { input, .. } => matches!(input.op, Op::Input),
        Op::TreeJoin { input, .. } => fusable_operand(input),
        Op::Cast { input, .. } | Op::Castable { input, .. } => fusable_operand(input),
        Op::Call { name, args } => {
            matches!(
                name.local_part(),
                "exactly-one"
                    | "zero-or-one"
                    | "one-or-more"
                    | "data"
                    | "string"
                    | "number"
                    | "count"
                    | "fs:numeric-add"
                    | "fs:numeric-subtract"
                    | "fs:numeric-multiply"
                    | "fs:numeric-divide"
                    | "fs:numeric-mod"
                    | "fs:numeric-unary-minus"
            ) && args.iter().all(fusable_operand)
        }
        _ => false,
    }
}

/// Does this plan read the input tuple at all? Allocation-free variant of
/// `fields::used_input_fields(p).is_empty()` for the per-cursor-open hot
/// path: a `false` operand is a per-query constant the kernels evaluate
/// once.
pub fn uses_input(p: &Plan) -> bool {
    if matches!(&p.op, Op::Input | Op::FieldAccess { .. }) {
        return true;
    }
    // Only `Inherit` children see this plan's `IN`; children that rebind
    // it (dependent sub-plans) read their own tuple.
    p.op.children()
        .into_iter()
        .any(|(c, kind)| kind == crate::algebra::ChildKind::Inherit && uses_input(c))
}

/// [`comparison_split`] restricted to predicates whose operands are both
/// fusable chains — the exact shape the batched kernels accept.
pub fn fusable_comparison(pred: &Plan) -> Option<ComparisonSplit<'_>> {
    let split = comparison_split(pred)?;
    if fusable_operand(split.lhs) && fusable_operand(split.rhs) {
        Some(split)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xqr_xml::AtomicValue;

    #[test]
    fn splits_general_and_value_comparisons() {
        let p = Plan::call(
            "fs:general-gt",
            vec![Plan::in_field("a"), Plan::scalar(AtomicValue::Integer(1))],
        );
        let s = comparison_split(&p).expect("splits");
        assert!(s.general);
        assert_eq!(s.suffix, "gt");
        let p = Plan::call(
            "fs:value-eq",
            vec![Plan::in_field("a"), Plan::in_field("b")],
        );
        let s = comparison_split(&p).expect("splits");
        assert!(!s.general);
        assert_eq!(s.suffix, "eq");
    }

    #[test]
    fn rejects_non_comparisons() {
        assert!(comparison_split(&Plan::call(
            "fs:numeric-add",
            vec![Plan::in_field("a"), Plan::in_field("b")],
        ))
        .is_none());
        assert!(
            comparison_split(&Plan::call("fs:general-gt", vec![Plan::in_field("a")])).is_none()
        );
        assert!(comparison_split(&Plan::input()).is_none());
    }

    #[test]
    fn fusable_chains() {
        // The Q11/Q12 inner operand shape: 5000 * exactly-one(.../text()).
        let chain = Plan::call(
            "fs:numeric-multiply",
            vec![
                Plan::scalar(AtomicValue::Integer(5000)),
                Plan::call("exactly-one", vec![Plan::in_field("i")]),
            ],
        );
        assert!(fusable_operand(&chain));
        assert!(fusable_operand(&Plan::in_field("x")));
        assert!(fusable_operand(&Plan::scalar(AtomicValue::Boolean(true))));
        // Raw IN (whole-tuple access) is not fusable.
        assert!(!fusable_operand(&Plan::input()));
        // Unknown calls are not fusable.
        assert!(!fusable_operand(&Plan::call(
            "doc",
            vec![Plan::in_field("u")]
        )));
    }

    #[test]
    fn fusable_comparison_requires_both_sides() {
        let good = Plan::call(
            "fs:general-gt",
            vec![Plan::in_field("a"), Plan::scalar(AtomicValue::Integer(1))],
        );
        assert!(fusable_comparison(&good).is_some());
        let bad = Plan::call(
            "fs:general-gt",
            vec![Plan::in_field("a"), Plan::call("doc", vec![Plan::input()])],
        );
        assert!(fusable_comparison(&bad).is_none());
    }
}
