//! # xqr-core — the paper's contribution
//!
//! The complete XQuery logical algebra (**Table 1** of the paper), the
//! compilation judgment from the (modified) XQuery Core into the algebra
//! (**Section 4**, Figs. 2–3), and the unnesting rewritings (**Section 5**,
//! Fig. 5) that introduce the XQuery-specific `GroupBy` and `LOuterJoin`
//! operators.
//!
//! * [`algebra`] — the operators and plan tree;
//! * [`fields`] — free-`IN` analysis and tuple-field inference used by the
//!   rewrite conditions ("when Op₁ independent of IN") and the join
//!   key-splitting in `xqr-runtime`;
//! * [`pretty`] — plan printer in the paper's
//!   `Op[params]{deps}(inputs)` notation;
//! * [`compile`] — Core → algebra;
//! * [`rewrite`] — the rewrite engine and rules: *(remove map)*, *(insert
//!   product)*, *(insert join)*, *(insert group-by)*, *(map through
//!   group-by)*, *(remove duplicate null)*, *(insert outer-join)*.

pub mod algebra;
pub mod canon;
pub mod compile;
pub mod fields;
pub mod fuse;
pub mod pretty;
pub mod project;
pub mod rewrite;
pub mod trace;

pub use algebra::{Field, NamePlan, Op, OrderSpecPlan, Plan};
pub use canon::{canonicalize_module, module_hash};
pub use compile::{compile_module, CompiledFunction, CompiledGlobal, CompiledModule};
pub use fields::{output_fields, used_input_fields, uses_input};
pub use project::apply_document_projection;
pub use rewrite::{
    rewrite_module, rewrite_module_traced, rewrite_module_with, rewrite_plan, RewriteStats,
    RuleConfig, RuleEvent,
};
pub use trace::{CollectingTracer, NoopTracer, StderrTracer, TraceEvent, Tracer};
