//! The atomic-type derivation and promotion lattice.
//!
//! Derivation (per XML Schema): `xs:integer` derives from `xs:decimal`;
//! every atomic type derives from `xs:anyAtomicType`. Promotion (per XQuery
//! F&O): `xs:decimal` promotes to `xs:float` promotes to `xs:double`;
//! `xs:anyURI` promotes to `xs:string`.

use xqr_xml::{AtomicType, AtomicValue, Decimal, XmlError};

/// Reflexive-transitive derivation between *atomic* types.
pub fn atomic_derives_from(sub: AtomicType, sup: AtomicType) -> bool {
    if sub == sup {
        return true;
    }
    matches!((sub, sup), (AtomicType::Integer, AtomicType::Decimal))
}

/// Can `from` be promoted to `to` (not counting derivation)?
pub fn promotes_to(from: AtomicType, to: AtomicType) -> bool {
    use AtomicType::*;
    matches!(
        (from, to),
        (Integer, Decimal)
            | (Integer, Float)
            | (Integer, Double)
            | (Decimal, Float)
            | (Decimal, Double)
            | (Float, Double)
            | (AnyUri, String)
    )
}

/// Substitutability for function arguments / comparisons:
/// derivation or promotion.
pub fn substitutes_for(actual: AtomicType, expected: AtomicType) -> bool {
    atomic_derives_from(actual, expected) || promotes_to(actual, expected)
}

/// The widest of two numeric types under promotion, when both are numeric.
pub fn widest_numeric(a: AtomicType, b: AtomicType) -> Option<AtomicType> {
    use AtomicType::*;
    if !a.is_numeric() || !b.is_numeric() {
        return None;
    }
    let rank = |t: AtomicType| match t {
        Integer => 0,
        Decimal => 1,
        Float => 2,
        Double => 3,
        _ => unreachable!("numeric"),
    };
    Some(if rank(a) >= rank(b) { a } else { b })
}

/// Promotes a numeric value to the given numeric type (which must be at
/// least as wide). Non-numeric input or narrowing requests are errors.
pub fn promote_numeric(v: &AtomicValue, to: AtomicType) -> xqr_xml::Result<AtomicValue> {
    use AtomicType as T;
    let err = || {
        XmlError::new(
            "XPTY0004",
            format!("cannot promote {} to {}", v.type_of(), to),
        )
    };
    match (v, to) {
        (AtomicValue::Integer(_), T::Integer)
        | (AtomicValue::Decimal(_), T::Decimal)
        | (AtomicValue::Float(_), T::Float)
        | (AtomicValue::Double(_), T::Double) => Ok(v.clone()),
        (AtomicValue::Integer(i), T::Decimal) => Ok(AtomicValue::Decimal(Decimal::from_i64(*i))),
        (AtomicValue::Integer(i), T::Float) => Ok(AtomicValue::Float(*i as f32)),
        (AtomicValue::Integer(i), T::Double) => Ok(AtomicValue::Double(*i as f64)),
        (AtomicValue::Decimal(d), T::Float) => Ok(AtomicValue::Float(d.to_f64() as f32)),
        (AtomicValue::Decimal(d), T::Double) => Ok(AtomicValue::Double(d.to_f64())),
        (AtomicValue::Float(f), T::Double) => Ok(AtomicValue::Double(*f as f64)),
        (AtomicValue::AnyUri(u), T::String) => Ok(AtomicValue::String(u.clone())),
        _ => Err(err()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derivation() {
        assert!(atomic_derives_from(
            AtomicType::Integer,
            AtomicType::Decimal
        ));
        assert!(atomic_derives_from(
            AtomicType::Integer,
            AtomicType::Integer
        ));
        assert!(!atomic_derives_from(
            AtomicType::Decimal,
            AtomicType::Integer
        ));
        assert!(!atomic_derives_from(
            AtomicType::String,
            AtomicType::Decimal
        ));
    }

    #[test]
    fn promotion_lattice() {
        assert!(promotes_to(AtomicType::Integer, AtomicType::Double));
        assert!(promotes_to(AtomicType::Decimal, AtomicType::Float));
        assert!(promotes_to(AtomicType::Float, AtomicType::Double));
        assert!(promotes_to(AtomicType::AnyUri, AtomicType::String));
        assert!(!promotes_to(AtomicType::Double, AtomicType::Float));
        assert!(!promotes_to(AtomicType::String, AtomicType::AnyUri));
    }

    #[test]
    fn widest() {
        assert_eq!(
            widest_numeric(AtomicType::Integer, AtomicType::Double),
            Some(AtomicType::Double)
        );
        assert_eq!(
            widest_numeric(AtomicType::Decimal, AtomicType::Integer),
            Some(AtomicType::Decimal)
        );
        assert_eq!(
            widest_numeric(AtomicType::String, AtomicType::Integer),
            None
        );
    }

    #[test]
    fn numeric_value_promotion() {
        let five = AtomicValue::Integer(5);
        assert_eq!(
            promote_numeric(&five, AtomicType::Double).unwrap(),
            AtomicValue::Double(5.0)
        );
        assert_eq!(
            promote_numeric(&five, AtomicType::Decimal).unwrap(),
            AtomicValue::Decimal(Decimal::from_i64(5))
        );
        assert!(promote_numeric(&AtomicValue::Double(1.0), AtomicType::Float).is_err());
        assert!(promote_numeric(&AtomicValue::string("x"), AtomicType::Double).is_err());
    }
}
