//! A lightweight named-type schema substrate.
//!
//! The paper relies on schema validation only to (a) annotate nodes with
//! named types so `element(*, T)` kind tests, `Validate` and `TypeAssert`
//! are meaningful, and (b) produce typed atomic values for atomization.
//! This module provides exactly that: named type definitions with
//! single-inheritance derivation, element/attribute declarations mapping
//! names to types, and a [`xqr_xml::node::TypeHierarchy`] implementation.
//! It deliberately does not implement the rest of W3C XML Schema (content
//! models, facets, …) — see DESIGN.md §4.

use std::collections::HashMap;

use xqr_xml::node::TypeHierarchy;
use xqr_xml::{AtomicType, QName};

/// What kind of content a named type has.
#[derive(Clone, Debug, PartialEq)]
pub enum ContentKind {
    /// Element-only or mixed content; no typed value.
    Complex,
    /// Simple content: atomizes to the given atomic type.
    Simple(AtomicType),
}

/// A named type definition.
#[derive(Clone, Debug)]
pub struct TypeDef {
    pub name: QName,
    /// Base type for derivation (defaults to `xs:anyType`).
    pub base: Option<QName>,
    pub content: ContentKind,
}

/// A schema: named types plus element/attribute declarations.
///
/// Element declarations are matched *by name*, anywhere in the tree
/// (a simplification over XSD's positional declarations, documented in
/// DESIGN.md).
#[derive(Clone, Debug, Default)]
pub struct Schema {
    types: HashMap<QName, TypeDef>,
    elements: HashMap<QName, QName>,
    attributes: HashMap<QName, QName>,
}

impl Schema {
    pub fn new() -> Self {
        Schema::default()
    }

    /// Declares a named complex type, optionally derived from `base`.
    pub fn complex_type(&mut self, name: &str, base: Option<&str>) -> &mut Self {
        let q = QName::local(name);
        self.types.insert(
            q.clone(),
            TypeDef {
                name: q,
                base: base.map(QName::local),
                content: ContentKind::Complex,
            },
        );
        self
    }

    /// Declares a named simple-content type whose value space is `atomic`.
    pub fn simple_type(&mut self, name: &str, atomic: AtomicType, base: Option<&str>) -> &mut Self {
        let q = QName::local(name);
        self.types.insert(
            q.clone(),
            TypeDef {
                name: q,
                base: base.map(QName::local),
                content: ContentKind::Simple(atomic),
            },
        );
        self
    }

    /// Declares that elements named `element` have type `type_name`.
    pub fn element(&mut self, element: &str, type_name: &str) -> &mut Self {
        self.elements
            .insert(QName::local(element), QName::local(type_name));
        self
    }

    /// Declares that attributes named `attribute` have type `type_name`.
    pub fn attribute(&mut self, attribute: &str, type_name: &str) -> &mut Self {
        self.attributes
            .insert(QName::local(attribute), QName::local(type_name));
        self
    }

    pub fn type_def(&self, name: &QName) -> Option<&TypeDef> {
        self.types.get(name)
    }

    pub fn element_type(&self, name: &QName) -> Option<&QName> {
        self.elements.get(name)
    }

    pub fn attribute_type(&self, name: &QName) -> Option<&QName> {
        self.attributes.get(name)
    }

    /// The atomic type a named type atomizes to, walking the base chain.
    pub fn atomic_of(&self, name: &QName) -> Option<AtomicType> {
        let mut cur = Some(name.clone());
        let mut fuel = 64;
        while let Some(q) = cur {
            if fuel == 0 {
                return None;
            }
            fuel -= 1;
            match self.types.get(&q) {
                Some(TypeDef {
                    content: ContentKind::Simple(a),
                    ..
                }) => return Some(*a),
                Some(TypeDef { base, .. }) => cur = base.clone(),
                None => {
                    // Built-in atomic type name, possibly written with its
                    // conventional prefix ("xs:integer").
                    let local = q.local_part().rsplit(':').next().unwrap_or(q.local_part());
                    return AtomicType::by_local_name(local);
                }
            }
        }
        None
    }
}

impl TypeHierarchy for Schema {
    fn derives_from(&self, sub: &QName, sup: &QName) -> bool {
        if sup.local_part() == "anyType" {
            return true;
        }
        let mut cur = Some(sub.clone());
        let mut fuel = 64;
        while let Some(q) = cur {
            if fuel == 0 {
                return false;
            }
            fuel -= 1;
            if &q == sup {
                return true;
            }
            cur = self.types.get(&q).and_then(|t| t.base.clone());
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn auction_schema() -> Schema {
        let mut s = Schema::new();
        s.complex_type("Auction", None)
            .complex_type("USSeller", Some("Seller"))
            .complex_type("Seller", None)
            .simple_type("Price", AtomicType::Decimal, None)
            .element("closed_auction", "Auction")
            .element("price", "Price")
            .attribute("id", "xs:string");
        s
    }

    #[test]
    fn derivation_chain() {
        let s = auction_schema();
        let us = QName::local("USSeller");
        let seller = QName::local("Seller");
        let auction = QName::local("Auction");
        assert!(s.derives_from(&us, &seller));
        assert!(s.derives_from(&us, &us));
        assert!(!s.derives_from(&seller, &us));
        assert!(!s.derives_from(&us, &auction));
        assert!(s.derives_from(&us, &QName::local("anyType")));
    }

    #[test]
    fn element_lookup_and_atomic_of() {
        let s = auction_schema();
        assert_eq!(
            s.element_type(&QName::local("closed_auction")),
            Some(&QName::local("Auction"))
        );
        assert_eq!(
            s.atomic_of(&QName::local("Price")),
            Some(AtomicType::Decimal)
        );
        assert_eq!(s.atomic_of(&QName::local("Auction")), None);
        assert_eq!(
            s.atomic_of(&QName::local("string")),
            Some(AtomicType::String)
        );
    }

    #[test]
    fn cycle_safety() {
        let mut s = Schema::new();
        s.complex_type("A", Some("B")).complex_type("B", Some("A"));
        assert!(!s.derives_from(&QName::local("A"), &QName::local("C")));
        assert_eq!(s.atomic_of(&QName::local("A")), None);
    }
}
