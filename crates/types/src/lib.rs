//! # xqr-types — the XQuery type substrate
//!
//! Everything the compiler and runtime need from XML Schema and the XQuery
//! type system:
//!
//! * [`hierarchy`] — the atomic-type derivation/promotion lattice
//!   (`xs:integer` ⊑ `xs:decimal`, numeric promotion to `xs:float`/
//!   `xs:double`, `xs:anyURI` promotion to `xs:string`);
//! * [`convert`] — `fs:convert-operand` exactly per **Table 2** of the
//!   paper, plus the comparable-type computation and the
//!   `promoteToSimpleTypes` enumeration used by the hash join (Fig. 6);
//! * [`cast`] — the casting matrix (`cast as`, constructor functions);
//! * [`sequence_type`] — `item()`, atomic, and kind-test sequence types
//!   with occurrence indicators; `instance of` matching and `TypeAssert`;
//! * [`schema`] / [`validate`] — a lightweight named-type schema and a
//!   validation pass that annotates trees with type names and typed values
//!   (the substrate behind the algebra's `Validate` operator and
//!   `element(*, T)` kind tests).

pub mod cast;
pub mod convert;
pub mod hierarchy;
pub mod schema;
pub mod sequence_type;
pub mod validate;

pub use cast::cast_atomic;
pub use convert::{comparable_types, convert_operand, promote_to_simple_types, table2_target};
pub use hierarchy::{atomic_derives_from, promote_numeric, widest_numeric};
pub use schema::{ContentKind, Schema, TypeDef};
pub use sequence_type::{ItemType, Occurrence, SequenceType};
pub use validate::{validate_sequence, ValidationMode};
