//! Sequence types, `instance of` matching, and `TypeAssert`.
//!
//! A [`SequenceType`] is an item type plus an occurrence indicator, e.g.
//! `element(*, Auction)*` from the paper's running example, `xs:integer?`,
//! `item()+`, or `empty-sequence()`.

use std::fmt;

use xqr_xml::axes::{kind_test_matches, KindTest};
use xqr_xml::{AtomicType, Item, Sequence, XmlError};

use crate::hierarchy::atomic_derives_from;
use crate::schema::Schema;

/// Occurrence indicators.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Occurrence {
    /// exactly one
    One,
    /// `?` — zero or one
    Optional,
    /// `*` — zero or more
    Star,
    /// `+` — one or more
    Plus,
}

impl Occurrence {
    pub fn accepts(self, len: usize) -> bool {
        match self {
            Occurrence::One => len == 1,
            Occurrence::Optional => len <= 1,
            Occurrence::Star => true,
            Occurrence::Plus => len >= 1,
        }
    }

    pub fn symbol(self) -> &'static str {
        match self {
            Occurrence::One => "",
            Occurrence::Optional => "?",
            Occurrence::Star => "*",
            Occurrence::Plus => "+",
        }
    }
}

/// Item types.
#[derive(Clone, PartialEq, Debug)]
pub enum ItemType {
    /// `item()`
    AnyItem,
    /// A (built-in) atomic type, e.g. `xs:integer`.
    Atomic(AtomicType),
    /// A node kind test, e.g. `element(*, Auction)`, `text()`.
    Kind(KindTest),
}

/// A full sequence type; `empty-sequence()` is encoded with the
/// [`SequenceType::empty_sequence`] constructor (an explicit flag).
#[derive(Clone, PartialEq, Debug)]
pub struct SequenceType {
    pub item: ItemType,
    pub occ: Occurrence,
    /// True for `empty-sequence()`.
    pub empty_only: bool,
}

impl SequenceType {
    pub fn new(item: ItemType, occ: Occurrence) -> Self {
        SequenceType {
            item,
            occ,
            empty_only: false,
        }
    }

    pub fn empty_sequence() -> Self {
        SequenceType {
            item: ItemType::AnyItem,
            occ: Occurrence::Star,
            empty_only: true,
        }
    }

    pub fn one(item: ItemType) -> Self {
        SequenceType::new(item, Occurrence::One)
    }

    pub fn star(item: ItemType) -> Self {
        SequenceType::new(item, Occurrence::Star)
    }

    /// `instance of` — the algebra's `TypeMatches` operator.
    pub fn matches(&self, seq: &Sequence, schema: &Schema) -> bool {
        if self.empty_only {
            return seq.is_empty();
        }
        if !self.occ.accepts(seq.len()) {
            return false;
        }
        seq.iter().all(|item| self.item_matches(item, schema))
    }

    fn item_matches(&self, item: &Item, schema: &Schema) -> bool {
        match (&self.item, item) {
            (ItemType::AnyItem, _) => true,
            (ItemType::Atomic(t), Item::Atomic(a)) => atomic_derives_from(a.type_of(), *t),
            (ItemType::Atomic(_), Item::Node(_)) => false,
            (ItemType::Kind(kt), Item::Node(n)) => kind_test_matches(kt, n, schema),
            (ItemType::Kind(_), Item::Atomic(_)) => false,
        }
    }

    /// The algebra's `TypeAssert[Type]` operator: identity when the
    /// sequence matches, dynamic error `XPDY0050` otherwise.
    pub fn assert(&self, seq: &Sequence, schema: &Schema) -> xqr_xml::Result<Sequence> {
        if self.matches(seq, schema) {
            Ok(seq.clone())
        } else {
            Err(XmlError::new(
                "XPDY0050",
                format!("sequence does not match required type {self}"),
            ))
        }
    }
}

impl fmt::Display for SequenceType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.empty_only {
            return write!(f, "empty-sequence()");
        }
        match &self.item {
            ItemType::AnyItem => write!(f, "item()")?,
            ItemType::Atomic(t) => write!(f, "{t}")?,
            ItemType::Kind(kt) => write!(f, "{}", kind_test_display(kt))?,
        }
        write!(f, "{}", self.occ.symbol())
    }
}

/// Renders a kind test in the paper's notation.
pub fn kind_test_display(kt: &KindTest) -> String {
    match kt {
        KindTest::AnyKind => "node()".into(),
        KindTest::Text => "text()".into(),
        KindTest::Comment => "comment()".into(),
        KindTest::Pi(None) => "processing-instruction()".into(),
        KindTest::Pi(Some(t)) => format!("processing-instruction({t})"),
        KindTest::Document => "document-node()".into(),
        KindTest::Element(name, ty) => {
            let n = name.as_ref().map_or("*".to_string(), |nt| {
                nt.local.clone().unwrap_or_else(|| "*".into())
            });
            match ty {
                Some(t) => format!("element({n},{})", t.local_part()),
                None => format!("element({n})"),
            }
        }
        KindTest::Attribute(name, ty) => {
            let n = name.as_ref().map_or("*".to_string(), |nt| {
                nt.local.clone().unwrap_or_else(|| "*".into())
            });
            match ty {
                Some(t) => format!("attribute({n},{})", t.local_part()),
                None => format!("attribute({n})"),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xqr_xml::axes::NameTest;
    use xqr_xml::{AtomicValue, QName, TreeBuilder};

    fn schema() -> Schema {
        let mut s = Schema::new();
        s.complex_type("Auction", None)
            .complex_type("USAuction", Some("Auction"));
        s
    }

    fn typed_element(name: &str, ty: Option<&str>) -> Item {
        let mut b = TreeBuilder::new();
        b.start_element(QName::local(name));
        if let Some(t) = ty {
            b.annotate_type(QName::local(t), None);
        }
        b.end_element();
        Item::Node(b.finish(None).root())
    }

    #[test]
    fn occurrence_indicators() {
        let st = SequenceType::new(ItemType::Atomic(AtomicType::Integer), Occurrence::Plus);
        assert!(!st.matches(&Sequence::empty(), &schema()));
        assert!(st.matches(&Sequence::integers([1]), &schema()));
        assert!(st.matches(&Sequence::integers([1, 2]), &schema()));
        let opt = SequenceType::new(ItemType::Atomic(AtomicType::Integer), Occurrence::Optional);
        assert!(opt.matches(&Sequence::empty(), &schema()));
        assert!(!opt.matches(&Sequence::integers([1, 2]), &schema()));
    }

    #[test]
    fn empty_sequence_type() {
        let st = SequenceType::empty_sequence();
        assert!(st.matches(&Sequence::empty(), &schema()));
        assert!(!st.matches(&Sequence::integers([1]), &schema()));
    }

    #[test]
    fn atomic_matching_uses_derivation() {
        let st = SequenceType::one(ItemType::Atomic(AtomicType::Decimal));
        assert!(
            st.matches(&Sequence::integers([1]), &schema()),
            "integer ⊑ decimal"
        );
        let st_int = SequenceType::one(ItemType::Atomic(AtomicType::Integer));
        assert!(!st_int.matches(
            &Sequence::from_atomics(vec![AtomicValue::Double(1.0)]),
            &schema()
        ));
    }

    #[test]
    fn element_kind_test_with_type() {
        // element(*, Auction)* — the paper's running type assertion.
        let st = SequenceType::star(ItemType::Kind(KindTest::Element(
            None,
            Some(QName::local("Auction")),
        )));
        let s = schema();
        let us = typed_element("closed_auction", Some("USAuction"));
        let untyped = typed_element("closed_auction", None);
        assert!(
            st.matches(&Sequence::from_vec(vec![us.clone()]), &s),
            "derived type matches"
        );
        assert!(
            !st.matches(&Sequence::from_vec(vec![untyped]), &s),
            "untyped does not"
        );
        assert!(st.matches(&Sequence::empty(), &s));
        // With a name test too.
        let st_named = SequenceType::one(ItemType::Kind(KindTest::Element(
            Some(NameTest::local("open_auction")),
            None,
        )));
        assert!(!st_named.matches(&Sequence::from_vec(vec![us]), &s));
    }

    #[test]
    fn assert_is_identity_or_error() {
        let st = SequenceType::star(ItemType::Atomic(AtomicType::Integer));
        let seq = Sequence::integers([1, 2]);
        assert_eq!(st.assert(&seq, &schema()).unwrap().len(), 2);
        let bad = Sequence::from_atomics(vec![AtomicValue::string("x")]);
        assert_eq!(st.assert(&bad, &schema()).unwrap_err().code, "XPDY0050");
    }

    #[test]
    fn display_forms() {
        assert_eq!(
            SequenceType::star(ItemType::Kind(KindTest::Element(
                None,
                Some(QName::local("Auction"))
            )))
            .to_string(),
            "element(*,Auction)*"
        );
        assert_eq!(
            SequenceType::new(ItemType::Atomic(AtomicType::Integer), Occurrence::Optional)
                .to_string(),
            "xs:integer?"
        );
        assert_eq!(
            SequenceType::empty_sequence().to_string(),
            "empty-sequence()"
        );
    }
}
