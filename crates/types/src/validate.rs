//! Validation — the algebra's `Validate` operator.
//!
//! Walks a node tree, annotating each element/attribute with the type its
//! (by-name) declaration assigns, and computing typed values for
//! simple-content types. Produces an annotated *copy* (fresh node
//! identities, per the XQuery `validate` expression).

use std::rc::Rc;

use xqr_xml::node::{Document, NodeHandle, NodeKind};
use xqr_xml::{Item, QName, Sequence, TreeBuilder, XmlError};

use crate::cast::cast_from_string;
use crate::schema::{ContentKind, Schema};

/// Validation modes per XQuery.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ValidationMode {
    /// Undeclared elements are left untyped.
    Lax,
    /// Undeclared elements are an error (`XQDY0084`).
    Strict,
}

/// Validates each node of a sequence, returning annotated copies.
/// Atomic items are rejected (`XQTY0030`).
pub fn validate_sequence(
    seq: &Sequence,
    schema: &Schema,
    mode: ValidationMode,
) -> xqr_xml::Result<Sequence> {
    let mut out = Vec::with_capacity(seq.len());
    for item in seq.iter() {
        match item {
            Item::Node(n) => out.push(Item::Node(validate_node(n, schema, mode)?)),
            Item::Atomic(_) => {
                return Err(XmlError::new(
                    "XQTY0030",
                    "validate applied to an atomic value",
                ))
            }
        }
    }
    Ok(Sequence::from_vec(out))
}

/// Validates a single node tree, returning the annotated copy's root.
pub fn validate_node(
    node: &NodeHandle,
    schema: &Schema,
    mode: ValidationMode,
) -> xqr_xml::Result<NodeHandle> {
    let mut b = TreeBuilder::new();
    let is_doc = node.kind() == NodeKind::Document;
    if is_doc {
        b.start_document();
        for c in node.children() {
            copy_validated(&mut b, &c, schema, mode)?;
        }
        b.end_document();
    } else {
        copy_validated(&mut b, node, schema, mode)?;
    }
    let doc: Rc<Document> = b.try_finish(None)?;
    Ok(doc.root())
}

fn copy_validated(
    b: &mut TreeBuilder,
    node: &NodeHandle,
    schema: &Schema,
    mode: ValidationMode,
) -> xqr_xml::Result<()> {
    match node.kind() {
        NodeKind::Element => {
            let name = node.name().expect("element has a name").clone();
            let decl = schema.element_type(&name).cloned();
            if decl.is_none() && mode == ValidationMode::Strict {
                return Err(XmlError::new(
                    "XQDY0084",
                    format!("no declaration for element {name}"),
                ));
            }
            b.start_element(name);
            if let Some(ty) = &decl {
                let typed = typed_value_for(node, ty, schema)?;
                b.annotate_type(ty.clone(), typed);
            }
            for a in node.attributes() {
                let aname = a.name().expect("attribute has a name").clone();
                match schema.attribute_type(&aname) {
                    Some(aty) => {
                        let atomic = schema.atomic_of(aty).ok_or_else(|| {
                            XmlError::new("XQDY0027", format!("attribute type {aty} is not simple"))
                        })?;
                        let raw = a.string_value();
                        let tv = cast_from_string(&raw, atomic)?;
                        b.typed_attribute(aname, &raw, aty.clone(), vec![tv]);
                    }
                    None => {
                        if mode == ValidationMode::Strict {
                            return Err(XmlError::new(
                                "XQDY0084",
                                format!("no declaration for attribute {aname}"),
                            ));
                        }
                        b.attribute(aname, &a.string_value());
                    }
                }
            }
            for c in node.children() {
                copy_validated(b, &c, schema, mode)?;
            }
            b.end_element();
            Ok(())
        }
        NodeKind::Document => Err(XmlError::new(
            "XQTY0030",
            "nested document node during validation",
        )),
        // Leaves are copied verbatim.
        _ => {
            b.copy_node(node);
            Ok(())
        }
    }
}

fn typed_value_for(
    node: &NodeHandle,
    type_name: &QName,
    schema: &Schema,
) -> xqr_xml::Result<Option<Vec<xqr_xml::AtomicValue>>> {
    match schema.type_def(type_name).map(|t| &t.content) {
        Some(ContentKind::Simple(atomic)) => {
            let tv = cast_from_string(&node.string_value(), *atomic)?;
            Ok(Some(vec![tv]))
        }
        Some(ContentKind::Complex) => Ok(None),
        None => {
            // Built-in atomic type name used directly as an element type.
            match schema.atomic_of(type_name) {
                Some(atomic) => {
                    let tv = cast_from_string(&node.string_value(), atomic)?;
                    Ok(Some(vec![tv]))
                }
                None => Ok(None),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xqr_xml::parse::{parse_document, ParseOptions};
    use xqr_xml::{AtomicType, AtomicValue};

    fn schema() -> Schema {
        let mut s = Schema::new();
        s.complex_type("Auction", None)
            .simple_type("Price", AtomicType::Decimal, None)
            .element("closed_auction", "Auction")
            .element("price", "Price")
            .attribute("id", "xs:integer");
        s
    }

    fn doc(s: &str) -> NodeHandle {
        parse_document(s, &ParseOptions::default()).unwrap().root()
    }

    #[test]
    fn annotates_declared_elements() {
        let root = doc(r#"<closed_auction id="7"><price>42.5</price></closed_auction>"#);
        let v = validate_node(&root, &schema(), ValidationMode::Lax).unwrap();
        let ca = &v.children()[0];
        assert_eq!(ca.type_name().unwrap().local_part(), "Auction");
        let price = &ca.children()[0];
        assert_eq!(price.type_name().unwrap().local_part(), "Price");
        assert_eq!(
            price.typed_value(),
            vec![AtomicValue::Decimal(
                xqr_xml::Decimal::parse("42.5").unwrap()
            )]
        );
        let id = &ca.attributes()[0];
        assert_eq!(id.typed_value(), vec![AtomicValue::Integer(7)]);
    }

    #[test]
    fn lax_leaves_undeclared_untyped() {
        let root = doc("<unknown><price>1</price></unknown>");
        let v = validate_node(&root, &schema(), ValidationMode::Lax).unwrap();
        let u = &v.children()[0];
        assert!(u.type_name().is_none());
        assert_eq!(u.children()[0].type_name().unwrap().local_part(), "Price");
    }

    #[test]
    fn strict_errors_on_undeclared() {
        let root = doc("<unknown/>");
        let e = validate_node(&root, &schema(), ValidationMode::Strict).unwrap_err();
        assert_eq!(e.code, "XQDY0084");
    }

    #[test]
    fn invalid_simple_content_errors() {
        let root = doc("<price>not-a-number</price>");
        assert!(validate_node(&root, &schema(), ValidationMode::Lax).is_err());
    }

    #[test]
    fn validation_copies_give_fresh_identity() {
        let root = doc("<closed_auction/>");
        let v = validate_node(&root, &schema(), ValidationMode::Lax).unwrap();
        assert!(!v.same_node(&root));
        assert!(!v.children()[0].same_node(&root.children()[0]));
    }

    #[test]
    fn validate_sequence_rejects_atomics() {
        let seq = Sequence::integers([1]);
        assert_eq!(
            validate_sequence(&seq, &schema(), ValidationMode::Lax)
                .unwrap_err()
                .code,
            "XQTY0030"
        );
    }
}
