//! `fs:convert-operand` — **Table 2 of the paper** — and the type
//! enumeration behind the hash join of Section 6.
//!
//! The semantics of a general comparison `$x = $y` is (paper, Section 6):
//!
//! ```text
//! some $x' in fn:data($x) satisfies
//!   some $y' in fn:data($y) satisfies
//!     op:equal(fs:convert-operand($x', $y'), fs:convert-operand($y', $x'))
//! ```
//!
//! `fs:convert-operand(a, b)` promotes *untyped* `a` based only on the
//! **type** of `b` — the observation that makes an independent-input hash
//! join possible:
//!
//! | type of first operand        | type of second operand       | convert first to |
//! |------------------------------|------------------------------|------------------|
//! | untypedAtomic or string      | untypedAtomic or string      | xs:string        |
//! | untypedAtomic                | numeric                      | xs:double        |
//! | untypedAtomic                | any other type T             | T                |
//! | any other type T             | must be T (or promotable)    | unchanged        |

use xqr_xml::{AtomicType, AtomicValue, XmlError};

use crate::cast::cast_atomic;
use crate::hierarchy::widest_numeric;

/// The target type `fs:convert-operand` would convert the first operand to,
/// given the two operand **types** — the static essence of Table 2.
/// Returns `None` when the first operand is left unchanged.
pub fn table2_target(first: AtomicType, second: AtomicType) -> Option<AtomicType> {
    use AtomicType as T;
    match first {
        T::UntypedAtomic => Some(match second {
            T::UntypedAtomic | T::String => T::String,
            t if t.is_numeric() => T::Double,
            other => other,
        }),
        T::String if matches!(second, T::UntypedAtomic) => {
            // string vs untyped: first row of the table, already a string.
            None
        }
        _ => None,
    }
}

/// `fs:convert-operand(actual, other)`: converts `actual` when it is
/// untyped, based on `other`'s type; otherwise returns it unchanged.
pub fn convert_operand(
    actual: &AtomicValue,
    other_type: AtomicType,
) -> xqr_xml::Result<AtomicValue> {
    match table2_target(actual.type_of(), other_type) {
        Some(target) => cast_atomic(actual, target),
        None => Ok(actual.clone()),
    }
}

/// Computes the type at which two operands are actually compared after
/// `fs:convert-operand` on both sides and numeric/URI promotion. `None`
/// means the comparison is a type error (`XPTY0004`).
pub fn comparable_types(a: AtomicType, b: AtomicType) -> Option<AtomicType> {
    use AtomicType as T;
    let a = effective(a, b);
    let b = effective(b, a);
    if a == b {
        return Some(a);
    }
    if a.is_numeric() && b.is_numeric() {
        return widest_numeric(a, b);
    }
    match (a, b) {
        (T::AnyUri, T::String) | (T::String, T::AnyUri) => Some(T::String),
        _ => None,
    }
}

fn effective(t: AtomicType, other: AtomicType) -> AtomicType {
    table2_target(t, other).unwrap_or(t)
}

/// Converts both operands per Table 2 and promotes them to their common
/// comparison type; the returned pair is directly comparable.
pub fn convert_pair(
    x: &AtomicValue,
    y: &AtomicValue,
) -> xqr_xml::Result<(AtomicValue, AtomicValue)> {
    let xt = x.type_of();
    let yt = y.type_of();
    let x1 = convert_operand(x, yt)?;
    let y1 = convert_operand(y, xt)?;
    let target = comparable_types(xt, yt).ok_or_else(|| {
        XmlError::new("XPTY0004", format!("{} and {} are not comparable", xt, yt))
    })?;
    let promote = |v: &AtomicValue| -> xqr_xml::Result<AtomicValue> {
        if v.type_of() == target {
            Ok(v.clone())
        } else if v.type_of().is_numeric() && target.is_numeric() {
            crate::hierarchy::promote_numeric(v, target)
        } else if v.type_of() == AtomicType::AnyUri && target == AtomicType::String {
            Ok(AtomicValue::string(v.string_value()))
        } else {
            Ok(v.clone())
        }
    };
    Ok((promote(&x1)?, promote(&y1)?))
}

/// `promoteToSimpleTypes` (Fig. 6): enumerates every `(value, type)` pair a
/// join-key value can be stored (or probed) under, so that each side of the
/// hash join is materialized independently of the other side's *values*.
///
/// * numeric values → one entry per numeric type they promote to;
/// * untyped values → `xs:string` always, `xs:double` when the lexical form
///   is numeric, plus the calendar types when the lexical form parses
///   (covering the "untyped vs T" row of Table 2);
/// * anyURI → itself plus `xs:string`;
/// * anything else → just itself.
///
/// The paper bounds this enumeration by the number of primitive XML Schema
/// datatypes ("no more than nineteen").
pub fn promote_to_simple_types(v: &AtomicValue) -> Vec<AtomicValue> {
    use AtomicType as T;
    let mut out = Vec::with_capacity(4);
    match v.type_of() {
        t if t.is_numeric() => {
            for target in [T::Integer, T::Decimal, T::Float, T::Double] {
                if let Ok(p) = crate::hierarchy::promote_numeric(v, target) {
                    out.push(p);
                } else if t == T::Double || t == T::Float || t == T::Decimal {
                    // Narrower targets unreachable by promotion: skip.
                }
            }
        }
        T::UntypedAtomic => {
            let s = v.string_value();
            out.push(AtomicValue::string(s.clone()));
            if let Ok(d) = AtomicValue::parse_double(&s) {
                if !d.is_nan() {
                    out.push(AtomicValue::Double(d));
                }
            }
            for target in [T::Date, T::Time, T::DateTime, T::Boolean] {
                if let Ok(p) = crate::cast::cast_from_string(&s, target) {
                    out.push(p);
                }
            }
        }
        T::AnyUri => {
            out.push(v.clone());
            out.push(AtomicValue::string(v.string_value()));
        }
        _ => out.push(v.clone()),
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use AtomicType as T;

    /// Exhaustive check of Table 2, row by row.
    #[test]
    fn table2_row1_untyped_or_string_vs_untyped_or_string() {
        assert_eq!(
            table2_target(T::UntypedAtomic, T::UntypedAtomic),
            Some(T::String)
        );
        assert_eq!(table2_target(T::UntypedAtomic, T::String), Some(T::String));
        // A string first operand needs no conversion (it is already one).
        assert_eq!(table2_target(T::String, T::UntypedAtomic), None);
        assert_eq!(table2_target(T::String, T::String), None);
    }

    #[test]
    fn table2_row2_untyped_vs_numeric() {
        for num in [T::Integer, T::Decimal, T::Float, T::Double] {
            assert_eq!(
                table2_target(T::UntypedAtomic, num),
                Some(T::Double),
                "{num}"
            );
        }
    }

    #[test]
    fn table2_row3_untyped_vs_other() {
        for other in [
            T::Date,
            T::Time,
            T::DateTime,
            T::Boolean,
            T::AnyUri,
            T::Duration,
        ] {
            assert_eq!(
                table2_target(T::UntypedAtomic, other),
                Some(other),
                "{other}"
            );
        }
    }

    #[test]
    fn table2_row4_typed_is_unchanged() {
        for first in [T::Integer, T::Date, T::Boolean, T::Double, T::String] {
            for second in T::ALL {
                if first == T::String && second == T::UntypedAtomic {
                    continue; // covered by row 1
                }
                assert_eq!(table2_target(first, second), None, "{first} vs {second}");
            }
        }
    }

    #[test]
    fn convert_operand_values() {
        let u = AtomicValue::untyped("42");
        assert_eq!(
            convert_operand(&u, T::Integer).unwrap(),
            AtomicValue::Double(42.0)
        );
        assert_eq!(
            convert_operand(&u, T::String).unwrap(),
            AtomicValue::string("42")
        );
        assert_eq!(
            convert_operand(&u, T::UntypedAtomic).unwrap(),
            AtomicValue::string("42")
        );
        let i = AtomicValue::Integer(42);
        assert_eq!(convert_operand(&i, T::UntypedAtomic).unwrap(), i);
    }

    #[test]
    fn convert_operand_untyped_to_date() {
        let u = AtomicValue::untyped("2001-01-01");
        let c = convert_operand(&u, T::Date).unwrap();
        assert_eq!(c.type_of(), T::Date);
        assert!(convert_operand(&AtomicValue::untyped("nonsense"), T::Date).is_err());
    }

    #[test]
    fn comparable_type_computation() {
        assert_eq!(comparable_types(T::Integer, T::Double), Some(T::Double));
        assert_eq!(
            comparable_types(T::UntypedAtomic, T::Integer),
            Some(T::Double)
        );
        assert_eq!(
            comparable_types(T::UntypedAtomic, T::UntypedAtomic),
            Some(T::String)
        );
        assert_eq!(comparable_types(T::AnyUri, T::String), Some(T::String));
        assert_eq!(comparable_types(T::Date, T::Date), Some(T::Date));
        assert_eq!(comparable_types(T::Date, T::Integer), None);
        assert_eq!(comparable_types(T::String, T::Integer), None);
    }

    #[test]
    fn convert_pair_mixed() {
        let (a, b) = convert_pair(&AtomicValue::untyped("5"), &AtomicValue::Integer(5)).unwrap();
        assert_eq!(a, AtomicValue::Double(5.0));
        assert_eq!(b, AtomicValue::Double(5.0));
        let (a, b) = convert_pair(&AtomicValue::untyped("x"), &AtomicValue::untyped("x")).unwrap();
        assert_eq!(a, AtomicValue::string("x"));
        assert_eq!(b, AtomicValue::string("x"));
        assert!(convert_pair(&AtomicValue::Integer(1), &AtomicValue::string("1")).is_err());
    }

    #[test]
    fn promote_enumeration_numeric() {
        let pairs = promote_to_simple_types(&AtomicValue::Integer(5));
        let types: Vec<T> = pairs.iter().map(|p| p.type_of()).collect();
        assert_eq!(types, [T::Integer, T::Decimal, T::Float, T::Double]);
        let pairs = promote_to_simple_types(&AtomicValue::Double(5.0));
        assert_eq!(
            pairs.iter().map(|p| p.type_of()).collect::<Vec<_>>(),
            [T::Double]
        );
    }

    #[test]
    fn promote_enumeration_untyped() {
        let pairs = promote_to_simple_types(&AtomicValue::untyped("42"));
        let types: Vec<T> = pairs.iter().map(|p| p.type_of()).collect();
        assert!(types.contains(&T::String));
        assert!(types.contains(&T::Double));
        let pairs = promote_to_simple_types(&AtomicValue::untyped("hello"));
        let types: Vec<T> = pairs.iter().map(|p| p.type_of()).collect();
        assert_eq!(types, [T::String]);
        // Dates get a calendar entry.
        let pairs = promote_to_simple_types(&AtomicValue::untyped("2001-01-01"));
        assert!(pairs.iter().any(|p| p.type_of() == T::Date));
    }

    #[test]
    fn promotion_bounded_by_primitive_count() {
        for v in [
            AtomicValue::Integer(1),
            AtomicValue::untyped("1"),
            AtomicValue::untyped("2001-01-01"),
            AtomicValue::string("x"),
        ] {
            assert!(promote_to_simple_types(&v).len() <= 19);
        }
    }
}
