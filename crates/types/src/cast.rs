//! The casting matrix: `cast as` / constructor-function semantics for the
//! atomic types the engine supports.

use xqr_xml::temporal::{Date, DateTime, Duration, Time};
use xqr_xml::{atomic, AtomicType, AtomicValue, Decimal, XmlError};

/// Casts an atomic value to a target atomic type, per XQuery semantics.
/// Returns `FORG0001` on lexical failures and `XPTY0004` on unsupported
/// source/target combinations.
pub fn cast_atomic(v: &AtomicValue, to: AtomicType) -> xqr_xml::Result<AtomicValue> {
    use AtomicType as T;
    let ty = v.type_of();
    if ty == to {
        return Ok(v.clone());
    }
    // Everything casts to string / untypedAtomic via the canonical form.
    match to {
        T::String => return Ok(AtomicValue::string(v.string_value())),
        T::UntypedAtomic => return Ok(AtomicValue::untyped(v.string_value())),
        _ => {}
    }
    // From string / untypedAtomic: parse the lexical form.
    if matches!(ty, T::String | T::UntypedAtomic) {
        return cast_from_string(&v.string_value(), to);
    }
    // Numeric conversions.
    match (v, to) {
        (AtomicValue::Integer(i), T::Decimal) => Ok(AtomicValue::Decimal(Decimal::from_i64(*i))),
        (AtomicValue::Integer(i), T::Double) => Ok(AtomicValue::Double(*i as f64)),
        (AtomicValue::Integer(i), T::Float) => Ok(AtomicValue::Float(*i as f32)),
        (AtomicValue::Decimal(d), T::Integer) => Ok(AtomicValue::Integer(d.trunc_to_i64())),
        (AtomicValue::Decimal(d), T::Double) => Ok(AtomicValue::Double(d.to_f64())),
        (AtomicValue::Decimal(d), T::Float) => Ok(AtomicValue::Float(d.to_f64() as f32)),
        (AtomicValue::Double(d), T::Integer) => {
            if d.is_finite() {
                Ok(AtomicValue::Integer(d.trunc() as i64))
            } else {
                Err(XmlError::new(
                    "FOCA0002",
                    "cannot cast non-finite double to integer",
                ))
            }
        }
        (AtomicValue::Double(d), T::Decimal) => Ok(AtomicValue::Decimal(Decimal::from_f64(*d)?)),
        (AtomicValue::Double(d), T::Float) => Ok(AtomicValue::Float(*d as f32)),
        (AtomicValue::Float(f), T::Integer) => {
            if f.is_finite() {
                Ok(AtomicValue::Integer(f.trunc() as i64))
            } else {
                Err(XmlError::new(
                    "FOCA0002",
                    "cannot cast non-finite float to integer",
                ))
            }
        }
        (AtomicValue::Float(f), T::Decimal) => {
            Ok(AtomicValue::Decimal(Decimal::from_f64(*f as f64)?))
        }
        (AtomicValue::Float(f), T::Double) => Ok(AtomicValue::Double(*f as f64)),
        // Boolean ↔ numeric.
        (AtomicValue::Boolean(b), T::Integer) => Ok(AtomicValue::Integer(*b as i64)),
        (AtomicValue::Boolean(b), T::Decimal) => {
            Ok(AtomicValue::Decimal(Decimal::from_i64(*b as i64)))
        }
        (AtomicValue::Boolean(b), T::Double) => Ok(AtomicValue::Double(*b as i64 as f64)),
        (AtomicValue::Boolean(b), T::Float) => Ok(AtomicValue::Float(*b as i64 as f32)),
        (AtomicValue::Integer(i), T::Boolean) => Ok(AtomicValue::Boolean(*i != 0)),
        (AtomicValue::Decimal(d), T::Boolean) => Ok(AtomicValue::Boolean(*d != Decimal::ZERO)),
        (AtomicValue::Double(d), T::Boolean) => Ok(AtomicValue::Boolean(*d != 0.0 && !d.is_nan())),
        (AtomicValue::Float(f), T::Boolean) => Ok(AtomicValue::Boolean(*f != 0.0 && !f.is_nan())),
        // anyURI → string is handled above; string → anyURI below via parse.
        (AtomicValue::DateTime(dt), T::Date) => Ok(AtomicValue::Date(dt.date)),
        (AtomicValue::DateTime(dt), T::Time) => Ok(AtomicValue::Time(Time {
            millis: dt.millis,
            tz_minutes: dt.date.tz_minutes,
        })),
        (AtomicValue::Date(d), T::DateTime) => Ok(AtomicValue::DateTime(DateTime {
            date: *d,
            millis: 0,
        })),
        _ => Err(XmlError::new(
            "XPTY0004",
            format!("cannot cast {} to {}", ty, to),
        )),
    }
}

/// Casts from a lexical (string) form to a target type.
pub fn cast_from_string(s: &str, to: AtomicType) -> xqr_xml::Result<AtomicValue> {
    use AtomicType as T;
    let trimmed = s.trim();
    Ok(match to {
        T::String => AtomicValue::string(s),
        T::UntypedAtomic => AtomicValue::untyped(s),
        T::Boolean => AtomicValue::Boolean(AtomicValue::parse_boolean(trimmed)?),
        T::Integer => AtomicValue::Integer(AtomicValue::parse_integer(trimmed)?),
        T::Decimal => AtomicValue::Decimal(Decimal::parse(trimmed)?),
        T::Double => AtomicValue::Double(AtomicValue::parse_double(trimmed)?),
        T::Float => AtomicValue::Float(AtomicValue::parse_double(trimmed)? as f32),
        T::AnyUri => AtomicValue::AnyUri(trimmed.into()),
        T::Date => AtomicValue::Date(Date::parse(trimmed)?),
        T::Time => AtomicValue::Time(Time::parse(trimmed)?),
        T::DateTime => AtomicValue::DateTime(DateTime::parse(trimmed)?),
        T::Duration => AtomicValue::Duration(Duration::parse(trimmed)?),
        T::HexBinary => {
            if !trimmed.len().is_multiple_of(2) || !trimmed.bytes().all(|b| b.is_ascii_hexdigit()) {
                return Err(XmlError::new("FORG0001", "invalid hexBinary"));
            }
            let bytes: Vec<u8> = (0..trimmed.len())
                .step_by(2)
                .map(|i| u8::from_str_radix(&trimmed[i..i + 2], 16).unwrap())
                .collect();
            AtomicValue::HexBinary(bytes.into())
        }
        T::Base64Binary => AtomicValue::Base64Binary(atomic::base64_decode(trimmed)?.into()),
        T::GYear => AtomicValue::GYear(
            trimmed
                .parse()
                .map_err(|_| XmlError::new("FORG0001", "invalid gYear"))?,
        ),
        T::GMonth => {
            let body = trimmed
                .strip_prefix("--")
                .ok_or_else(|| XmlError::new("FORG0001", "invalid gMonth"))?;
            AtomicValue::GMonth(
                body.parse()
                    .map_err(|_| XmlError::new("FORG0001", "invalid gMonth"))?,
            )
        }
        T::GDay => {
            let body = trimmed
                .strip_prefix("---")
                .ok_or_else(|| XmlError::new("FORG0001", "invalid gDay"))?;
            AtomicValue::GDay(
                body.parse()
                    .map_err(|_| XmlError::new("FORG0001", "invalid gDay"))?,
            )
        }
        T::GYearMonth => {
            let (y, m) = trimmed
                .rsplit_once('-')
                .ok_or_else(|| XmlError::new("FORG0001", "invalid gYearMonth"))?;
            AtomicValue::GYearMonth(
                y.parse()
                    .map_err(|_| XmlError::new("FORG0001", "invalid gYearMonth"))?,
                m.parse()
                    .map_err(|_| XmlError::new("FORG0001", "invalid gYearMonth"))?,
            )
        }
        T::GMonthDay => {
            let body = trimmed
                .strip_prefix("--")
                .ok_or_else(|| XmlError::new("FORG0001", "invalid gMonthDay"))?;
            let (m, d) = body
                .split_once('-')
                .ok_or_else(|| XmlError::new("FORG0001", "invalid gMonthDay"))?;
            AtomicValue::GMonthDay(
                m.parse()
                    .map_err(|_| XmlError::new("FORG0001", "invalid gMonthDay"))?,
                d.parse()
                    .map_err(|_| XmlError::new("FORG0001", "invalid gMonthDay"))?,
            )
        }
        T::QName | T::Notation => {
            return Err(XmlError::new(
                "XPTY0004",
                format!("casting strings to {to} requires static context; unsupported"),
            ))
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn string_to_numerics() {
        assert_eq!(
            cast_from_string("42", AtomicType::Integer).unwrap(),
            AtomicValue::Integer(42)
        );
        assert_eq!(
            cast_from_string(" 2.5 ", AtomicType::Decimal)
                .unwrap()
                .string_value(),
            "2.5"
        );
        assert_eq!(
            cast_from_string("1e2", AtomicType::Double).unwrap(),
            AtomicValue::Double(100.0)
        );
        assert!(cast_from_string("abc", AtomicType::Integer).is_err());
    }

    #[test]
    fn untyped_behaves_like_string_source() {
        let u = AtomicValue::untyped("7");
        assert_eq!(
            cast_atomic(&u, AtomicType::Integer).unwrap(),
            AtomicValue::Integer(7)
        );
        assert_eq!(
            cast_atomic(&u, AtomicType::Double).unwrap(),
            AtomicValue::Double(7.0)
        );
    }

    #[test]
    fn everything_to_string() {
        assert_eq!(
            cast_atomic(&AtomicValue::Integer(5), AtomicType::String).unwrap(),
            AtomicValue::string("5")
        );
        assert_eq!(
            cast_atomic(&AtomicValue::Boolean(true), AtomicType::String).unwrap(),
            AtomicValue::string("true")
        );
    }

    #[test]
    fn numeric_conversions() {
        assert_eq!(
            cast_atomic(&AtomicValue::Double(2.9), AtomicType::Integer).unwrap(),
            AtomicValue::Integer(2)
        );
        assert_eq!(
            cast_atomic(
                &AtomicValue::Decimal(Decimal::parse("-3.7").unwrap()),
                AtomicType::Integer
            )
            .unwrap(),
            AtomicValue::Integer(-3)
        );
        assert!(cast_atomic(&AtomicValue::Double(f64::NAN), AtomicType::Integer).is_err());
    }

    #[test]
    fn boolean_casts() {
        assert_eq!(
            cast_atomic(&AtomicValue::Integer(0), AtomicType::Boolean).unwrap(),
            AtomicValue::Boolean(false)
        );
        assert_eq!(
            cast_atomic(&AtomicValue::Double(f64::NAN), AtomicType::Boolean).unwrap(),
            AtomicValue::Boolean(false)
        );
        assert_eq!(
            cast_atomic(&AtomicValue::Boolean(true), AtomicType::Double).unwrap(),
            AtomicValue::Double(1.0)
        );
    }

    #[test]
    fn temporal_casts() {
        let dt = cast_from_string("2001-02-03T04:05:06Z", AtomicType::DateTime).unwrap();
        let d = cast_atomic(&dt, AtomicType::Date).unwrap();
        assert_eq!(d.string_value(), "2001-02-03Z");
        let t = cast_atomic(&dt, AtomicType::Time).unwrap();
        assert_eq!(t.string_value(), "04:05:06Z");
    }

    #[test]
    fn binary_casts() {
        let h = cast_from_string("0aFF", AtomicType::HexBinary).unwrap();
        assert_eq!(h.string_value(), "0AFF");
        assert!(cast_from_string("0a1", AtomicType::HexBinary).is_err());
        let b = cast_from_string("Zm9v", AtomicType::Base64Binary).unwrap();
        assert_eq!(b.string_value(), "Zm9v");
    }

    #[test]
    fn gregorian_casts() {
        assert_eq!(
            cast_from_string("--02-29", AtomicType::GMonthDay).unwrap(),
            AtomicValue::GMonthDay(2, 29)
        );
        assert_eq!(
            cast_from_string("---15", AtomicType::GDay).unwrap(),
            AtomicValue::GDay(15)
        );
        assert_eq!(
            cast_from_string("2004-07", AtomicType::GYearMonth).unwrap(),
            AtomicValue::GYearMonth(2004, 7)
        );
    }

    #[test]
    fn unsupported_casts_error() {
        assert!(cast_atomic(&AtomicValue::Boolean(true), AtomicType::Date).is_err());
        assert!(cast_from_string("p:n", AtomicType::QName).is_err());
    }
}
