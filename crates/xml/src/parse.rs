//! A from-scratch XML 1.0 (+ Namespaces) non-validating parser.
//!
//! Supports elements, attributes, character data, entity & character
//! references, CDATA sections, comments, processing instructions, an XML
//! declaration, and a DOCTYPE declaration (skipped, internal subsets with
//! nested brackets included). Namespace declarations (`xmlns`, `xmlns:p`)
//! are resolved into expanded QNames.
//!
//! By default whitespace-only text between elements is stripped (the right
//! default for the data-oriented documents of the benchmarks); set
//! [`ParseOptions::preserve_whitespace`] for fidelity.

use std::collections::HashMap;
use std::rc::Rc;

use crate::build::TreeBuilder;
use crate::limits::Governor;
use crate::node::Document;
use crate::qname::QName;
use crate::XmlError;

/// Parser configuration.
#[derive(Clone, Debug)]
pub struct ParseOptions {
    /// Keep whitespace-only text nodes (default: false).
    pub preserve_whitespace: bool,
    /// Element nesting limit: errors instead of exhausting the native
    /// stack on pathological documents (default 512, the pre-governor
    /// constant; configure via `Limits::max_document_depth`).
    pub max_depth: usize,
    /// Optional governor: when set, the parser consults its deadline and
    /// cancellation flag periodically, so parsing a huge document is
    /// interruptible like every other execution phase.
    pub governor: Option<Governor>,
}

impl Default for ParseOptions {
    fn default() -> ParseOptions {
        ParseOptions {
            preserve_whitespace: false,
            max_depth: 512,
            governor: None,
        }
    }
}

/// A parse failure, with 1-based line/column info. `code` carries the
/// governor's budget code when the failure was a limit trip rather than
/// malformed input.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    pub message: String,
    pub line: usize,
    pub column: usize,
    pub code: Option<&'static str>,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "XML parse error at {}:{}: {}",
            self.line, self.column, self.message
        )
    }
}

impl std::error::Error for ParseError {}

impl From<ParseError> for XmlError {
    fn from(e: ParseError) -> Self {
        XmlError::new(e.code.unwrap_or("FODC0006"), e.to_string())
    }
}

/// Parses a complete document; the result's root is a document node.
pub fn parse_document(input: &str, options: &ParseOptions) -> Result<Rc<Document>, ParseError> {
    let mut p = Parser::new(input, options.clone());
    p.builder.start_document();
    p.parse_prolog()?;
    p.parse_element()?;
    p.skip_misc()?;
    if p.pos < p.bytes.len() {
        return Err(p.err("content after document element"));
    }
    p.builder.end_document();
    crate::metrics::metrics().record_document_parsed();
    Ok(p.builder.finish(None))
}

struct Parser<'a> {
    input: &'a str,
    bytes: &'a [u8],
    pos: usize,
    options: ParseOptions,
    builder: TreeBuilder,
    /// Namespace scopes: stack of prefix→uri maps.
    ns_stack: Vec<HashMap<String, Option<String>>>,
    depth: usize,
    /// Nodes parsed since the governor's clock was last consulted.
    since_check: u32,
}

/// Nodes parsed between governor deadline/cancel checks.
const GOVERNOR_CHECK_INTERVAL: u32 = 1024;

impl<'a> Parser<'a> {
    fn new(input: &'a str, options: ParseOptions) -> Self {
        let mut base = HashMap::new();
        base.insert(
            "xml".to_string(),
            Some("http://www.w3.org/XML/1998/namespace".to_string()),
        );
        Parser {
            input,
            bytes: input.as_bytes(),
            pos: 0,
            options,
            builder: TreeBuilder::new(),
            ns_stack: vec![base],
            depth: 0,
            since_check: 0,
        }
    }

    fn err(&self, msg: impl Into<String>) -> ParseError {
        self.err_with_code(msg, None)
    }

    fn err_with_code(&self, msg: impl Into<String>, code: Option<&'static str>) -> ParseError {
        let consumed = &self.input[..self.pos.min(self.input.len())];
        let line = consumed.bytes().filter(|&b| b == b'\n').count() + 1;
        let column = consumed.len() - consumed.rfind('\n').map(|i| i + 1).unwrap_or(0) + 1;
        ParseError {
            message: msg.into(),
            line,
            column,
            code,
        }
    }

    /// Cooperative governor check, consulted every
    /// [`GOVERNOR_CHECK_INTERVAL`] parsed nodes.
    fn governor_check(&mut self) -> Result<(), ParseError> {
        self.since_check += 1;
        if self.since_check < GOVERNOR_CHECK_INTERVAL {
            return Ok(());
        }
        self.since_check = 0;
        if let Some(g) = &self.options.governor {
            if let Err(e) = g.check_time() {
                return Err(self.err_with_code(e.message, Some(e.code)));
            }
        }
        Ok(())
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn starts_with(&self, s: &str) -> bool {
        self.bytes[self.pos..].starts_with(s.as_bytes())
    }

    fn bump(&mut self, n: usize) {
        self.pos += n;
    }

    fn expect(&mut self, s: &str) -> Result<(), ParseError> {
        if self.starts_with(s) {
            self.bump(s.len());
            Ok(())
        } else {
            Err(self.err(format!("expected {s:?}")))
        }
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.pos += 1;
        }
    }

    fn parse_prolog(&mut self) -> Result<(), ParseError> {
        if self.starts_with("<?xml") {
            let end = self.input[self.pos..]
                .find("?>")
                .ok_or_else(|| self.err("unterminated XML declaration"))?;
            self.bump(end + 2);
        }
        self.skip_misc()?;
        if self.starts_with("<!DOCTYPE") {
            self.skip_doctype()?;
            self.skip_misc()?;
        }
        Ok(())
    }

    fn skip_doctype(&mut self) -> Result<(), ParseError> {
        self.expect("<!DOCTYPE")?;
        let mut depth = 1usize;
        let mut in_subset = false;
        while depth > 0 {
            match self.peek() {
                None => return Err(self.err("unterminated DOCTYPE")),
                Some(b'[') => {
                    in_subset = true;
                    self.bump(1);
                }
                Some(b']') => {
                    in_subset = false;
                    self.bump(1);
                }
                Some(b'<') if in_subset => {
                    depth += 1;
                    self.bump(1);
                }
                Some(b'>') => {
                    depth -= 1;
                    self.bump(1);
                }
                Some(_) => self.bump(1),
            }
        }
        Ok(())
    }

    /// Comments and PIs between markup at top level.
    fn skip_misc(&mut self) -> Result<(), ParseError> {
        loop {
            self.skip_ws();
            if self.starts_with("<!--") {
                self.parse_comment()?;
            } else if self.starts_with("<?") {
                self.parse_pi()?;
            } else {
                return Ok(());
            }
        }
    }

    fn read_name(&mut self) -> Result<&'a str, ParseError> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            let ok = if self.pos == start {
                b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
            } else {
                b.is_ascii_alphanumeric() || matches!(b, b'_' | b'-' | b'.' | b':') || b >= 0x80
            };
            if !ok {
                break;
            }
            self.pos += 1;
        }
        if self.pos == start {
            return Err(self.err("expected a name"));
        }
        Ok(&self.input[start..self.pos])
    }

    fn resolve(&self, raw: &str, is_attr: bool) -> Result<QName, ParseError> {
        match raw.split_once(':') {
            Some((prefix, local)) => {
                for scope in self.ns_stack.iter().rev() {
                    if let Some(uri) = scope.get(prefix) {
                        return Ok(QName::full(Some(prefix), uri.as_deref(), local));
                    }
                }
                Err(self.err(format!("undeclared namespace prefix {prefix:?}")))
            }
            None => {
                if is_attr {
                    // Unprefixed attributes are in no namespace.
                    return Ok(QName::local(raw));
                }
                for scope in self.ns_stack.iter().rev() {
                    if let Some(uri) = scope.get("") {
                        return Ok(QName::full(None, uri.as_deref(), raw));
                    }
                }
                Ok(QName::local(raw))
            }
        }
    }

    fn parse_element(&mut self) -> Result<(), ParseError> {
        self.depth += 1;
        if self.depth > self.options.max_depth {
            self.depth -= 1;
            return Err(self.err("element nesting too deep"));
        }
        if let Err(e) = crate::failpoint::check("parse::alloc") {
            self.depth -= 1;
            return Err(self.err_with_code(e.message, Some(e.code)));
        }
        self.governor_check()?;
        let result = self.parse_element_inner();
        self.depth -= 1;
        result
    }

    fn parse_element_inner(&mut self) -> Result<(), ParseError> {
        self.expect("<")?;
        let raw_name = self.read_name()?.to_string();

        // First pass over attributes: gather raw (name, value) pairs and any
        // namespace declarations for this scope.
        let mut scope: HashMap<String, Option<String>> = HashMap::new();
        let mut attrs: Vec<(String, String)> = Vec::new();
        loop {
            self.skip_ws();
            match self.peek() {
                Some(b'>') | Some(b'/') => break,
                None => return Err(self.err("unterminated start tag")),
                _ => {}
            }
            let aname = self.read_name()?.to_string();
            self.skip_ws();
            self.expect("=")?;
            self.skip_ws();
            let avalue = self.parse_attr_value()?;
            if aname == "xmlns" {
                scope.insert(
                    String::new(),
                    if avalue.is_empty() {
                        None
                    } else {
                        Some(avalue)
                    },
                );
            } else if let Some(prefix) = aname.strip_prefix("xmlns:") {
                scope.insert(prefix.to_string(), Some(avalue));
            } else {
                attrs.push((aname, avalue));
            }
        }
        self.ns_stack.push(scope);

        let name = self.resolve(&raw_name, false)?;
        self.builder.start_element(name);
        for (aname, avalue) in attrs {
            let q = self.resolve(&aname, true)?;
            self.builder.attribute(q, &avalue);
        }

        if self.starts_with("/>") {
            self.bump(2);
            self.builder.end_element();
            self.ns_stack.pop();
            return Ok(());
        }
        self.expect(">")?;
        self.parse_content()?;
        self.expect("</")?;
        let close = self.read_name()?;
        if close != raw_name {
            return Err(self.err(format!("mismatched end tag: <{raw_name}> … </{close}>")));
        }
        self.skip_ws();
        self.expect(">")?;
        self.builder.end_element();
        self.ns_stack.pop();
        Ok(())
    }

    fn parse_content(&mut self) -> Result<(), ParseError> {
        let mut text = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unexpected end of input in element content")),
                Some(b'<') => {
                    if self.starts_with("</") {
                        self.flush_text(&mut text);
                        return Ok(());
                    } else if self.starts_with("<!--") {
                        self.flush_text(&mut text);
                        self.parse_comment()?;
                    } else if self.starts_with("<![CDATA[") {
                        self.bump(9);
                        let end = self.input[self.pos..]
                            .find("]]>")
                            .ok_or_else(|| self.err("unterminated CDATA"))?;
                        text.push_str(&self.input[self.pos..self.pos + end]);
                        self.bump(end + 3);
                    } else if self.starts_with("<?") {
                        self.flush_text(&mut text);
                        self.parse_pi()?;
                    } else {
                        self.flush_text(&mut text);
                        self.parse_element()?;
                    }
                }
                Some(b'&') => {
                    text.push_str(&self.parse_reference()?);
                }
                Some(_) => {
                    let start = self.pos;
                    while let Some(b) = self.peek() {
                        if b == b'<' || b == b'&' {
                            break;
                        }
                        self.pos += 1;
                    }
                    text.push_str(&self.input[start..self.pos]);
                }
            }
        }
    }

    fn flush_text(&mut self, text: &mut String) {
        if text.is_empty() {
            return;
        }
        if self.options.preserve_whitespace || !text.chars().all(char::is_whitespace) {
            self.builder.text(text);
        }
        text.clear();
    }

    fn parse_comment(&mut self) -> Result<(), ParseError> {
        self.expect("<!--")?;
        let end = self.input[self.pos..]
            .find("-->")
            .ok_or_else(|| self.err("unterminated comment"))?;
        let content = &self.input[self.pos..self.pos + end];
        self.bump(end + 3);
        self.builder.comment(content);
        Ok(())
    }

    fn parse_pi(&mut self) -> Result<(), ParseError> {
        self.expect("<?")?;
        let target = self.read_name()?.to_string();
        if target.eq_ignore_ascii_case("xml") {
            return Err(self.err("the 'xml' PI target is reserved"));
        }
        self.skip_ws();
        let end = self.input[self.pos..]
            .find("?>")
            .ok_or_else(|| self.err("unterminated processing instruction"))?;
        let content = &self.input[self.pos..self.pos + end];
        self.bump(end + 2);
        self.builder.pi(&target, content);
        Ok(())
    }

    fn parse_attr_value(&mut self) -> Result<String, ParseError> {
        let quote = match self.peek() {
            Some(q @ (b'"' | b'\'')) => q,
            _ => return Err(self.err("expected quoted attribute value")),
        };
        self.bump(1);
        let mut value = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated attribute value")),
                Some(q) if q == quote => {
                    self.bump(1);
                    return Ok(value);
                }
                Some(b'&') => value.push_str(&self.parse_reference()?),
                Some(b'<') => return Err(self.err("'<' not allowed in attribute value")),
                Some(_) => {
                    let start = self.pos;
                    while let Some(b) = self.peek() {
                        if b == quote || b == b'&' || b == b'<' {
                            break;
                        }
                        self.pos += 1;
                    }
                    value.push_str(&self.input[start..self.pos]);
                }
            }
        }
    }

    fn parse_reference(&mut self) -> Result<String, ParseError> {
        self.expect("&")?;
        let end = self.input[self.pos..self.input.len().min(self.pos + 32)]
            .find(';')
            .ok_or_else(|| self.err("unterminated entity reference"))?;
        let name = &self.input[self.pos..self.pos + end];
        self.bump(end + 1);
        Ok(match name {
            "lt" => "<".to_string(),
            "gt" => ">".to_string(),
            "amp" => "&".to_string(),
            "quot" => "\"".to_string(),
            "apos" => "'".to_string(),
            _ if name.starts_with("#x") || name.starts_with("#X") => {
                let cp = u32::from_str_radix(&name[2..], 16)
                    .map_err(|_| self.err(format!("bad character reference &{name};")))?;
                char::from_u32(cp)
                    .ok_or_else(|| self.err("invalid character reference"))?
                    .to_string()
            }
            _ if name.starts_with('#') => {
                let cp: u32 = name[1..]
                    .parse()
                    .map_err(|_| self.err(format!("bad character reference &{name};")))?;
                char::from_u32(cp)
                    .ok_or_else(|| self.err("invalid character reference"))?
                    .to_string()
            }
            _ => return Err(self.err(format!("unknown entity &{name};"))),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::NodeKind;

    fn parse(s: &str) -> Rc<Document> {
        parse_document(s, &ParseOptions::default()).unwrap()
    }

    #[test]
    fn minimal_document() {
        let d = parse("<a/>");
        let root = d.root();
        assert_eq!(root.kind(), NodeKind::Document);
        assert_eq!(root.children()[0].name().unwrap().local_part(), "a");
    }

    #[test]
    fn nested_structure_and_attributes() {
        let d = parse(r#"<a x="1" y='two'><b>text</b><c/></a>"#);
        let a = &d.root().children()[0];
        assert_eq!(a.attributes().len(), 2);
        assert_eq!(a.attributes()[1].string_value(), "two");
        assert_eq!(a.children().len(), 2);
        assert_eq!(a.children()[0].string_value(), "text");
    }

    #[test]
    fn whitespace_stripping_default_and_preserve() {
        let src = "<a>\n  <b/>\n</a>";
        let d = parse(src);
        assert_eq!(d.root().children()[0].children().len(), 1);
        let d2 = parse_document(
            src,
            &ParseOptions {
                preserve_whitespace: true,
                ..ParseOptions::default()
            },
        )
        .unwrap();
        assert_eq!(d2.root().children()[0].children().len(), 3);
    }

    #[test]
    fn entities_and_char_refs() {
        let d = parse("<a>&lt;&amp;&gt; &#65;&#x42;</a>");
        assert_eq!(d.root().children()[0].string_value(), "<&> AB");
    }

    #[test]
    fn cdata() {
        let d = parse("<a><![CDATA[<not&markup>]]></a>");
        assert_eq!(d.root().children()[0].string_value(), "<not&markup>");
    }

    #[test]
    fn comments_and_pis() {
        let d = parse("<?xml version=\"1.0\"?><!-- hi --><a><!--in--><?tgt data?></a>");
        let a = &d.root().children()[1];
        assert_eq!(a.children()[0].kind(), NodeKind::Comment);
        assert_eq!(a.children()[1].kind(), NodeKind::Pi);
        assert_eq!(a.children()[1].string_value(), "data");
        assert_eq!(d.root().children()[0].kind(), NodeKind::Comment);
    }

    #[test]
    fn doctype_skipped() {
        let d = parse("<!DOCTYPE a [ <!ELEMENT a EMPTY> ]><a/>");
        assert_eq!(d.root().children()[0].name().unwrap().local_part(), "a");
    }

    #[test]
    fn namespaces() {
        let d = parse(r#"<p:a xmlns:p="http://ns" xmlns="http://def"><b p:x="1"/></p:a>"#);
        let a = &d.root().children()[0];
        assert_eq!(a.name().unwrap().uri(), Some("http://ns"));
        let b = &a.children()[0];
        assert_eq!(b.name().unwrap().uri(), Some("http://def"));
        assert_eq!(b.attributes()[0].name().unwrap().uri(), Some("http://ns"));
    }

    #[test]
    fn errors() {
        assert!(parse_document("<a>", &ParseOptions::default()).is_err());
        assert!(parse_document("<a></b>", &ParseOptions::default()).is_err());
        assert!(parse_document("<a>&bogus;</a>", &ParseOptions::default()).is_err());
        assert!(parse_document("<a/><b/>", &ParseOptions::default()).is_err());
        assert!(parse_document("<a x=1/>", &ParseOptions::default()).is_err());
        let e = parse_document("<a>\n<b></c></a>", &ParseOptions::default()).unwrap_err();
        assert_eq!(e.line, 2);
    }

    #[test]
    fn mixed_content_order() {
        let d = parse("<a>one<b/>two<c/>three</a>");
        let a = &d.root().children()[0];
        let kinds: Vec<NodeKind> = a.children().iter().map(|c| c.kind()).collect();
        assert_eq!(
            kinds,
            [
                NodeKind::Text,
                NodeKind::Element,
                NodeKind::Text,
                NodeKind::Element,
                NodeKind::Text
            ]
        );
        assert_eq!(a.string_value(), "onetwothree");
    }
}
