//! Generalized transient-failure retry with capped, jittered backoff.
//!
//! PR 5 grew an ad-hoc 3-attempt retry loop inside the spill-file
//! substrate; this module extracts it into the one policy every
//! transient-I/O path shares — spill reads/writes/opens and service-level
//! document loading alike — and fixes its two weaknesses:
//!
//! * **Deadline awareness.** Backoff sleeps are capped at the governor's
//!   remaining deadline and the clock/cancel flag is consulted both before
//!   and *after* every sleep, so a retrying operation can never run past
//!   the deadline it was already over (`XQRG0001`/`XQRG0002` surface
//!   instead of a wasted attempt).
//! * **Jitter.** Retries across concurrent queries are decorrelated by a
//!   deterministic per-(site, attempt) jitter drawn from a SplitMix64
//!   stream, so a shared flaky disk is not hammered in lockstep by every
//!   worker at once. Determinism (the stream is seeded from the policy
//!   seed and the site name, never from the clock) keeps chaos tests
//!   reproducible.
//!
//! The helper evaluates the named [`failpoint`](crate::failpoint) site
//! before each attempt: an injected `XQRFP01` error counts as a transient
//! failure and consumes an attempt (exactly the PR 5 contract), while any
//! other failpoint error — and any governor trip — aborts the retry loop
//! as [`RetryError::Fatal`]. Exhaustion is reported as
//! [`RetryError::Exhausted`] and the *caller* chooses the surfaced error
//! code (`XQRG0005` for spill I/O, `FODC0002` for document loading), so
//! the policy stays error-domain-agnostic.
//!
//! Every retry (not first attempts) is counted into the process metrics
//! (`transient_retries`; spill sites additionally keep the PR 5
//! `spill_io_retries` counter).

use std::time::Duration;

use crate::failpoint;
use crate::limits::Governor;
use crate::metrics::metrics;
use crate::XmlError;

/// How a transient operation is retried. The defaults reproduce PR 5's
/// spill policy (3 attempts, 1 ms then 2 ms) plus up to 50% jitter.
#[derive(Clone, Debug)]
pub struct RetryPolicy {
    /// Total attempts, including the first (minimum 1).
    pub attempts: u32,
    /// Backoff before the second attempt; doubles per subsequent attempt.
    pub base: Duration,
    /// Cap on any single backoff sleep (pre-jitter).
    pub cap: Duration,
    /// Extra sleep of up to this percentage of the computed backoff,
    /// drawn deterministically per (seed, site, attempt). 0 disables.
    pub jitter_pct: u8,
    /// Seed of the jitter stream. Fixed by default so runs are
    /// reproducible; services may salt it per worker.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            attempts: 3,
            base: Duration::from_millis(1),
            cap: Duration::from_millis(20),
            jitter_pct: 50,
            seed: 0x9E37_79B9_7F4A_7C15,
        }
    }
}

impl RetryPolicy {
    pub fn with_attempts(mut self, n: u32) -> RetryPolicy {
        self.attempts = n.max(1);
        self
    }

    pub fn with_base(mut self, d: Duration) -> RetryPolicy {
        self.base = d;
        self
    }

    pub fn with_cap(mut self, d: Duration) -> RetryPolicy {
        self.cap = d;
        self
    }

    pub fn with_jitter_pct(mut self, pct: u8) -> RetryPolicy {
        self.jitter_pct = pct.min(100);
        self
    }

    pub fn with_seed(mut self, seed: u64) -> RetryPolicy {
        self.seed = seed;
        self
    }

    /// The backoff before attempt `attempt` (1-based over retries:
    /// attempt 1 is the first *retry*), jittered and capped.
    fn backoff(&self, site: &str, attempt: u32) -> Duration {
        let exp = attempt.saturating_sub(1).min(20);
        let raw = self.base.saturating_mul(1 << exp).min(self.cap);
        if self.jitter_pct == 0 || raw.is_zero() {
            return raw;
        }
        // Deterministic decorrelation: SplitMix64 over (seed, site, attempt).
        let x = splitmix64(self.seed ^ fnv1a(site.as_bytes()) ^ u64::from(attempt));
        let frac = (x >> 11) as f64 / (1u64 << 53) as f64;
        let extra = raw.mul_f64(frac * f64::from(self.jitter_pct.min(100)) / 100.0);
        raw + extra
    }
}

/// Why a retried operation ultimately failed.
#[derive(Debug)]
pub enum RetryError {
    /// The governor tripped (deadline, cancellation) or a failpoint
    /// injected a non-transient error; the loop aborted immediately.
    Fatal(XmlError),
    /// Every attempt failed transiently; `last` is the final failure.
    Exhausted { attempts: u32, last: String },
}

impl RetryError {
    /// Maps exhaustion to a caller-chosen [`XmlError`]; fatal errors pass
    /// through unchanged.
    pub fn into_xml_error(self, on_exhausted: impl FnOnce(u32, String) -> XmlError) -> XmlError {
        match self {
            RetryError::Fatal(e) => e,
            RetryError::Exhausted { attempts, last } => on_exhausted(attempts, last),
        }
    }
}

/// Retries `op` under `policy`, evaluating the `site` failpoint before
/// each attempt and sleeping a governed, jittered backoff between
/// attempts. The closure receives the 0-based attempt index so callers
/// can rewind to a known offset after a partial write.
pub fn retry_transient<T>(
    site: &str,
    gov: &Governor,
    policy: &RetryPolicy,
    mut op: impl FnMut(u32) -> std::io::Result<T>,
) -> Result<T, RetryError> {
    let attempts = policy.attempts.max(1);
    let mut last = String::new();
    for attempt in 0..attempts {
        if attempt > 0 {
            metrics().record_transient_retry();
            if site.starts_with("spill::") {
                metrics().record_spill_io_retry();
            }
            governed_sleep(gov, policy.backoff(site, attempt)).map_err(RetryError::Fatal)?;
        }
        match failpoint::check(site) {
            Ok(()) => {}
            Err(e) if e.code == failpoint::ERR_INJECTED => {
                last = e.message;
                continue;
            }
            Err(e) => return Err(RetryError::Fatal(e)),
        }
        match op(attempt) {
            Ok(v) => return Ok(v),
            Err(e) => last = e.to_string(),
        }
    }
    Err(RetryError::Exhausted { attempts, last })
}

/// Sleeps `d` without overshooting the governor's deadline: the sleep is
/// trimmed to the remaining deadline and the clock/cancel flag is checked
/// on both sides, so a deadline that expires mid-backoff surfaces as
/// `XQRG0001` instead of buying the operation a free extra attempt.
pub fn governed_sleep(gov: &Governor, d: Duration) -> crate::Result<()> {
    gov.check_time()?;
    let d = match gov.remaining_deadline() {
        Some(remaining) => d.min(remaining),
        None => d,
    };
    if !d.is_zero() {
        std::thread::sleep(d);
    }
    gov.check_time()
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x1000_0000_01B3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::limits::{CancellationToken, Limits, ERR_CANCELLED, ERR_DEADLINE};

    fn fast_policy() -> RetryPolicy {
        RetryPolicy::default()
            .with_base(Duration::from_micros(10))
            .with_cap(Duration::from_micros(50))
    }

    #[test]
    fn succeeds_after_transient_failures() {
        let gov = Governor::unlimited();
        let mut failures = 2;
        let v = retry_transient("retry_test::transient", &gov, &fast_policy(), |_| {
            if failures > 0 {
                failures -= 1;
                Err(std::io::Error::other("flaky"))
            } else {
                Ok(42)
            }
        })
        .unwrap();
        assert_eq!(v, 42);
    }

    #[test]
    fn exhaustion_reports_last_error_and_attempts() {
        let gov = Governor::unlimited();
        let err = retry_transient::<()>("retry_test::dead", &gov, &fast_policy(), |_| {
            Err(std::io::Error::other("disk on fire"))
        })
        .unwrap_err();
        match err {
            RetryError::Exhausted { attempts, last } => {
                assert_eq!(attempts, 3);
                assert!(last.contains("disk on fire"));
            }
            other => panic!("expected exhaustion, got {other:?}"),
        }
    }

    #[test]
    fn retries_honor_remaining_deadline() {
        // A 1 ms deadline must bound the whole retry loop even though the
        // nominal backoff schedule (20 + 40 ms) far exceeds it.
        let gov = Governor::new(
            &Limits::default().with_deadline(Duration::from_millis(1)),
            CancellationToken::new(),
        );
        let policy = RetryPolicy::default()
            .with_attempts(3)
            .with_base(Duration::from_millis(20))
            .with_cap(Duration::from_millis(40));
        let t0 = std::time::Instant::now();
        let err = retry_transient::<()>("retry_test::deadline", &gov, &policy, |_| {
            Err(std::io::Error::other("still down"))
        })
        .unwrap_err();
        assert!(
            t0.elapsed() < Duration::from_millis(30),
            "sleep was not trimmed to the deadline: {:?}",
            t0.elapsed()
        );
        match err {
            RetryError::Fatal(e) => assert_eq!(e.code, ERR_DEADLINE),
            other => panic!("expected a fatal deadline trip, got {other:?}"),
        }
    }

    #[test]
    fn cancellation_aborts_the_backoff() {
        let token = CancellationToken::new();
        let gov = Governor::new(&Limits::default(), token.clone());
        token.cancel();
        let err = retry_transient::<()>("retry_test::cancel", &gov, &fast_policy(), |_| {
            Err(std::io::Error::other("down"))
        })
        .unwrap_err();
        match err {
            RetryError::Fatal(e) => assert_eq!(e.code, ERR_CANCELLED),
            other => panic!("expected a fatal cancellation, got {other:?}"),
        }
    }

    #[test]
    fn jitter_is_deterministic_and_bounded() {
        let p = RetryPolicy::default()
            .with_base(Duration::from_millis(4))
            .with_cap(Duration::from_millis(16))
            .with_jitter_pct(50);
        let a = p.backoff("site::x", 1);
        let b = p.backoff("site::x", 1);
        assert_eq!(a, b, "same (seed, site, attempt) must jitter identically");
        assert!(a >= Duration::from_millis(4) && a <= Duration::from_millis(6));
        // Different sites decorrelate (overwhelmingly likely to differ).
        let c = p.backoff("site::y", 1);
        assert!(a != c || p.backoff("site::y", 2) != p.backoff("site::x", 2));
        // Capping applies before jitter: attempt 10 raw backoff is cap.
        let far = p.backoff("site::x", 10);
        assert!(far <= Duration::from_millis(24));
    }

    #[test]
    fn retries_are_metered() {
        // Counters are process-global and tests run in parallel: assert a
        // lower-bound delta only (see metrics.rs module docs).
        let before = metrics().snapshot().transient_retries;
        let gov = Governor::unlimited();
        let _ = retry_transient::<()>("retry_test::metered", &gov, &fast_policy(), |_| {
            Err(std::io::Error::other("down"))
        });
        assert!(metrics().snapshot().transient_retries >= before + 2);
    }
}
