//! Serialization of items and sequences back to XML text — the engine of
//! the algebra's `Serialize` operator.

use std::fmt::Write as _;

use crate::item::{Item, Sequence};
use crate::node::{NodeHandle, NodeKind};

/// Serializes one node to markup.
pub fn serialize_node(node: &NodeHandle) -> String {
    let mut out = String::new();
    write_node(&mut out, node);
    out
}

/// Serializes a sequence per the XQuery serialization rules: adjacent atomic
/// values are separated by single spaces; nodes are serialized as markup.
pub fn serialize_sequence(seq: &Sequence) -> String {
    let mut out = String::new();
    let mut prev_atomic = false;
    for item in seq.iter() {
        match item {
            Item::Atomic(a) => {
                if prev_atomic {
                    out.push(' ');
                }
                out.push_str(&a.string_value());
                prev_atomic = true;
            }
            Item::Node(n) => {
                write_node(&mut out, n);
                prev_atomic = false;
            }
        }
    }
    out
}

fn write_node(out: &mut String, node: &NodeHandle) {
    match node.kind() {
        NodeKind::Document => {
            for c in node.children() {
                write_node(out, &c);
            }
        }
        NodeKind::Element => {
            let name = node.name().expect("element has a name").lexical();
            let _ = write!(out, "<{name}");
            for a in node.attributes() {
                let _ = write!(
                    out,
                    " {}=\"{}\"",
                    a.name().expect("attribute has a name").lexical(),
                    escape_attr(a.data().value.as_deref().unwrap_or(""))
                );
            }
            // Emit a namespace declaration for elements whose QName carries
            // a URI but no ancestor declared it; keep it simple: redeclare on
            // every element whose own name has a URI differing from parent's.
            if let Some(uri) = node.name().unwrap().uri() {
                let parent_uri = node
                    .parent()
                    .and_then(|p| p.name().and_then(|n| n.uri().map(String::from)));
                if parent_uri.as_deref() != Some(uri) {
                    match node.name().unwrap().prefix() {
                        Some(p) => {
                            let _ = write!(out, " xmlns:{p}=\"{}\"", escape_attr(uri));
                        }
                        None => {
                            let _ = write!(out, " xmlns=\"{}\"", escape_attr(uri));
                        }
                    }
                }
            }
            let children = node.children();
            if children.is_empty() {
                out.push_str("/>");
            } else {
                out.push('>');
                for c in children {
                    write_node(out, &c);
                }
                let _ = write!(out, "</{name}>");
            }
        }
        NodeKind::Text => out.push_str(&escape_text(node.data().value.as_deref().unwrap_or(""))),
        NodeKind::Comment => {
            let _ = write!(out, "<!--{}-->", node.data().value.as_deref().unwrap_or(""));
        }
        NodeKind::Pi => {
            let _ = write!(
                out,
                "<?{} {}?>",
                node.name().expect("pi has a target").local_part(),
                node.data().value.as_deref().unwrap_or("")
            );
        }
        NodeKind::Attribute => {
            // A free-standing attribute serializes as name="value".
            let _ = write!(
                out,
                "{}=\"{}\"",
                node.name().expect("attribute has a name").lexical(),
                escape_attr(node.data().value.as_deref().unwrap_or(""))
            );
        }
    }
}

/// Serializes one node with two-space indentation (for human inspection;
/// whitespace-sensitive mixed content is kept inline).
pub fn serialize_node_pretty(node: &NodeHandle) -> String {
    let mut out = String::new();
    write_pretty(&mut out, node, 0);
    out
}

fn write_pretty(out: &mut String, node: &NodeHandle, depth: usize) {
    match node.kind() {
        NodeKind::Document => {
            for c in node.children() {
                write_pretty(out, &c, depth);
            }
        }
        NodeKind::Element => {
            let name = node.name().expect("element has a name").lexical();
            let _ = write!(out, "{}<{name}", "  ".repeat(depth));
            for a in node.attributes() {
                let _ = write!(
                    out,
                    " {}=\"{}\"",
                    a.name().expect("attribute has a name").lexical(),
                    escape_attr(a.data().value.as_deref().unwrap_or(""))
                );
            }
            let children = node.children();
            if children.is_empty() {
                out.push_str("/>\n");
            } else if children.iter().all(|c| c.kind() == NodeKind::Element) {
                out.push_str(">\n");
                for c in children {
                    write_pretty(out, &c, depth + 1);
                }
                let _ = writeln!(out, "{}</{name}>", "  ".repeat(depth));
            } else {
                // Mixed or text content: keep inline to preserve values.
                out.push('>');
                for c in children {
                    write_node(out, &c);
                }
                let _ = writeln!(out, "</{name}>");
            }
        }
        _ => {
            let _ = write!(out, "{}", "  ".repeat(depth));
            write_node(out, node);
            out.push('\n');
        }
    }
}

/// Escapes character data.
pub fn escape_text(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '&' => out.push_str("&amp;"),
            _ => out.push(c),
        }
    }
    out
}

/// Escapes attribute values (double-quote delimited).
pub fn escape_attr(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '<' => out.push_str("&lt;"),
            '&' => out.push_str("&amp;"),
            '"' => out.push_str("&quot;"),
            _ => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atomic::AtomicValue;
    use crate::parse::{parse_document, ParseOptions};

    fn round_trip(s: &str) -> String {
        let d = parse_document(s, &ParseOptions::default()).unwrap();
        serialize_node(&d.root())
    }

    #[test]
    fn simple_round_trip() {
        assert_eq!(
            round_trip("<a><b x=\"1\">t</b><c/></a>"),
            "<a><b x=\"1\">t</b><c/></a>"
        );
    }

    #[test]
    fn escaping() {
        assert_eq!(round_trip("<a>&lt;&amp;</a>"), "<a>&lt;&amp;</a>");
        assert_eq!(
            round_trip("<a x=\"&quot;q&quot;\"/>"),
            "<a x=\"&quot;q&quot;\"/>"
        );
    }

    #[test]
    fn atomics_space_separated() {
        let seq = Sequence::from_atomics(vec![
            AtomicValue::Integer(1),
            AtomicValue::Integer(2),
            AtomicValue::string("x"),
        ]);
        assert_eq!(serialize_sequence(&seq), "1 2 x");
    }

    #[test]
    fn comment_and_pi_round_trip() {
        assert_eq!(
            round_trip("<a><!--c--><?t d?></a>"),
            "<a><!--c--><?t d?></a>"
        );
    }
}

#[cfg(test)]
mod pretty_tests {
    use super::*;
    use crate::parse::{parse_document, ParseOptions};

    #[test]
    fn pretty_indents_element_only_content() {
        let d = parse_document("<a><b><c/></b><d>text</d></a>", &ParseOptions::default()).unwrap();
        let out = serialize_node_pretty(&d.root());
        assert_eq!(out, "<a>\n  <b>\n    <c/>\n  </b>\n  <d>text</d>\n</a>\n");
    }

    #[test]
    fn pretty_preserves_mixed_content_inline() {
        let d = parse_document("<a>x<b/>y</a>", &ParseOptions::default()).unwrap();
        let out = serialize_node_pretty(&d.root());
        assert_eq!(out, "<a>x<b/>y</a>\n");
    }
}
