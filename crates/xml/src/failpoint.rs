//! Deterministic fault injection (failpoints).
//!
//! Named sites scattered through the engine's degradation-critical paths —
//! spill I/O (`spill::open`, `spill::write`, `spill::read`), governor
//! charges (`join::build_charge`, `groupby::flush`), document parsing
//! (`parse::alloc`), the network frontend's connection path
//! (`server::accept`, `server::read`, `server::write`), its stuck-query
//! watchdog (`watchdog::escalate`), and the engine's phase boundaries — call
//! [`check`]. With the `failpoints` cargo feature **disabled** (the
//! default) every call compiles to `Ok(())` and the whole registry is
//! absent from the binary. With the feature enabled but no site armed, the
//! cost is one relaxed atomic load per call.
//!
//! ## Configuration grammar
//!
//! Sites are armed either programmatically ([`configure`], usually through
//! the RAII [`FailGuard`]) or from the environment at first use:
//!
//! ```text
//! XQR_FAILPOINTS="spill::write=err(3);groupby::flush=panic"
//! ```
//!
//! Entries are `site=action`, separated by `;` or `,`. Actions:
//!
//! | action | behaviour |
//! |---|---|
//! | `err` | fail every evaluation with an injected `XQRFP01` error |
//! | `err(N)` | fail the first N evaluations, then pass |
//! | `panic` / `panic(N)` | panic at the site (exercises the isolation boundary) |
//! | `delay(Dms)` / `delay(Dms,N)` | sleep D milliseconds per evaluation |
//! | `oneshot` | alias for `err(1)` |
//! | `off` | disarm (useful to override an env entry per test) |
//!
//! Every non-pass evaluation counts into the process metrics
//! (`failpoint_trips`), so chaos runs can assert that a schedule actually
//! fired.

/// Error code carried by injected failures. Spill call sites translate it
/// into a transient I/O failure (exercising the retry path); everywhere
/// else it surfaces as a dynamic error.
pub const ERR_INJECTED: &str = "XQRFP01";

/// Evaluates the failpoint `site`: passes, fails with an injected
/// [`ERR_INJECTED`] error, sleeps, or panics according to the armed
/// action. The no-feature build is an empty inline function.
#[cfg(not(feature = "failpoints"))]
#[inline(always)]
pub fn check(_site: &str) -> crate::Result<()> {
    Ok(())
}

#[cfg(feature = "failpoints")]
pub use enabled::{check, clear, configure, configure_from_spec, remove, FailGuard};

#[cfg(feature = "failpoints")]
mod enabled {
    use std::collections::HashMap;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Mutex, OnceLock};
    use std::time::Duration;

    use crate::metrics::metrics;
    use crate::XmlError;

    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    enum Kind {
        Err,
        Panic,
        Delay(u64),
    }

    #[derive(Clone, Debug)]
    struct Action {
        kind: Kind,
        /// Evaluations left before the site disarms itself; `None` is
        /// unlimited.
        remaining: Option<u64>,
    }

    struct Registry {
        sites: Mutex<HashMap<String, Action>>,
    }

    /// Number of currently armed sites — the fast-path gate: an unarmed
    /// process pays one relaxed load per `check`.
    static ARMED: AtomicUsize = AtomicUsize::new(0);

    fn registry() -> &'static Registry {
        static R: OnceLock<Registry> = OnceLock::new();
        R.get_or_init(|| {
            let r = Registry {
                sites: Mutex::new(HashMap::new()),
            };
            if let Ok(env) = std::env::var("XQR_FAILPOINTS") {
                let mut sites = r.sites.lock().unwrap();
                for entry in env.split([';', ',']).filter(|s| !s.trim().is_empty()) {
                    match parse_entry(entry) {
                        Ok((site, Some(action))) => {
                            sites.insert(site, action);
                        }
                        Ok((site, None)) => {
                            sites.remove(&site);
                        }
                        Err(e) => eprintln!("XQR_FAILPOINTS: ignoring {entry:?}: {e}"),
                    }
                }
                ARMED.store(sites.len(), Ordering::Relaxed);
            }
            r
        })
    }

    fn parse_entry(entry: &str) -> Result<(String, Option<Action>), String> {
        let (site, spec) = entry
            .split_once('=')
            .ok_or_else(|| "expected site=action".to_string())?;
        Ok((site.trim().to_string(), parse_action(spec.trim())?))
    }

    fn parse_action(spec: &str) -> Result<Option<Action>, String> {
        let (head, arg) = match spec.split_once('(') {
            Some((h, rest)) => {
                let inner = rest
                    .strip_suffix(')')
                    .ok_or_else(|| format!("unclosed '(' in {spec:?}"))?;
                (h, Some(inner))
            }
            None => (spec, None),
        };
        let count = |a: Option<&str>| -> Result<Option<u64>, String> {
            match a {
                None => Ok(None),
                Some(s) => s
                    .trim()
                    .parse::<u64>()
                    .map(Some)
                    .map_err(|_| format!("bad count in {spec:?}")),
            }
        };
        match head {
            "off" => Ok(None),
            "err" => Ok(Some(Action {
                kind: Kind::Err,
                remaining: count(arg)?,
            })),
            "oneshot" => Ok(Some(Action {
                kind: Kind::Err,
                remaining: Some(1),
            })),
            "panic" => Ok(Some(Action {
                kind: Kind::Panic,
                remaining: count(arg)?,
            })),
            "delay" => {
                let inner = arg.ok_or_else(|| "delay needs (Dms)".to_string())?;
                let (d, n) = match inner.split_once(',') {
                    Some((d, n)) => (d, Some(n)),
                    None => (inner, None),
                };
                let millis = d
                    .trim()
                    .strip_suffix("ms")
                    .unwrap_or(d.trim())
                    .trim()
                    .parse::<u64>()
                    .map_err(|_| format!("bad duration in {spec:?}"))?;
                Ok(Some(Action {
                    kind: Kind::Delay(millis),
                    remaining: count(n)?,
                }))
            }
            other => Err(format!("unknown action {other:?}")),
        }
    }

    /// Arms `site` with an action in the `XQR_FAILPOINTS` grammar (e.g.
    /// `"err(3)"`, `"panic"`, `"delay(10ms)"`, `"oneshot"`).
    pub fn configure(site: &str, spec: &str) -> Result<(), String> {
        let action = parse_action(spec)?;
        let mut sites = registry().sites.lock().unwrap();
        match action {
            Some(a) => {
                sites.insert(site.to_string(), a);
            }
            None => {
                sites.remove(site);
            }
        }
        ARMED.store(sites.len(), Ordering::Relaxed);
        Ok(())
    }

    /// Applies a full `site=action;site=action` schedule string (the
    /// `XQR_FAILPOINTS` grammar), e.g. from a seeded chaos scheduler.
    pub fn configure_from_spec(schedule: &str) -> Result<(), String> {
        for entry in schedule.split([';', ',']).filter(|s| !s.trim().is_empty()) {
            let (site, action) = parse_entry(entry)?;
            let mut sites = registry().sites.lock().unwrap();
            match action {
                Some(a) => {
                    sites.insert(site, a);
                }
                None => {
                    sites.remove(&site);
                }
            }
            ARMED.store(sites.len(), Ordering::Relaxed);
        }
        Ok(())
    }

    /// Disarms one site.
    pub fn remove(site: &str) {
        let mut sites = registry().sites.lock().unwrap();
        sites.remove(site);
        ARMED.store(sites.len(), Ordering::Relaxed);
    }

    /// Disarms every site.
    pub fn clear() {
        let mut sites = registry().sites.lock().unwrap();
        sites.clear();
        ARMED.store(0, Ordering::Relaxed);
    }

    /// RAII site arming for tests: disarms on drop (including on panic),
    /// so one test's schedule never leaks into the next.
    pub struct FailGuard(String);

    impl FailGuard {
        pub fn new(site: &str, spec: &str) -> Result<FailGuard, String> {
            configure(site, spec)?;
            Ok(FailGuard(site.to_string()))
        }
    }

    impl Drop for FailGuard {
        fn drop(&mut self) {
            remove(&self.0);
        }
    }

    /// See the module docs; the armed path takes the registry mutex, the
    /// common (unarmed) path is one relaxed atomic load.
    pub fn check(site: &str) -> crate::Result<()> {
        // Touch the registry once so an env-only configuration arms even
        // though nobody called configure().
        let r = registry();
        if ARMED.load(Ordering::Relaxed) == 0 {
            return Ok(());
        }
        let action = {
            let mut sites = r.sites.lock().unwrap();
            let Some(a) = sites.get_mut(site) else {
                return Ok(());
            };
            let fire = match &mut a.remaining {
                None => true,
                Some(0) => false,
                Some(n) => {
                    *n -= 1;
                    true
                }
            };
            if !fire {
                return Ok(());
            }
            a.kind
        };
        metrics().record_failpoint_trip();
        match action {
            Kind::Err => Err(XmlError::new(
                super::ERR_INJECTED,
                format!("injected failure at failpoint {site}"),
            )),
            Kind::Panic => panic!("injected panic at failpoint {site}"),
            Kind::Delay(ms) => {
                std::thread::sleep(Duration::from_millis(ms));
                Ok(())
            }
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        // Each test uses a unique site name: the registry is process-wide
        // and the harness runs tests in parallel.

        #[test]
        fn unarmed_site_passes() {
            assert!(check("fp_test::unarmed").is_ok());
        }

        #[test]
        fn err_counts_down_then_passes() {
            let _g = FailGuard::new("fp_test::err2", "err(2)").unwrap();
            assert_eq!(check("fp_test::err2").unwrap_err().code, "XQRFP01");
            assert_eq!(check("fp_test::err2").unwrap_err().code, "XQRFP01");
            assert!(check("fp_test::err2").is_ok());
        }

        #[test]
        fn oneshot_is_err_once() {
            let _g = FailGuard::new("fp_test::one", "oneshot").unwrap();
            assert!(check("fp_test::one").is_err());
            assert!(check("fp_test::one").is_ok());
        }

        #[test]
        fn guard_disarms_on_drop() {
            {
                let _g = FailGuard::new("fp_test::guard", "err").unwrap();
                assert!(check("fp_test::guard").is_err());
            }
            assert!(check("fp_test::guard").is_ok());
        }

        #[test]
        fn schedule_string_parses() {
            configure_from_spec("fp_test::a=err(1); fp_test::b=delay(1ms,1)").unwrap();
            assert!(check("fp_test::a").is_err());
            assert!(check("fp_test::b").is_ok()); // delay passes after sleeping
            remove("fp_test::a");
            remove("fp_test::b");
        }

        #[test]
        fn bad_specs_are_rejected() {
            assert!(parse_action("frobnicate").is_err());
            assert!(parse_action("err(x)").is_err());
            assert!(parse_action("delay").is_err());
            assert!(parse_action("err(3").is_err());
        }

        #[test]
        fn trips_are_counted() {
            let before = metrics().snapshot().failpoint_trips;
            let _g = FailGuard::new("fp_test::count", "err(1)").unwrap();
            let _ = check("fp_test::count");
            assert!(metrics().snapshot().failpoint_trips >= before + 1);
        }
    }
}
