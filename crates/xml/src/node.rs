//! Arena-backed node store with node identity and global document order.
//!
//! Every [`Document`] (parsed *or* constructed — element constructors create
//! fresh documents, giving new node identities per XQuery semantics) draws a
//! unique sequence number from a global counter. Node ids inside a document
//! are assigned in document order by [`crate::build::TreeBuilder`], so the
//! pair `(document sequence, node id)` is a total document order across all
//! live documents — exactly what the `TreeJoin` operator and order-based
//! duplicate elimination need.
//!
//! Documents are immutable once built; validation (in `xqr-types`) produces
//! an annotated *copy* rather than mutating in place.

use std::rc::Rc;
use std::sync::atomic::{AtomicU64, Ordering};

use crate::atomic::AtomicValue;
use crate::qname::QName;

static DOC_COUNTER: AtomicU64 = AtomicU64::new(1);

/// Kinds of nodes in the XQuery data model.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum NodeKind {
    Document,
    Element,
    Attribute,
    Text,
    Comment,
    Pi,
}

/// Index of a node within its document's arena.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug, Hash)]
pub struct NodeId(pub u32);

/// The per-node record stored in a document's arena.
#[derive(Clone, Debug)]
pub struct NodeData {
    pub kind: NodeKind,
    /// Element/attribute name; PI target is stored as a no-namespace name.
    pub name: Option<QName>,
    /// Text/comment/PI content or attribute string value.
    pub value: Option<Rc<str>>,
    pub parent: Option<NodeId>,
    /// Child element/text/comment/PI nodes (not attributes), in order.
    pub children: Vec<NodeId>,
    /// Attribute nodes, in order.
    pub attributes: Vec<NodeId>,
    /// Validation type annotation; `None` means untyped
    /// (`xdt:untyped` for elements, `xdt:untypedAtomic` for attributes).
    pub type_name: Option<QName>,
    /// Typed value produced by validation (simple-typed content only).
    pub typed_value: Option<Vec<AtomicValue>>,
}

impl NodeData {
    pub fn new(kind: NodeKind) -> Self {
        NodeData {
            kind,
            name: None,
            value: None,
            parent: None,
            children: Vec::new(),
            attributes: Vec::new(),
            type_name: None,
            typed_value: None,
        }
    }
}

/// An immutable tree of nodes. The root is always node 0 and may be a
/// document node (parsed documents) or an element/text/… node (constructed
/// fragments).
#[derive(Debug)]
pub struct Document {
    seq: u64,
    base_uri: Option<String>,
    nodes: Vec<NodeData>,
}

impl Document {
    pub(crate) fn from_nodes(nodes: Vec<NodeData>, base_uri: Option<String>) -> Rc<Document> {
        Rc::new(Document {
            seq: DOC_COUNTER.fetch_add(1, Ordering::Relaxed),
            base_uri,
            nodes,
        })
    }

    pub fn base_uri(&self) -> Option<&str> {
        self.base_uri.as_deref()
    }

    /// Global creation sequence number (first component of document order).
    pub fn seq(&self) -> u64 {
        self.seq
    }

    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    pub fn data(&self, id: NodeId) -> &NodeData {
        &self.nodes[id.0 as usize]
    }

    /// Handle to the root node (id 0).
    pub fn root(self: &Rc<Self>) -> NodeHandle {
        NodeHandle {
            doc: Rc::clone(self),
            id: NodeId(0),
        }
    }
}

/// A reference to one node: the owning document plus the node's id.
#[derive(Clone)]
pub struct NodeHandle {
    pub doc: Rc<Document>,
    pub id: NodeId,
}

impl NodeHandle {
    pub fn data(&self) -> &NodeData {
        self.doc.data(self.id)
    }

    pub fn kind(&self) -> NodeKind {
        self.data().kind
    }

    pub fn name(&self) -> Option<&QName> {
        self.data().name.as_ref()
    }

    pub fn type_name(&self) -> Option<&QName> {
        self.data().type_name.as_ref()
    }

    pub fn typed_value_annotation(&self) -> Option<&[AtomicValue]> {
        self.data().typed_value.as_deref()
    }

    fn at(&self, id: NodeId) -> NodeHandle {
        NodeHandle {
            doc: Rc::clone(&self.doc),
            id,
        }
    }

    pub fn parent(&self) -> Option<NodeHandle> {
        self.data().parent.map(|p| self.at(p))
    }

    pub fn children(&self) -> Vec<NodeHandle> {
        self.data().children.iter().map(|&c| self.at(c)).collect()
    }

    pub fn attributes(&self) -> Vec<NodeHandle> {
        self.data().attributes.iter().map(|&c| self.at(c)).collect()
    }

    /// Identity comparison (same node in the same document).
    pub fn same_node(&self, other: &NodeHandle) -> bool {
        self.id == other.id && Rc::ptr_eq(&self.doc, &other.doc)
    }

    /// Total document-order key across all documents.
    pub fn order_key(&self) -> (u64, u32) {
        (self.doc.seq, self.id.0)
    }

    /// The node's string value per the data model.
    pub fn string_value(&self) -> String {
        match self.kind() {
            NodeKind::Text | NodeKind::Comment | NodeKind::Pi | NodeKind::Attribute => {
                self.data().value.as_deref().unwrap_or("").to_string()
            }
            NodeKind::Element | NodeKind::Document => {
                let mut out = String::new();
                self.collect_text(self.id, &mut out);
                out
            }
        }
    }

    fn collect_text(&self, id: NodeId, out: &mut String) {
        let data = self.doc.data(id);
        if data.kind == NodeKind::Text {
            if let Some(v) = &data.value {
                out.push_str(v);
            }
        }
        for &c in &data.children {
            self.collect_text(c, out);
        }
    }

    /// The typed value: validation annotation if present, else untypedAtomic
    /// of the string value (string for comments/PIs, per XDM).
    pub fn typed_value(&self) -> Vec<AtomicValue> {
        if let Some(tv) = self.typed_value_annotation() {
            return tv.to_vec();
        }
        match self.kind() {
            NodeKind::Comment | NodeKind::Pi => {
                vec![AtomicValue::string(self.string_value())]
            }
            _ => vec![AtomicValue::untyped(self.string_value())],
        }
    }

    /// Root of this node's tree.
    pub fn tree_root(&self) -> NodeHandle {
        let mut cur = self.id;
        while let Some(p) = self.doc.data(cur).parent {
            cur = p;
        }
        self.at(cur)
    }

    /// All descendant nodes in document order (excluding attributes),
    /// not including `self`.
    pub fn descendants(&self) -> Vec<NodeHandle> {
        let mut out = Vec::new();
        let mut stack: Vec<NodeId> = self.data().children.iter().rev().copied().collect();
        while let Some(id) = stack.pop() {
            out.push(self.at(id));
            stack.extend(self.doc.data(id).children.iter().rev().copied());
        }
        out
    }
}

impl PartialEq for NodeHandle {
    fn eq(&self, other: &Self) -> bool {
        self.same_node(other)
    }
}

impl Eq for NodeHandle {}

impl std::hash::Hash for NodeHandle {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.order_key().hash(state);
    }
}

impl std::fmt::Debug for NodeHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.kind() {
            NodeKind::Element => write!(f, "element({})", self.name().unwrap()),
            NodeKind::Attribute => write!(
                f,
                "attribute({}=\"{}\")",
                self.name().unwrap(),
                self.data().value.as_deref().unwrap_or("")
            ),
            NodeKind::Text => write!(f, "text({:?})", self.data().value.as_deref().unwrap_or("")),
            NodeKind::Comment => write!(f, "comment(…)"),
            NodeKind::Pi => write!(f, "pi({})", self.name().unwrap().local_part()),
            NodeKind::Document => write!(f, "document-node()"),
        }
    }
}

/// A type-derivation oracle used by kind-test matching; implemented by the
/// schema in `xqr-types`. `derives_from(sub, sup)` answers whether type name
/// `sub` derives (reflexively, transitively) from `sup`.
pub trait TypeHierarchy {
    fn derives_from(&self, sub: &QName, sup: &QName) -> bool;
}

/// A hierarchy with no user types: only reflexive derivation plus everything
/// deriving from `xs:anyType`.
pub struct TrivialHierarchy;

impl TypeHierarchy for TrivialHierarchy {
    fn derives_from(&self, sub: &QName, sup: &QName) -> bool {
        sub == sup || sup.local_part() == "anyType"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::TreeBuilder;

    fn sample() -> Rc<Document> {
        // <a x="1"><b>hi</b><c/>tail</a>
        let mut b = TreeBuilder::new();
        b.start_document();
        b.start_element(QName::local("a"));
        b.attribute(QName::local("x"), "1");
        b.start_element(QName::local("b"));
        b.text("hi");
        b.end_element();
        b.start_element(QName::local("c"));
        b.end_element();
        b.text("tail");
        b.end_element();
        b.end_document();
        b.finish(None)
    }

    #[test]
    fn structure_navigation() {
        let doc = sample();
        let root = doc.root();
        assert_eq!(root.kind(), NodeKind::Document);
        let a = &root.children()[0];
        assert_eq!(a.name().unwrap().local_part(), "a");
        assert_eq!(a.children().len(), 3);
        assert_eq!(a.attributes().len(), 1);
        let b = &a.children()[0];
        assert_eq!(b.parent().unwrap().name().unwrap().local_part(), "a");
    }

    #[test]
    fn string_values() {
        let doc = sample();
        let a = &doc.root().children()[0];
        assert_eq!(a.string_value(), "hitail");
        assert_eq!(a.attributes()[0].string_value(), "1");
        assert_eq!(a.children()[0].string_value(), "hi");
    }

    #[test]
    fn document_order_ids_are_preorder() {
        let doc = sample();
        let a = &doc.root().children()[0];
        let desc = a.descendants();
        let keys: Vec<_> = desc.iter().map(|n| n.order_key()).collect();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted, "descendants come out in document order");
    }

    #[test]
    fn identity_and_cross_document_order() {
        let d1 = sample();
        let d2 = sample();
        let a1 = &d1.root().children()[0];
        let a2 = &d2.root().children()[0];
        assert!(!a1.same_node(a2));
        assert!(a1.same_node(&d1.root().children()[0]));
        assert!(
            a1.order_key() < a2.order_key(),
            "earlier-created doc sorts first"
        );
    }

    #[test]
    fn typed_value_defaults_to_untyped_atomic() {
        let doc = sample();
        let a = &doc.root().children()[0];
        assert_eq!(a.typed_value(), vec![AtomicValue::untyped("hitail")]);
    }
}
