//! Arena-backed node store with node identity and global document order.
//!
//! Every [`Document`] (parsed *or* constructed — element constructors create
//! fresh documents, giving new node identities per XQuery semantics) draws a
//! unique sequence number from a global counter. Node ids inside a document
//! are assigned in document order by [`crate::build::TreeBuilder`], so the
//! pair `(document sequence, node id)` is a total document order across all
//! live documents — exactly what the `TreeJoin` operator and order-based
//! duplicate elimination need.
//!
//! Documents are immutable once built; validation (in `xqr-types`) produces
//! an annotated *copy* rather than mutating in place.

use std::cell::OnceCell;
use std::collections::HashMap;
use std::rc::Rc;
use std::sync::atomic::{AtomicU64, Ordering};

use crate::atomic::AtomicValue;
use crate::qname::QName;

static DOC_COUNTER: AtomicU64 = AtomicU64::new(1);

/// Name id of nodes without a name (documents, text, comments).
pub const NO_NAME: u32 = u32::MAX;

/// Kinds of nodes in the XQuery data model.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum NodeKind {
    Document,
    Element,
    Attribute,
    Text,
    Comment,
    Pi,
}

/// Index of a node within its document's arena.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug, Hash)]
pub struct NodeId(pub u32);

/// The per-node record stored in a document's arena.
#[derive(Clone, Debug)]
pub struct NodeData {
    pub kind: NodeKind,
    /// Element/attribute name; PI target is stored as a no-namespace name.
    pub name: Option<QName>,
    /// Text/comment/PI content or attribute string value.
    pub value: Option<Rc<str>>,
    pub parent: Option<NodeId>,
    /// Child element/text/comment/PI nodes (not attributes), in order.
    pub children: Vec<NodeId>,
    /// Attribute nodes, in order.
    pub attributes: Vec<NodeId>,
    /// Validation type annotation; `None` means untyped
    /// (`xdt:untyped` for elements, `xdt:untypedAtomic` for attributes).
    pub type_name: Option<QName>,
    /// Typed value produced by validation (simple-typed content only).
    pub typed_value: Option<Vec<AtomicValue>>,
}

impl NodeData {
    pub fn new(kind: NodeKind) -> Self {
        NodeData {
            kind,
            name: None,
            value: None,
            parent: None,
            children: Vec::new(),
            attributes: Vec::new(),
            type_name: None,
            typed_value: None,
        }
    }
}

/// An immutable tree of nodes. The root is always node 0 and may be a
/// document node (parsed documents) or an element/text/… node (constructed
/// fragments).
///
/// Beyond the arena itself the document carries a *structural index*,
/// derived once at build time (see DESIGN.md §4d):
///
/// * `subtree_size` — node ids are assigned in preorder, so the subtree of
///   node `i` is exactly the contiguous id range `[i, i + subtree_size[i])`.
///   Descendant/following/preceding steps become range arithmetic.
/// * `names` / `name_ids` — every distinct `QName` is interned to a `u32`,
///   turning name tests into integer compares.
/// * `postings` — lazily built per-name sorted lists of element ids, so a
///   `//name` step scans one postings list instead of the whole subtree.
#[derive(Debug)]
pub struct Document {
    seq: u64,
    base_uri: Option<String>,
    nodes: Vec<NodeData>,
    /// Structural index, derived on first structural access. Constructed
    /// fragments that are only ever serialized or copied never pay for it —
    /// eager derivation showed up as a measurable per-constructor tax on
    /// constructor-heavy queries.
    index: OnceCell<StructIndex>,
    /// Lazily built name → sorted element-id postings lists.
    postings: OnceCell<Postings>,
}

#[derive(Debug)]
struct StructIndex {
    /// `subtree_size[i]` = number of nodes (including attributes and `i`
    /// itself) in the subtree rooted at node `i`.
    subtree_size: Vec<u32>,
    /// Interned name per node (`NO_NAME` for unnamed kinds).
    name_ids: Vec<u32>,
    /// Interned name table, indexed by name id.
    names: Vec<QName>,
    /// Reverse map for compiling name tests to ids.
    name_index: HashMap<QName, u32>,
    /// Ids of top-level (parentless) nodes; usually just `[0]`, but
    /// constructed fragments may hold several trees in one arena.
    top_roots: Vec<u32>,
}

#[derive(Debug)]
struct Postings {
    /// `by_name[name_id]` = element ids bearing that name, ascending.
    by_name: Vec<Vec<u32>>,
}

impl Document {
    pub(crate) fn from_nodes(nodes: Vec<NodeData>, base_uri: Option<String>) -> Rc<Document> {
        Rc::new(Document {
            seq: DOC_COUNTER.fetch_add(1, Ordering::Relaxed),
            base_uri,
            nodes,
            index: OnceCell::new(),
            postings: OnceCell::new(),
        })
    }

    /// Whether the structural index has been derived yet (it is built on
    /// first structural access and never discarded).
    pub fn has_index(&self) -> bool {
        self.index.get().is_some()
    }

    fn index(&self) -> &StructIndex {
        self.index.get_or_init(|| {
            let nodes = &self.nodes;
            let n = nodes.len();
            // Parents always precede children in the arena, so one reverse
            // pass accumulates exact subtree sizes.
            let mut subtree_size = vec![1u32; n];
            for i in (1..n).rev() {
                if let Some(p) = nodes[i].parent {
                    subtree_size[p.0 as usize] += subtree_size[i];
                }
            }
            let mut names: Vec<QName> = Vec::new();
            let mut name_index: HashMap<QName, u32> = HashMap::new();
            let mut name_ids = Vec::with_capacity(n);
            for nd in nodes {
                let nid = match &nd.name {
                    None => NO_NAME,
                    Some(q) => *name_index.entry(q.clone()).or_insert_with(|| {
                        names.push(q.clone());
                        (names.len() - 1) as u32
                    }),
                };
                name_ids.push(nid);
            }
            // Top-level trees partition the arena into contiguous runs.
            let mut top_roots = Vec::new();
            let mut i = 0u32;
            while (i as usize) < n {
                debug_assert!(nodes[i as usize].parent.is_none());
                top_roots.push(i);
                i += subtree_size[i as usize];
            }
            crate::metrics::metrics().record_struct_index_build();
            StructIndex {
                subtree_size,
                name_ids,
                names,
                name_index,
                top_roots,
            }
        })
    }

    /// Exclusive end of the preorder id range covering `id`'s subtree:
    /// descendants-or-self of `id` are exactly the ids `id.0..end` (the
    /// range includes attribute nodes, which axis kernels filter out).
    pub fn subtree_end(&self, id: NodeId) -> u32 {
        id.0 + self.index().subtree_size[id.0 as usize]
    }

    pub fn kind_of(&self, id: NodeId) -> NodeKind {
        self.nodes[id.0 as usize].kind
    }

    /// Interned name id of a node (`NO_NAME` for unnamed kinds).
    pub fn name_id_of(&self, id: NodeId) -> u32 {
        self.index().name_ids[id.0 as usize]
    }

    /// Id of `name` in this document's intern table, if any node bears it.
    pub fn lookup_name(&self, name: &QName) -> Option<u32> {
        self.index().name_index.get(name).copied()
    }

    /// Root of the top-level tree containing `id` (O(log #trees)).
    pub fn tree_root_of(&self, id: NodeId) -> NodeId {
        let idx = self.index();
        let k = idx.top_roots.partition_point(|&r| r <= id.0);
        NodeId(idx.top_roots[k - 1])
    }

    /// Sorted element-id postings list for an interned name, built for the
    /// whole document on first use.
    pub fn element_postings(&self, name_id: u32) -> &[u32] {
        let p = self.postings.get_or_init(|| {
            let idx = self.index();
            let mut by_name = vec![Vec::new(); idx.names.len()];
            for (i, nd) in self.nodes.iter().enumerate() {
                if nd.kind == NodeKind::Element {
                    let nid = idx.name_ids[i];
                    if nid != NO_NAME {
                        by_name[nid as usize].push(i as u32);
                    }
                }
            }
            let entries: u64 = by_name.iter().map(|v| v.len() as u64).sum();
            crate::metrics::metrics().record_postings_build(entries);
            Postings { by_name }
        });
        p.by_name
            .get(name_id as usize)
            .map(|v| v.as_slice())
            .unwrap_or(&[])
    }

    pub fn base_uri(&self) -> Option<&str> {
        self.base_uri.as_deref()
    }

    /// Global creation sequence number (first component of document order).
    pub fn seq(&self) -> u64 {
        self.seq
    }

    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    pub fn data(&self, id: NodeId) -> &NodeData {
        &self.nodes[id.0 as usize]
    }

    /// Handle to the root node (id 0).
    pub fn root(self: &Rc<Self>) -> NodeHandle {
        NodeHandle {
            doc: Rc::clone(self),
            id: NodeId(0),
        }
    }
}

/// A reference to one node: the owning document plus the node's id.
#[derive(Clone)]
pub struct NodeHandle {
    pub doc: Rc<Document>,
    pub id: NodeId,
}

impl NodeHandle {
    pub fn data(&self) -> &NodeData {
        self.doc.data(self.id)
    }

    pub fn kind(&self) -> NodeKind {
        self.data().kind
    }

    pub fn name(&self) -> Option<&QName> {
        self.data().name.as_ref()
    }

    pub fn type_name(&self) -> Option<&QName> {
        self.data().type_name.as_ref()
    }

    pub fn typed_value_annotation(&self) -> Option<&[AtomicValue]> {
        self.data().typed_value.as_deref()
    }

    fn at(&self, id: NodeId) -> NodeHandle {
        NodeHandle {
            doc: Rc::clone(&self.doc),
            id,
        }
    }

    pub fn parent(&self) -> Option<NodeHandle> {
        self.data().parent.map(|p| self.at(p))
    }

    pub fn children(&self) -> Vec<NodeHandle> {
        self.data().children.iter().map(|&c| self.at(c)).collect()
    }

    pub fn attributes(&self) -> Vec<NodeHandle> {
        self.data().attributes.iter().map(|&c| self.at(c)).collect()
    }

    /// Identity comparison (same node in the same document).
    pub fn same_node(&self, other: &NodeHandle) -> bool {
        self.id == other.id && Rc::ptr_eq(&self.doc, &other.doc)
    }

    /// Total document-order key across all documents.
    pub fn order_key(&self) -> (u64, u32) {
        (self.doc.seq, self.id.0)
    }

    /// The node's string value per the data model. For elements and
    /// documents this is one flat pass over the node's contiguous subtree
    /// id range — no recursion, so arbitrarily deep trees are safe.
    pub fn string_value(&self) -> String {
        match self.kind() {
            NodeKind::Text | NodeKind::Comment | NodeKind::Pi | NodeKind::Attribute => {
                self.data().value.as_deref().unwrap_or("").to_string()
            }
            NodeKind::Element | NodeKind::Document => {
                // Flat scan when the structural index is already built;
                // otherwise an explicit child stack (still no recursion, and
                // it avoids forcing index derivation on fresh fragments).
                let mut out = String::new();
                if self.doc.has_index() {
                    let end = self.doc.subtree_end(self.id);
                    for i in self.id.0..end {
                        let data = self.doc.data(NodeId(i));
                        if data.kind == NodeKind::Text {
                            if let Some(v) = &data.value {
                                out.push_str(v);
                            }
                        }
                    }
                } else {
                    let mut stack: Vec<NodeId> = vec![self.id];
                    while let Some(id) = stack.pop() {
                        let data = self.doc.data(id);
                        if data.kind == NodeKind::Text {
                            if let Some(v) = &data.value {
                                out.push_str(v);
                            }
                        }
                        stack.extend(data.children.iter().rev().copied());
                    }
                }
                out
            }
        }
    }

    /// The typed value: validation annotation if present, else untypedAtomic
    /// of the string value (string for comments/PIs, per XDM).
    pub fn typed_value(&self) -> Vec<AtomicValue> {
        if let Some(tv) = self.typed_value_annotation() {
            return tv.to_vec();
        }
        match self.kind() {
            NodeKind::Comment | NodeKind::Pi => {
                vec![AtomicValue::string(self.string_value())]
            }
            _ => vec![AtomicValue::untyped(self.string_value())],
        }
    }

    /// Root of this node's tree.
    pub fn tree_root(&self) -> NodeHandle {
        self.at(self.doc.tree_root_of(self.id))
    }

    /// All descendant nodes in document order (excluding attributes),
    /// not including `self`: a scan of the subtree's preorder id range.
    pub fn descendants(&self) -> Vec<NodeHandle> {
        let end = self.doc.subtree_end(self.id);
        let mut out = Vec::new();
        for i in (self.id.0 + 1)..end {
            if self.doc.kind_of(NodeId(i)) != NodeKind::Attribute {
                out.push(self.at(NodeId(i)));
            }
        }
        out
    }
}

impl PartialEq for NodeHandle {
    fn eq(&self, other: &Self) -> bool {
        self.same_node(other)
    }
}

impl Eq for NodeHandle {}

impl std::hash::Hash for NodeHandle {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.order_key().hash(state);
    }
}

impl std::fmt::Debug for NodeHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.kind() {
            NodeKind::Element => write!(f, "element({})", self.name().unwrap()),
            NodeKind::Attribute => write!(
                f,
                "attribute({}=\"{}\")",
                self.name().unwrap(),
                self.data().value.as_deref().unwrap_or("")
            ),
            NodeKind::Text => write!(f, "text({:?})", self.data().value.as_deref().unwrap_or("")),
            NodeKind::Comment => write!(f, "comment(…)"),
            NodeKind::Pi => write!(f, "pi({})", self.name().unwrap().local_part()),
            NodeKind::Document => write!(f, "document-node()"),
        }
    }
}

/// A type-derivation oracle used by kind-test matching; implemented by the
/// schema in `xqr-types`. `derives_from(sub, sup)` answers whether type name
/// `sub` derives (reflexively, transitively) from `sup`.
pub trait TypeHierarchy {
    fn derives_from(&self, sub: &QName, sup: &QName) -> bool;
}

/// A hierarchy with no user types: only reflexive derivation plus everything
/// deriving from `xs:anyType`.
pub struct TrivialHierarchy;

impl TypeHierarchy for TrivialHierarchy {
    fn derives_from(&self, sub: &QName, sup: &QName) -> bool {
        sub == sup || sup.local_part() == "anyType"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::TreeBuilder;

    fn sample() -> Rc<Document> {
        // <a x="1"><b>hi</b><c/>tail</a>
        let mut b = TreeBuilder::new();
        b.start_document();
        b.start_element(QName::local("a"));
        b.attribute(QName::local("x"), "1");
        b.start_element(QName::local("b"));
        b.text("hi");
        b.end_element();
        b.start_element(QName::local("c"));
        b.end_element();
        b.text("tail");
        b.end_element();
        b.end_document();
        b.finish(None)
    }

    #[test]
    fn structure_navigation() {
        let doc = sample();
        let root = doc.root();
        assert_eq!(root.kind(), NodeKind::Document);
        let a = &root.children()[0];
        assert_eq!(a.name().unwrap().local_part(), "a");
        assert_eq!(a.children().len(), 3);
        assert_eq!(a.attributes().len(), 1);
        let b = &a.children()[0];
        assert_eq!(b.parent().unwrap().name().unwrap().local_part(), "a");
    }

    #[test]
    fn string_values() {
        let doc = sample();
        let a = &doc.root().children()[0];
        assert_eq!(a.string_value(), "hitail");
        assert_eq!(a.attributes()[0].string_value(), "1");
        assert_eq!(a.children()[0].string_value(), "hi");
    }

    #[test]
    fn document_order_ids_are_preorder() {
        let doc = sample();
        let a = &doc.root().children()[0];
        let desc = a.descendants();
        let keys: Vec<_> = desc.iter().map(|n| n.order_key()).collect();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted, "descendants come out in document order");
    }

    #[test]
    fn identity_and_cross_document_order() {
        let d1 = sample();
        let d2 = sample();
        let a1 = &d1.root().children()[0];
        let a2 = &d2.root().children()[0];
        assert!(!a1.same_node(a2));
        assert!(a1.same_node(&d1.root().children()[0]));
        assert!(
            a1.order_key() < a2.order_key(),
            "earlier-created doc sorts first"
        );
    }

    #[test]
    fn typed_value_defaults_to_untyped_atomic() {
        let doc = sample();
        let a = &doc.root().children()[0];
        assert_eq!(a.typed_value(), vec![AtomicValue::untyped("hitail")]);
    }

    #[test]
    fn subtree_ranges_cover_descendants() {
        let doc = sample();
        let root = doc.root();
        // Document node covers the whole arena.
        assert_eq!(doc.subtree_end(root.id), doc.node_count() as u32);
        let a = &root.children()[0];
        // <a>'s range holds itself, one attribute, b, "hi", c, "tail".
        assert_eq!(doc.subtree_end(a.id) - a.id.0, 6);
        for d in a.descendants() {
            assert!(d.id.0 > a.id.0 && d.id.0 < doc.subtree_end(a.id));
        }
        assert_eq!(doc.tree_root_of(a.children()[0].id), root.id);
    }

    #[test]
    fn name_interning_and_postings() {
        let doc = sample();
        let a_id = doc.lookup_name(&QName::local("a")).expect("a interned");
        let b_id = doc.lookup_name(&QName::local("b")).expect("b interned");
        assert_ne!(a_id, b_id);
        assert!(doc.lookup_name(&QName::local("nope")).is_none());
        let bs = doc.element_postings(b_id);
        assert_eq!(bs.len(), 1);
        let root = doc.root();
        assert_eq!(doc.name_id_of(root.children()[0].id), a_id);
        // Postings lists are ascending element ids of that name only.
        for &i in bs {
            assert_eq!(doc.kind_of(NodeId(i)), NodeKind::Element);
            assert_eq!(doc.name_id_of(NodeId(i)), b_id);
        }
    }

    #[test]
    fn string_value_on_deep_tree_is_iterative() {
        // 20k nested elements with one text leaf: the old recursive
        // collector would blow the stack; the range scan must not.
        let mut b = TreeBuilder::new();
        for _ in 0..20_000 {
            b.start_element(QName::local("d"));
        }
        b.text("leaf");
        for _ in 0..20_000 {
            b.end_element();
        }
        let doc = b.finish(None);
        let root = doc.root();
        assert_eq!(root.string_value(), "leaf");
        assert_eq!(doc.subtree_end(root.id), doc.node_count() as u32);
    }
}
