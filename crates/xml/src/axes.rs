//! XPath axes and node tests — the machinery behind the `TreeJoin` operator.
//!
//! `TreeJoin[axis, nodetest]` (paper Table 1) is "a set-at-a-time operator
//! for navigation, which takes a set of nodes in document order and returns
//! a set of nodes in document order after applying the given step". The
//! entry point here is [`tree_join`] (or [`tree_join_governed`] under a
//! resource budget).
//!
//! The implementation is built on the node store's structural index
//! (DESIGN.md §4d): node ids are preorder numbers and every node knows its
//! subtree's contiguous id range, so
//!
//! * descendant axes are range scans — or, for a `//name` step, a galloping
//!   walk of that name's postings list restricted to the context range;
//! * `following` / `preceding` are pure range arithmetic per tree;
//! * name tests compile to interned-id integer compares per document;
//! * overlapping descendant contexts are *pruned by containment* before any
//!   work happens, which also proves the output already sorted — the final
//!   sort + dedup is elided whenever a linear order check passes.
//!
//! The pre-index per-node walk survives as [`naive`] (test/feature-gated)
//! and serves as the oracle for the differential suite.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};
use std::rc::Rc;

use crate::item::{Item, Sequence};
use crate::limits::Governor;
use crate::node::{Document, NodeData, NodeHandle, NodeId, NodeKind, TypeHierarchy};
use crate::qname::QName;
use crate::XmlError;

/// The twelve XPath axes (the `namespace` axis is deprecated in XQuery and
/// not supported).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum Axis {
    Child,
    Descendant,
    DescendantOrSelf,
    Attribute,
    SelfAxis,
    Parent,
    Ancestor,
    AncestorOrSelf,
    FollowingSibling,
    PrecedingSibling,
    Following,
    Preceding,
}

impl Axis {
    pub fn name(self) -> &'static str {
        match self {
            Axis::Child => "child",
            Axis::Descendant => "descendant",
            Axis::DescendantOrSelf => "descendant-or-self",
            Axis::Attribute => "attribute",
            Axis::SelfAxis => "self",
            Axis::Parent => "parent",
            Axis::Ancestor => "ancestor",
            Axis::AncestorOrSelf => "ancestor-or-self",
            Axis::FollowingSibling => "following-sibling",
            Axis::PrecedingSibling => "preceding-sibling",
            Axis::Following => "following",
            Axis::Preceding => "preceding",
        }
    }

    pub fn by_name(s: &str) -> Option<Axis> {
        Some(match s {
            "child" => Axis::Child,
            "descendant" => Axis::Descendant,
            "descendant-or-self" => Axis::DescendantOrSelf,
            "attribute" => Axis::Attribute,
            "self" => Axis::SelfAxis,
            "parent" => Axis::Parent,
            "ancestor" => Axis::Ancestor,
            "ancestor-or-self" => Axis::AncestorOrSelf,
            "following-sibling" => Axis::FollowingSibling,
            "preceding-sibling" => Axis::PrecedingSibling,
            "following" => Axis::Following,
            "preceding" => Axis::Preceding,
            _ => return None,
        })
    }

    /// Principal node kind: Attribute for the attribute axis, Element else.
    pub fn principal_kind(self) -> NodeKind {
        match self {
            Axis::Attribute => NodeKind::Attribute,
            _ => NodeKind::Element,
        }
    }
}

/// A name test: possibly wildcarded in the URI and/or local part.
/// `*` = both None; `ns:*` = uri set, local None; `*:local` = uri None
/// (distinguished from plain `local` by `any_uri`).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct NameTest {
    pub uri: Option<String>,
    pub local: Option<String>,
    /// True for `*:local` (match any namespace); false means "no namespace"
    /// when `uri` is None.
    pub any_uri: bool,
}

impl NameTest {
    pub fn any() -> Self {
        NameTest {
            uri: None,
            local: None,
            any_uri: true,
        }
    }

    pub fn local(name: &str) -> Self {
        NameTest {
            uri: None,
            local: Some(name.to_string()),
            any_uri: false,
        }
    }

    pub fn with_uri(uri: &str, name: &str) -> Self {
        NameTest {
            uri: Some(uri.to_string()),
            local: Some(name.to_string()),
            any_uri: false,
        }
    }

    pub fn matches(&self, name: &QName) -> bool {
        if let Some(l) = &self.local {
            if l != name.local_part() {
                return false;
            }
        }
        if self.any_uri {
            return true;
        }
        match &self.uri {
            Some(u) => name.uri() == Some(u.as_str()),
            None => name.uri().is_none(),
        }
    }
}

/// Kind tests per XQuery sequence types.
#[derive(Clone, PartialEq, Debug)]
pub enum KindTest {
    /// `node()`
    AnyKind,
    /// `text()`
    Text,
    /// `comment()`
    Comment,
    /// `processing-instruction(target?)`
    Pi(Option<String>),
    /// `document-node()`
    Document,
    /// `element(name-or-*, type?)`
    Element(Option<NameTest>, Option<QName>),
    /// `attribute(name-or-*, type?)`
    Attribute(Option<NameTest>, Option<QName>),
}

/// A node test: either a name test (against the axis's principal node kind)
/// or a kind test.
#[derive(Clone, PartialEq, Debug)]
pub enum NodeTest {
    Name(NameTest),
    Kind(KindTest),
}

impl NodeTest {
    /// Does `node` satisfy this test on `axis`? Type constraints in
    /// element/attribute kind tests consult the `types` hierarchy; untyped
    /// nodes only satisfy a type constraint of `xs:anyType`/`xdt:untyped`.
    pub fn matches(&self, node: &NodeHandle, axis: Axis, types: &dyn TypeHierarchy) -> bool {
        test_matches_data(self, node.data(), axis, types)
    }
}

fn test_matches_data(
    test: &NodeTest,
    data: &NodeData,
    axis: Axis,
    types: &dyn TypeHierarchy,
) -> bool {
    match test {
        NodeTest::Name(nt) => {
            data.kind == axis.principal_kind() && data.name.as_ref().is_some_and(|n| nt.matches(n))
        }
        NodeTest::Kind(kt) => kind_test_matches_data(kt, data, types),
    }
}

/// Kind-test matching shared with `instance of` checking in `xqr-types`.
pub fn kind_test_matches(kt: &KindTest, node: &NodeHandle, types: &dyn TypeHierarchy) -> bool {
    kind_test_matches_data(kt, node.data(), types)
}

fn kind_test_matches_data(kt: &KindTest, data: &NodeData, types: &dyn TypeHierarchy) -> bool {
    match kt {
        KindTest::AnyKind => true,
        KindTest::Text => data.kind == NodeKind::Text,
        KindTest::Comment => data.kind == NodeKind::Comment,
        KindTest::Pi(target) => {
            data.kind == NodeKind::Pi
                && target
                    .as_ref()
                    .is_none_or(|t| data.name.as_ref().is_some_and(|n| n.local_part() == t))
        }
        KindTest::Document => data.kind == NodeKind::Document,
        KindTest::Element(name, ty) => {
            data.kind == NodeKind::Element
                && name
                    .as_ref()
                    .is_none_or(|nt| data.name.as_ref().is_some_and(|n| nt.matches(n)))
                && type_constraint_ok(data, ty, types, "untyped")
        }
        KindTest::Attribute(name, ty) => {
            data.kind == NodeKind::Attribute
                && name
                    .as_ref()
                    .is_none_or(|nt| data.name.as_ref().is_some_and(|n| nt.matches(n)))
                && type_constraint_ok(data, ty, types, "untypedAtomic")
        }
    }
}

fn type_constraint_ok(
    data: &NodeData,
    constraint: &Option<QName>,
    types: &dyn TypeHierarchy,
    untyped_name: &str,
) -> bool {
    match constraint {
        None => true,
        Some(required) => {
            let annotated = data
                .type_name
                .clone()
                .unwrap_or_else(|| QName::local(untyped_name));
            types.derives_from(&annotated, required)
        }
    }
}

// ===== compiled tests =======================================================

/// A node test specialized against one document's interned name table, so
/// the per-candidate check is a kind/u32 compare instead of string work.
#[derive(Clone, Copy, Debug)]
enum CompiledTest {
    /// The tested name does not occur in this document at all.
    NoMatch,
    /// Every node matches (`node()`).
    AnyNode,
    /// Kind-only check (`text()`, `element()`, `*`, …).
    KindOnly(NodeKind),
    /// Kind plus interned-name equality (the common `name` test).
    KindName(NodeKind, u32),
    /// Partially wildcarded names, PI targets, or type constraints: fall
    /// back to the full structural match.
    Generic,
}

fn compile_test(test: &NodeTest, axis: Axis, doc: &Document) -> CompiledTest {
    match test {
        NodeTest::Name(nt) => compile_name(nt, axis.principal_kind(), doc),
        NodeTest::Kind(kt) => match kt {
            KindTest::AnyKind => CompiledTest::AnyNode,
            KindTest::Text => CompiledTest::KindOnly(NodeKind::Text),
            KindTest::Comment => CompiledTest::KindOnly(NodeKind::Comment),
            KindTest::Document => CompiledTest::KindOnly(NodeKind::Document),
            KindTest::Pi(None) => CompiledTest::KindOnly(NodeKind::Pi),
            KindTest::Pi(Some(_)) => CompiledTest::Generic,
            KindTest::Element(name, None) => match name {
                None => CompiledTest::KindOnly(NodeKind::Element),
                Some(nt) => compile_name(nt, NodeKind::Element, doc),
            },
            KindTest::Attribute(name, None) => match name {
                None => CompiledTest::KindOnly(NodeKind::Attribute),
                Some(nt) => compile_name(nt, NodeKind::Attribute, doc),
            },
            KindTest::Element(..) | KindTest::Attribute(..) => CompiledTest::Generic,
        },
    }
}

fn compile_name(nt: &NameTest, kind: NodeKind, doc: &Document) -> CompiledTest {
    match (&nt.uri, &nt.local, nt.any_uri) {
        // `*`
        (None, None, true) => CompiledTest::KindOnly(kind),
        // exact name (with or without namespace)
        (uri, Some(local), false) => {
            let q = match uri {
                Some(u) => QName::with_uri(u, local),
                None => QName::local(local),
            };
            match doc.lookup_name(&q) {
                Some(id) => CompiledTest::KindName(kind, id),
                None => CompiledTest::NoMatch,
            }
        }
        // `ns:*` / `*:local`
        _ => CompiledTest::Generic,
    }
}

#[inline]
fn matches_id(
    doc: &Document,
    id: NodeId,
    compiled: CompiledTest,
    test: &NodeTest,
    axis: Axis,
    types: &dyn TypeHierarchy,
) -> bool {
    match compiled {
        CompiledTest::NoMatch => false,
        CompiledTest::AnyNode => true,
        CompiledTest::KindOnly(k) => doc.kind_of(id) == k,
        CompiledTest::KindName(k, n) => doc.kind_of(id) == k && doc.name_id_of(id) == n,
        CompiledTest::Generic => test_matches_data(test, doc.data(id), axis, types),
    }
}

fn handle(doc: &Rc<Document>, id: NodeId) -> NodeHandle {
    NodeHandle {
        doc: Rc::clone(doc),
        id,
    }
}

/// First index `i >= lo` with `list[i] >= target`: exponential (galloping)
/// probe from `lo`, then binary search inside the bracketed window. Cost is
/// O(log gap), so walking a postings list with a monotone hint is near
/// linear in the entries actually visited.
fn gallop(list: &[u32], lo: usize, target: u32) -> usize {
    if lo >= list.len() || list[lo] >= target {
        return lo;
    }
    let mut step = 1usize;
    while lo + step < list.len() && list[lo + step] < target {
        step <<= 1;
    }
    let left = lo + (step >> 1) + 1;
    let right = (lo + step + 1).min(list.len());
    left + list[left..right].partition_point(|&x| x < target)
}

// ===== per-context step kernel ==============================================

/// Cross-call cache of a step site's compiled tests, one per document.
/// The set-at-a-time kernel recompiles its node test — a `QName`
/// construction (an `Rc<str>` allocation) and an interned-name hash
/// lookup — on every invocation; a step inside a per-tuple dependent plan
/// pays that once per row. Callers that evaluate the same plan-site step
/// repeatedly hold one `TestCache` per site and pass it to
/// [`tree_join_cached`].
///
/// Two safety properties: entries key by document *identity* and hold the
/// `Rc`, so a freed document's address can never be recycled into a false
/// hit; and the cache records the `(axis, test)` it was built for and
/// self-clears on mismatch, so a caller whose site key was itself
/// recycled (per-call plan clones) degrades to a recompile, never a wrong
/// test.
#[derive(Default)]
pub struct TestCache {
    site: Option<(Axis, NodeTest)>,
    entries: Vec<(Rc<Document>, CompiledTest)>,
}

impl TestCache {
    /// Entries kept per site; effectively one in practice (multi-document
    /// step inputs are rare), bounded defensively.
    const MAX_ENTRIES: usize = 8;

    fn ensure_site(&mut self, axis: Axis, test: &NodeTest) {
        match &self.site {
            Some((a, t)) if *a == axis && t == test => {}
            _ => {
                self.entries.clear();
                self.site = Some((axis, test.clone()));
            }
        }
    }

    fn get(&self, doc: &Rc<Document>) -> Option<CompiledTest> {
        self.entries
            .iter()
            .find(|(d, _)| Rc::ptr_eq(d, doc))
            .map(|(_, c)| *c)
    }

    fn put(&mut self, doc: &Rc<Document>, compiled: CompiledTest) {
        if self.entries.len() >= Self::MAX_ENTRIES {
            self.entries.clear();
        }
        self.entries.push((Rc::clone(doc), compiled));
    }
}

/// Per-document state of a step evaluation: the compiled test plus the
/// cursors that make sorted multi-context evaluation linear.
struct DocState {
    doc: Rc<Document>,
    compiled: CompiledTest,
    /// Exclusive end of the descendant range already covered by an earlier
    /// context (containment pruning for the descendant axes).
    prune_end: u32,
    /// Monotone entry hint into the active postings list.
    post_pos: usize,
}

/// Applies one `(axis, test)` step context-by-context. Contexts must arrive
/// in document order (ascending `order_key`), which [`tree_join_governed`]
/// guarantees; under that precondition the descendant axes emit strictly
/// increasing ids and the final sort is elided.
struct StepKernel<'t> {
    axis: Axis,
    test: &'t NodeTest,
    state: Option<DocState>,
    /// Optional cross-call compiled-test cache; must already be keyed to
    /// this kernel's `(axis, test)` site (see [`TestCache::ensure_site`]).
    cache: Option<&'t mut TestCache>,
}

impl<'t> StepKernel<'t> {
    fn new(axis: Axis, test: &'t NodeTest) -> Self {
        StepKernel {
            axis,
            test,
            state: None,
            cache: None,
        }
    }

    fn with_cache(axis: Axis, test: &'t NodeTest, cache: Option<&'t mut TestCache>) -> Self {
        StepKernel {
            axis,
            test,
            state: None,
            cache,
        }
    }

    fn ensure_doc(&mut self, doc: &Rc<Document>) {
        let stale = match &self.state {
            Some(s) => !Rc::ptr_eq(&s.doc, doc),
            None => true,
        };
        if stale {
            let compiled = match self.cache.as_mut().and_then(|c| c.get(doc)) {
                Some(c) => c,
                None => {
                    let c = compile_test(self.test, self.axis, doc);
                    if let Some(cache) = self.cache.as_mut() {
                        cache.put(doc, c);
                    }
                    c
                }
            };
            self.state = Some(DocState {
                doc: Rc::clone(doc),
                compiled,
                prune_end: 0,
                post_pos: 0,
            });
        }
    }

    /// Appends the step result for one context node to `out`. Not used for
    /// `following`/`preceding`, which are evaluated per context *group*.
    fn apply(&mut self, node: &NodeHandle, types: &dyn TypeHierarchy, out: &mut Vec<NodeHandle>) {
        self.ensure_doc(&node.doc);
        let st = self.state.as_mut().unwrap();
        let compiled = st.compiled;
        if matches!(compiled, CompiledTest::NoMatch) {
            return;
        }
        let doc = &node.doc;
        let m = |id: NodeId| matches_id(doc, id, compiled, self.test, self.axis, types);
        match self.axis {
            Axis::SelfAxis => {
                if m(node.id) {
                    out.push(node.clone());
                }
            }
            Axis::Child => {
                for &c in &node.data().children {
                    if m(c) {
                        out.push(handle(doc, c));
                    }
                }
            }
            Axis::Attribute => {
                for &a in &node.data().attributes {
                    if m(a) {
                        out.push(handle(doc, a));
                    }
                }
            }
            Axis::Parent => {
                if let Some(p) = node.data().parent {
                    if m(p) {
                        out.push(handle(doc, p));
                    }
                }
            }
            Axis::Ancestor | Axis::AncestorOrSelf => {
                // Walk up (descending ids), then reverse into document order.
                let start = out.len();
                if self.axis == Axis::AncestorOrSelf && m(node.id) {
                    out.push(node.clone());
                }
                let mut cur = node.data().parent;
                while let Some(p) = cur {
                    if m(p) {
                        out.push(handle(doc, p));
                    }
                    cur = doc.data(p).parent;
                }
                out[start..].reverse();
            }
            Axis::FollowingSibling | Axis::PrecedingSibling => {
                let Some(p) = node.data().parent else {
                    return;
                };
                // Child ids are ascending, so the node's index in its
                // parent is one binary search away (attributes are not in
                // `children` and correctly yield nothing).
                let sibs = &doc.data(p).children;
                let Ok(pos) = sibs.binary_search(&node.id) else {
                    return;
                };
                let slice = if self.axis == Axis::FollowingSibling {
                    &sibs[pos + 1..]
                } else {
                    &sibs[..pos]
                };
                for &s in slice {
                    if m(s) {
                        out.push(handle(doc, s));
                    }
                }
            }
            Axis::Descendant | Axis::DescendantOrSelf => {
                let end = doc.subtree_end(node.id);
                if node.id.0 < st.prune_end {
                    // Contained in an earlier context's range: everything
                    // this context could produce was already emitted —
                    // except an attribute context's own self, which range
                    // scans skip.
                    if self.axis == Axis::DescendantOrSelf
                        && node.kind() == NodeKind::Attribute
                        && m(node.id)
                    {
                        out.push(node.clone());
                    }
                    return;
                }
                st.prune_end = end;
                if self.axis == Axis::DescendantOrSelf && m(node.id) {
                    out.push(node.clone());
                }
                if let CompiledTest::KindName(NodeKind::Element, nid) = compiled {
                    // `//name`: walk the postings list inside the range.
                    let list = doc.element_postings(nid);
                    let mut p = gallop(list, st.post_pos, node.id.0 + 1);
                    while p < list.len() && list[p] < end {
                        out.push(handle(doc, NodeId(list[p])));
                        p += 1;
                    }
                    st.post_pos = p;
                } else {
                    for i in (node.id.0 + 1)..end {
                        let id = NodeId(i);
                        if doc.kind_of(id) != NodeKind::Attribute && m(id) {
                            out.push(handle(doc, id));
                        }
                    }
                }
            }
            Axis::Following | Axis::Preceding => unreachable!("group axes"),
        }
    }
}

// ===== group axes (following / preceding) ===================================

/// `following` and `preceding` over a sorted context set collapse to one
/// contiguous range per (document, tree) group:
///
/// * following: `[min subtree_end(c), tree_end)` — every node after the
///   earliest-ending context, which subsumes all later contexts' results;
/// * preceding: `preceding(L)` for the *last* context `L` of the group
///   (`x < L` with `subtree_end(x) <= L`, i.e. not an ancestor of `L`) —
///   any `x` excluded as an ancestor of `L` is an ancestor of (or contains)
///   every earlier context too, so the union loses nothing.
fn apply_group_axis(
    axis: Axis,
    test: &NodeTest,
    ctxs: &[NodeHandle],
    types: &dyn TypeHierarchy,
    gov: Option<&Governor>,
    out: &mut Vec<NodeHandle>,
) -> crate::Result<()> {
    let mut i = 0;
    while i < ctxs.len() {
        let doc = &ctxs[i].doc;
        let tree = doc.tree_root_of(ctxs[i].id);
        let tree_end = doc.subtree_end(tree);
        let mut min_end = u32::MAX;
        let mut j = i;
        while j < ctxs.len()
            && Rc::ptr_eq(&ctxs[j].doc, doc)
            && doc.tree_root_of(ctxs[j].id) == tree
        {
            min_end = min_end.min(doc.subtree_end(ctxs[j].id));
            j += 1;
        }
        let compiled = compile_test(test, axis, doc);
        let before = out.len();
        if !matches!(compiled, CompiledTest::NoMatch) {
            let m = |id: NodeId| matches_id(doc, id, compiled, test, axis, types);
            match axis {
                Axis::Following => {
                    if let CompiledTest::KindName(NodeKind::Element, nid) = compiled {
                        let list = doc.element_postings(nid);
                        let mut p = gallop(list, 0, min_end);
                        while p < list.len() && list[p] < tree_end {
                            out.push(handle(doc, NodeId(list[p])));
                            p += 1;
                        }
                    } else {
                        for k in min_end..tree_end {
                            let id = NodeId(k);
                            if doc.kind_of(id) != NodeKind::Attribute && m(id) {
                                out.push(handle(doc, id));
                            }
                        }
                    }
                }
                Axis::Preceding => {
                    let last = ctxs[j - 1].id.0;
                    if let CompiledTest::KindName(NodeKind::Element, nid) = compiled {
                        let list = doc.element_postings(nid);
                        let mut p = gallop(list, 0, tree.0);
                        while p < list.len() && list[p] < last {
                            let id = NodeId(list[p]);
                            if doc.subtree_end(id) <= last {
                                out.push(handle(doc, id));
                            }
                            p += 1;
                        }
                    } else {
                        for k in tree.0..last {
                            let id = NodeId(k);
                            if doc.kind_of(id) != NodeKind::Attribute
                                && doc.subtree_end(id) <= last
                                && m(id)
                            {
                                out.push(handle(doc, id));
                            }
                        }
                    }
                }
                _ => unreachable!(),
            }
        }
        if let Some(g) = gov {
            g.charge_tuples((j - i) as u64 + (out.len() - before) as u64)?;
        }
        i = j;
    }
    Ok(())
}

// ===== tree_join ============================================================

/// Validates that every input item is a node and returns the context set in
/// document order: a strictly-increasing input passes through untouched
/// (the common case — step outputs are sorted), anything else is sorted and
/// deduplicated once here.
pub fn normalize_contexts(input: &Sequence) -> crate::Result<Vec<NodeHandle>> {
    let mut ctxs: Vec<NodeHandle> = Vec::with_capacity(input.len());
    let mut sorted = true;
    for item in input.iter() {
        let node = item
            .as_node()
            .ok_or_else(|| XmlError::new("XPTY0020", "path step applied to a non-node item"))?;
        if let Some(prev) = ctxs.last() {
            if prev.order_key() >= node.order_key() {
                sorted = false;
            }
        }
        ctxs.push(node.clone());
    }
    if !sorted {
        ctxs.sort_by_key(|n| n.order_key());
        ctxs.dedup_by(|a, b| a.same_node(b));
    }
    Ok(ctxs)
}

/// Sort/dedup elision: a linear order check replaces the unconditional
/// `sort_by_key` + `dedup_by` — the kernels produce strictly increasing
/// output for every forward axis and per-group axis, so the repair path
/// only runs for multi-context reverse axes with overlapping results.
fn finalize(mut out: Vec<NodeHandle>) -> Sequence {
    let strictly_sorted = out.windows(2).all(|w| w[0].order_key() < w[1].order_key());
    if !strictly_sorted {
        out.sort_by_key(|n| n.order_key());
        out.dedup_by(|a, b| a.same_node(b));
    }
    Sequence::from_vec(out.into_iter().map(Item::Node).collect())
}

/// The `TreeJoin[axis, nodetest]` primitive: applies the step to every node
/// of the input (erroring on non-node items, per XPTY0020), returning the
/// result in document order without duplicates.
pub fn tree_join(
    input: &Sequence,
    axis: Axis,
    test: &NodeTest,
    types: &dyn TypeHierarchy,
) -> crate::Result<Sequence> {
    tree_join_governed(input, axis, test, types, None)
}

/// [`tree_join`] under a resource governor: charges one tuple per context
/// plus one per produced node, so exploding steps trip the budget.
pub fn tree_join_governed(
    input: &Sequence,
    axis: Axis,
    test: &NodeTest,
    types: &dyn TypeHierarchy,
    gov: Option<&Governor>,
) -> crate::Result<Sequence> {
    tree_join_inner(input, axis, test, types, gov, None)
}

/// [`tree_join_governed`] with a caller-held [`TestCache`], amortizing test
/// compilation across repeated invocations of the same step site (a step
/// inside a per-tuple dependent plan otherwise recompiles every row).
pub fn tree_join_cached(
    input: &Sequence,
    axis: Axis,
    test: &NodeTest,
    types: &dyn TypeHierarchy,
    gov: Option<&Governor>,
    cache: &mut TestCache,
) -> crate::Result<Sequence> {
    cache.ensure_site(axis, test);
    tree_join_inner(input, axis, test, types, gov, Some(cache))
}

fn tree_join_inner(
    input: &Sequence,
    axis: Axis,
    test: &NodeTest,
    types: &dyn TypeHierarchy,
    gov: Option<&Governor>,
    mut cache: Option<&mut TestCache>,
) -> crate::Result<Sequence> {
    let mut out: Vec<NodeHandle> = Vec::new();
    match axis {
        Axis::Following | Axis::Preceding => {
            let ctxs = normalize_contexts(input)?;
            apply_group_axis(axis, test, &ctxs, types, gov, &mut out)?;
        }
        _ => {
            // Fast path: apply the kernel while iterating the input
            // directly, verifying the document-order precondition inline —
            // no context vector is built for the common already-sorted case
            // (step outputs, single contexts).
            let mut kernel = StepKernel::with_cache(axis, test, cache.as_deref_mut());
            let mut prev: Option<(u64, u32)> = None;
            let mut sorted = true;
            for item in input.iter() {
                let node = item.as_node().ok_or_else(|| {
                    XmlError::new("XPTY0020", "path step applied to a non-node item")
                })?;
                let key = node.order_key();
                if prev.is_some_and(|p| p >= key) {
                    sorted = false;
                    break;
                }
                prev = Some(key);
                let before = out.len();
                kernel.apply(node, types, &mut out);
                if let Some(g) = gov {
                    g.charge_tuples(1 + (out.len() - before) as u64)?;
                }
            }
            drop(kernel);
            if !sorted {
                // Rare: unsorted or duplicate contexts (unnormalized input
                // at the runtime boundary). Sort + dedup once and redo.
                let ctxs = normalize_contexts(input)?;
                out.clear();
                let mut kernel = StepKernel::with_cache(axis, test, cache);
                for c in &ctxs {
                    let before = out.len();
                    kernel.apply(c, types, &mut out);
                    if let Some(g) = gov {
                        g.charge_tuples(1 + (out.len() - before) as u64)?;
                    }
                }
            }
        }
    }
    Ok(finalize(out))
}

// ===== streaming stepper ====================================================

/// Which axes the streaming stepper can emit incrementally in document
/// order (forward axes whose outputs never precede a later context).
pub fn streamable_axis(axis: Axis) -> bool {
    matches!(
        axis,
        Axis::SelfAxis | Axis::Child | Axis::Attribute | Axis::Descendant | Axis::DescendantOrSelf
    )
}

/// Can `test` on `axis` ever accept an attribute node?
pub fn test_can_match_attributes(axis: Axis, test: &NodeTest) -> bool {
    match test {
        NodeTest::Name(_) => axis.principal_kind() == NodeKind::Attribute,
        NodeTest::Kind(kt) => matches!(kt, KindTest::AnyKind | KindTest::Attribute(..)),
    }
}

/// Does a `(axis, test)` step never *output* attribute nodes, regardless of
/// its context set? Used by the runtime to prove that a downstream
/// `descendant-or-self` stream stays in document order (an attribute
/// context inside an earlier context's subtree is the one case that can
/// emit out of order).
pub fn step_never_yields_attributes(axis: Axis, test: &NodeTest) -> bool {
    match axis {
        Axis::Attribute => false,
        Axis::Child
        | Axis::Descendant
        | Axis::FollowingSibling
        | Axis::PrecedingSibling
        | Axis::Following
        | Axis::Preceding
        | Axis::Parent
        | Axis::Ancestor => true,
        Axis::DescendantOrSelf | Axis::SelfAxis | Axis::AncestorOrSelf => {
            !test_can_match_attributes(axis, test)
        }
    }
}

/// Heap entry ordered by document-order key.
struct OrderedNode(NodeHandle);

impl PartialEq for OrderedNode {
    fn eq(&self, other: &Self) -> bool {
        self.0.order_key() == other.0.order_key()
    }
}
impl Eq for OrderedNode {}
impl PartialOrd for OrderedNode {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for OrderedNode {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.order_key().cmp(&other.0.order_key())
    }
}

/// Lazy scan over one descendant range (generic scan or postings walk).
struct ScanState {
    doc: Rc<Document>,
    compiled: CompiledTest,
    next: u32,
    end: u32,
    /// `(name id, position)` when walking a postings list instead.
    postings: Option<(u32, usize)>,
}

/// Incremental step evaluation for the runtime's streaming `TreeJoin`
/// cursor: contexts are pushed one at a time in document order and result
/// nodes are pulled without materializing the whole step.
///
/// Ordering contract: outputs of a context pushed *later* always have a
/// document-order key strictly greater than the keys of all previously
/// pushed contexts (children/attributes/self of a node have ids ≥ the
/// node's id; descendant ranges of unpruned contexts are disjoint and
/// ascending). Child/attribute/self results are therefore buffered in a
/// min-heap and released up to the latest context's key (the watermark);
/// descendant results stream straight out of the active range scan.
///
/// The caller must drain the stream (pop until `None`) before pushing the
/// next context, and for `descendant-or-self` with a test that can match
/// attributes must guarantee attribute-free contexts (see
/// [`step_never_yields_attributes`]); [`tree_join`] remains the fallback
/// for everything else.
pub struct StepStream<'t> {
    kernel: StepKernel<'t>,
    heap: BinaryHeap<Reverse<OrderedNode>>,
    ready: VecDeque<NodeHandle>,
    scan: Option<ScanState>,
    watermark: Option<(u64, u32)>,
    finished: bool,
    scratch: Vec<NodeHandle>,
}

impl<'t> StepStream<'t> {
    pub fn new(axis: Axis, test: &'t NodeTest) -> StepStream<'t> {
        debug_assert!(streamable_axis(axis));
        StepStream {
            kernel: StepKernel::new(axis, test),
            heap: BinaryHeap::new(),
            ready: VecDeque::new(),
            scan: None,
            watermark: None,
            finished: false,
            scratch: Vec::new(),
        }
    }

    /// Feeds the next context node (strictly after all previous contexts in
    /// document order).
    pub fn push_context(&mut self, node: &NodeHandle, types: &dyn TypeHierarchy) {
        debug_assert!(!self.finished);
        debug_assert!(self.watermark.is_none_or(|w| node.order_key() > w));
        debug_assert!(self.scan.is_none(), "previous scan must be drained");
        self.watermark = Some(node.order_key());
        match self.kernel.axis {
            Axis::Descendant | Axis::DescendantOrSelf => {
                self.kernel.ensure_doc(&node.doc);
                let st = self.kernel.state.as_mut().unwrap();
                let compiled = st.compiled;
                if matches!(compiled, CompiledTest::NoMatch) {
                    return;
                }
                let doc = &node.doc;
                let end = doc.subtree_end(node.id);
                if node.id.0 < st.prune_end {
                    // See `StepKernel::apply`: only an attribute context's
                    // or-self can contribute here, and the runtime gating
                    // guarantees that case never streams.
                    debug_assert!(
                        self.kernel.axis != Axis::DescendantOrSelf
                            || node.kind() != NodeKind::Attribute
                            || !matches_id(
                                doc,
                                node.id,
                                compiled,
                                self.kernel.test,
                                self.kernel.axis,
                                types
                            )
                    );
                    return;
                }
                st.prune_end = end;
                if self.kernel.axis == Axis::DescendantOrSelf
                    && matches_id(
                        doc,
                        node.id,
                        compiled,
                        self.kernel.test,
                        self.kernel.axis,
                        types,
                    )
                {
                    self.ready.push_back(node.clone());
                }
                let postings = match compiled {
                    CompiledTest::KindName(NodeKind::Element, nid) => {
                        let list = doc.element_postings(nid);
                        Some((nid, gallop(list, st.post_pos, node.id.0 + 1)))
                    }
                    _ => None,
                };
                self.scan = Some(ScanState {
                    doc: Rc::clone(doc),
                    compiled,
                    next: node.id.0 + 1,
                    end,
                    postings,
                });
            }
            _ => {
                // Small per-context batches (self/child/attribute): buffer
                // in the heap, release up to the watermark.
                self.scratch.clear();
                let mut scratch = std::mem::take(&mut self.scratch);
                self.kernel.apply(node, types, &mut scratch);
                for n in scratch.drain(..) {
                    self.heap.push(Reverse(OrderedNode(n)));
                }
                self.scratch = scratch;
                self.release();
            }
        }
    }

    /// No more contexts: everything still buffered becomes emittable.
    pub fn finish(&mut self) {
        self.finished = true;
        while let Some(Reverse(OrderedNode(n))) = self.heap.pop() {
            self.ready.push_back(n);
        }
    }

    fn release(&mut self) {
        let Some(w) = self.watermark else { return };
        while let Some(Reverse(top)) = self.heap.peek() {
            if top.0.order_key() <= w {
                let Reverse(OrderedNode(n)) = self.heap.pop().unwrap();
                self.ready.push_back(n);
            } else {
                break;
            }
        }
    }

    /// Next in-order result node, or `None` when more contexts (or
    /// `finish`) are needed first.
    pub fn pop(&mut self, types: &dyn TypeHierarchy) -> Option<NodeHandle> {
        if let Some(n) = self.ready.pop_front() {
            return Some(n);
        }
        let done = match &mut self.scan {
            None => true,
            Some(s) => match &mut s.postings {
                Some((nid, pos)) => {
                    let list = s.doc.element_postings(*nid);
                    if *pos < list.len() && list[*pos] < s.end {
                        let id = NodeId(list[*pos]);
                        *pos += 1;
                        return Some(handle(&s.doc, id));
                    }
                    false
                }
                None => {
                    while s.next < s.end {
                        let id = NodeId(s.next);
                        s.next += 1;
                        if s.doc.kind_of(id) != NodeKind::Attribute
                            && matches_id(
                                &s.doc,
                                id,
                                s.compiled,
                                self.kernel.test,
                                self.kernel.axis,
                                types,
                            )
                        {
                            return Some(handle(&s.doc, id));
                        }
                    }
                    false
                }
            },
        };
        if !done {
            // Scan exhausted: persist the postings hint for the next range.
            let s = self.scan.take().unwrap();
            if let (Some((_, pos)), Some(st)) = (s.postings, self.kernel.state.as_mut()) {
                if Rc::ptr_eq(&st.doc, &s.doc) {
                    st.post_pos = pos;
                }
            }
        }
        None
    }
}

// ===== naive reference ======================================================

/// The pre-index reference implementation: per-node recursive walks plus an
/// unconditional sort + dedup. It shares nothing with the kernels above
/// beyond the node tests, and serves as the oracle for the differential
/// suite (`tests/axes_differential.rs`). Enable outside tests with the
/// `naive-axes` feature.
#[cfg(any(test, feature = "naive-axes"))]
pub mod naive {
    use super::*;

    fn descendants(node: &NodeHandle) -> Vec<NodeHandle> {
        let mut out = Vec::new();
        let mut stack: Vec<NodeHandle> = node.children();
        stack.reverse();
        while let Some(n) = stack.pop() {
            out.push(n.clone());
            let mut cs = n.children();
            cs.reverse();
            stack.extend(cs);
        }
        out
    }

    fn collect_subtree(root: &NodeHandle, out: &mut Vec<NodeHandle>) {
        out.push(root.clone());
        out.extend(descendants(root));
    }

    fn siblings(node: &NodeHandle, following: bool) -> Vec<NodeHandle> {
        let Some(parent) = node.parent() else {
            return Vec::new();
        };
        if node.kind() == NodeKind::Attribute {
            return Vec::new();
        }
        let sibs = parent.children();
        let pos = sibs.iter().position(|s| s.same_node(node));
        match pos {
            Some(i) if following => sibs[i + 1..].to_vec(),
            Some(i) => sibs[..i].to_vec(),
            None => Vec::new(),
        }
    }

    fn axis_nodes(node: &NodeHandle, axis: Axis) -> Vec<NodeHandle> {
        match axis {
            Axis::Child => node.children(),
            Axis::Attribute => node.attributes(),
            Axis::SelfAxis => vec![node.clone()],
            Axis::Parent => node.parent().into_iter().collect(),
            Axis::Descendant => descendants(node),
            Axis::DescendantOrSelf => {
                let mut v = vec![node.clone()];
                v.extend(descendants(node));
                v
            }
            Axis::Ancestor => {
                let mut v = Vec::new();
                let mut cur = node.parent();
                while let Some(p) = cur {
                    cur = p.parent();
                    v.push(p);
                }
                v.reverse(); // document order
                v
            }
            Axis::AncestorOrSelf => {
                let mut v = axis_nodes(node, Axis::Ancestor);
                v.push(node.clone());
                v
            }
            Axis::FollowingSibling => siblings(node, true),
            Axis::PrecedingSibling => siblings(node, false),
            Axis::Following => {
                // Nodes after self in document order, excluding descendants.
                let root = tree_root(node);
                let key = node.order_key();
                let desc_max = descendants(node)
                    .last()
                    .map(|d| d.order_key())
                    .unwrap_or(key);
                let mut v: Vec<NodeHandle> = Vec::new();
                collect_subtree(&root, &mut v);
                v.retain(|n| n.order_key() > desc_max && n.order_key() > key);
                v
            }
            Axis::Preceding => {
                // Nodes before self in document order, excluding ancestors.
                let root = tree_root(node);
                let key = node.order_key();
                let mut ancestors = axis_nodes(node, Axis::Ancestor);
                ancestors.push(root.clone());
                let mut v: Vec<NodeHandle> = Vec::new();
                collect_subtree(&root, &mut v);
                v.retain(|n| n.order_key() < key && !ancestors.iter().any(|a| a.same_node(n)));
                v
            }
        }
    }

    fn tree_root(node: &NodeHandle) -> NodeHandle {
        let mut cur = node.clone();
        while let Some(p) = cur.parent() {
            cur = p;
        }
        cur
    }

    /// Reference `TreeJoin`: per-node axis walk, full-result sort + dedup.
    pub fn tree_join(
        input: &Sequence,
        axis: Axis,
        test: &NodeTest,
        types: &dyn TypeHierarchy,
    ) -> crate::Result<Sequence> {
        let mut out: Vec<NodeHandle> = Vec::new();
        for item in input.iter() {
            let node = item
                .as_node()
                .ok_or_else(|| XmlError::new("XPTY0020", "path step applied to a non-node item"))?;
            for candidate in axis_nodes(node, axis) {
                if test.matches(&candidate, axis, types) {
                    out.push(candidate);
                }
            }
        }
        out.sort_by_key(|n| n.order_key());
        out.dedup_by(|a, b| a.same_node(b));
        Ok(Sequence::from_vec(
            out.into_iter().map(Item::Node).collect(),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::TreeBuilder;
    use crate::node::TrivialHierarchy;

    /// <r><a i="1"><b/><c><b/></c></a><a i="2"/>text</r>
    fn sample() -> NodeHandle {
        let mut bld = TreeBuilder::new();
        bld.start_document();
        bld.start_element(QName::local("r"));
        bld.start_element(QName::local("a"));
        bld.attribute(QName::local("i"), "1");
        bld.start_element(QName::local("b"));
        bld.end_element();
        bld.start_element(QName::local("c"));
        bld.start_element(QName::local("b"));
        bld.end_element();
        bld.end_element();
        bld.end_element();
        bld.start_element(QName::local("a"));
        bld.attribute(QName::local("i"), "2");
        bld.end_element();
        bld.text("text");
        bld.end_element();
        bld.end_document();
        bld.finish(None).root()
    }

    fn names(seq: &Sequence) -> Vec<String> {
        seq.iter()
            .map(|i| {
                let n = i.as_node().unwrap();
                n.name()
                    .map(|q| q.local_part().to_string())
                    .unwrap_or_else(|| "#text".into())
            })
            .collect()
    }

    fn step(input: &NodeHandle, axis: Axis, test: NodeTest) -> Sequence {
        tree_join(
            &Sequence::singleton(input.clone()),
            axis,
            &test,
            &TrivialHierarchy,
        )
        .unwrap()
    }

    #[test]
    fn child_axis_with_name_test() {
        let doc = sample();
        let r = step(&doc, Axis::Child, NodeTest::Name(NameTest::local("r")));
        assert_eq!(names(&r), ["r"]);
        let root = r.get(0).unwrap().as_node().unwrap().clone();
        let aa = step(&root, Axis::Child, NodeTest::Name(NameTest::local("a")));
        assert_eq!(names(&aa), ["a", "a"]);
    }

    #[test]
    fn descendant_finds_all_in_doc_order() {
        let doc = sample();
        let bs = step(&doc, Axis::Descendant, NodeTest::Name(NameTest::local("b")));
        assert_eq!(names(&bs), ["b", "b"]);
        let keys: Vec<_> = bs
            .iter()
            .map(|i| i.as_node().unwrap().order_key())
            .collect();
        assert!(keys[0] < keys[1]);
    }

    #[test]
    fn attribute_axis() {
        let doc = sample();
        let a_elems = step(&doc, Axis::Descendant, NodeTest::Name(NameTest::local("a")));
        let attrs = tree_join(
            &a_elems,
            Axis::Attribute,
            &NodeTest::Name(NameTest::local("i")),
            &TrivialHierarchy,
        )
        .unwrap();
        assert_eq!(attrs.len(), 2);
        assert_eq!(attrs.get(0).unwrap().string_value(), "1");
        assert_eq!(attrs.get(1).unwrap().string_value(), "2");
    }

    #[test]
    fn name_test_does_not_match_attributes_on_child_axis() {
        let doc = sample();
        let any_child = step(&doc, Axis::Descendant, NodeTest::Name(NameTest::any()));
        // Elements only — not the text node, not attributes.
        assert_eq!(names(&any_child), ["r", "a", "b", "c", "b", "a"]);
    }

    #[test]
    fn kind_tests() {
        let doc = sample();
        let texts = step(&doc, Axis::Descendant, NodeTest::Kind(KindTest::Text));
        assert_eq!(texts.len(), 1);
        assert_eq!(texts.get(0).unwrap().string_value(), "text");
        let all = step(&doc, Axis::Descendant, NodeTest::Kind(KindTest::AnyKind));
        assert_eq!(all.len(), 7); // 6 elements + 1 text (attributes not on descendant)
    }

    #[test]
    fn parent_and_ancestor() {
        let doc = sample();
        let bs = step(&doc, Axis::Descendant, NodeTest::Name(NameTest::local("b")));
        let deep_b = bs.get(1).unwrap().as_node().unwrap().clone();
        let anc = step(&deep_b, Axis::Ancestor, NodeTest::Name(NameTest::any()));
        assert_eq!(names(&anc), ["r", "a", "c"]);
        let par = step(&deep_b, Axis::Parent, NodeTest::Kind(KindTest::AnyKind));
        assert_eq!(names(&par), ["c"]);
    }

    #[test]
    fn sibling_axes() {
        let doc = sample();
        let aa = step(&doc, Axis::Descendant, NodeTest::Name(NameTest::local("a")));
        let first_a = aa.get(0).unwrap().as_node().unwrap().clone();
        let foll = step(
            &first_a,
            Axis::FollowingSibling,
            NodeTest::Kind(KindTest::AnyKind),
        );
        assert_eq!(names(&foll), ["a", "#text"]);
        let second_a = aa.get(1).unwrap().as_node().unwrap().clone();
        let prec = step(
            &second_a,
            Axis::PrecedingSibling,
            NodeTest::Kind(KindTest::AnyKind),
        );
        assert_eq!(names(&prec), ["a"]);
    }

    #[test]
    fn following_and_preceding() {
        let doc = sample();
        let cs = step(&doc, Axis::Descendant, NodeTest::Name(NameTest::local("c")));
        let c = cs.get(0).unwrap().as_node().unwrap().clone();
        let foll = step(&c, Axis::Following, NodeTest::Kind(KindTest::AnyKind));
        assert_eq!(names(&foll), ["a", "#text"]);
        let prec = step(&c, Axis::Preceding, NodeTest::Kind(KindTest::AnyKind));
        assert_eq!(names(&prec), ["b"]);
    }

    #[test]
    fn dedup_across_input_nodes() {
        let doc = sample();
        let aa = step(&doc, Axis::Descendant, NodeTest::Name(NameTest::local("a")));
        // Both <a> nodes plus the root: descendants overlap; output must dedup.
        let mut input: Vec<Item> = aa.items().to_vec();
        input.push(Item::Node(doc.clone()));
        let out = tree_join(
            &Sequence::from_vec(input),
            Axis::Descendant,
            &NodeTest::Name(NameTest::local("b")),
            &TrivialHierarchy,
        )
        .unwrap();
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn non_node_input_is_type_error() {
        let r = tree_join(
            &Sequence::integers([1]),
            Axis::Child,
            &NodeTest::Kind(KindTest::AnyKind),
            &TrivialHierarchy,
        );
        assert_eq!(r.unwrap_err().code, "XPTY0020");
    }

    // ===== indexed ≡ naive and order/dedup regressions =====================

    /// Every node of the sample tree including attributes, via naive walk.
    fn all_nodes(root: &NodeHandle) -> Vec<NodeHandle> {
        let mut out = vec![root.clone()];
        for i in (root.id.0 + 1)..root.doc.subtree_end(root.id) {
            out.push(NodeHandle {
                doc: Rc::clone(&root.doc),
                id: NodeId(i),
            });
        }
        out
    }

    const ALL_AXES: [Axis; 12] = [
        Axis::Child,
        Axis::Descendant,
        Axis::DescendantOrSelf,
        Axis::Attribute,
        Axis::SelfAxis,
        Axis::Parent,
        Axis::Ancestor,
        Axis::AncestorOrSelf,
        Axis::FollowingSibling,
        Axis::PrecedingSibling,
        Axis::Following,
        Axis::Preceding,
    ];

    /// Indexed kernels agree with the naive walk on every axis, for both
    /// single contexts and the full (overlapping) node set, under several
    /// node tests.
    #[test]
    fn indexed_equals_naive_on_all_axes() {
        let doc = sample();
        let tests = [
            NodeTest::Kind(KindTest::AnyKind),
            NodeTest::Name(NameTest::local("b")),
            NodeTest::Name(NameTest::any()),
            NodeTest::Kind(KindTest::Text),
            NodeTest::Kind(KindTest::Attribute(Some(NameTest::local("i")), None)),
        ];
        let everything = all_nodes(&doc);
        let full: Sequence =
            Sequence::from_vec(everything.iter().cloned().map(Item::Node).collect());
        for axis in ALL_AXES {
            for test in &tests {
                let a = tree_join(&full, axis, test, &TrivialHierarchy).unwrap();
                let b = naive::tree_join(&full, axis, test, &TrivialHierarchy).unwrap();
                assert_eq!(
                    names(&a),
                    names(&b),
                    "axis {axis:?} test {test:?} (full input)"
                );
                assert_eq!(a.len(), b.len());
                for n in &everything {
                    let s = Sequence::singleton(n.clone());
                    let a = tree_join(&s, axis, test, &TrivialHierarchy).unwrap();
                    let b = naive::tree_join(&s, axis, test, &TrivialHierarchy).unwrap();
                    assert_eq!(a.len(), b.len(), "axis {axis:?} test {test:?} ctx {n:?}");
                    for (x, y) in a.iter().zip(b.iter()) {
                        assert!(x.as_node().unwrap().same_node(y.as_node().unwrap()));
                    }
                }
            }
        }
    }

    /// Regression: reverse axes keep document order and dedup with multiple
    /// overlapping contexts (the one case where the elision check must fall
    /// back to the repair sort).
    #[test]
    fn reverse_axes_multi_context_order_and_dedup() {
        let doc = sample();
        let leaves = step(&doc, Axis::Descendant, NodeTest::Name(NameTest::local("b")));
        assert_eq!(leaves.len(), 2);
        for axis in [
            Axis::Ancestor,
            Axis::AncestorOrSelf,
            Axis::Preceding,
            Axis::PrecedingSibling,
            Axis::Parent,
        ] {
            let out = tree_join(
                &leaves,
                axis,
                &NodeTest::Kind(KindTest::AnyKind),
                &TrivialHierarchy,
            )
            .unwrap();
            let keys: Vec<_> = out
                .iter()
                .map(|i| i.as_node().unwrap().order_key())
                .collect();
            for w in keys.windows(2) {
                assert!(w[0] < w[1], "axis {axis:?} out of order or duplicated");
            }
        }
        // Both <b> elements share ancestors r and a: dedup must collapse.
        let anc = tree_join(
            &leaves,
            Axis::Ancestor,
            &NodeTest::Name(NameTest::any()),
            &TrivialHierarchy,
        )
        .unwrap();
        assert_eq!(names(&anc), ["r", "a", "c"]);
    }

    /// Unsorted / duplicated context input is normalized before kernels run.
    #[test]
    fn unsorted_input_is_normalized() {
        let doc = sample();
        let aa = step(&doc, Axis::Descendant, NodeTest::Name(NameTest::local("a")));
        let (a1, a2) = (
            aa.get(0).unwrap().as_node().unwrap().clone(),
            aa.get(1).unwrap().as_node().unwrap().clone(),
        );
        let reversed = Sequence::from_vec(vec![
            Item::Node(a2.clone()),
            Item::Node(a1.clone()),
            Item::Node(a2),
        ]);
        let out = tree_join(
            &reversed,
            Axis::Attribute,
            &NodeTest::Name(NameTest::local("i")),
            &TrivialHierarchy,
        )
        .unwrap();
        assert_eq!(out.len(), 2);
        assert_eq!(out.get(0).unwrap().string_value(), "1");
        assert_eq!(out.get(1).unwrap().string_value(), "2");
    }

    /// The streaming stepper agrees with `tree_join` on every streamable
    /// axis over the full (overlapping) context set.
    #[test]
    fn step_stream_matches_tree_join() {
        let doc = sample();
        let everything = all_nodes(&doc);
        let non_attr: Vec<NodeHandle> = everything
            .iter()
            .filter(|n| n.kind() != NodeKind::Attribute)
            .cloned()
            .collect();
        let tests = [
            NodeTest::Kind(KindTest::AnyKind),
            NodeTest::Name(NameTest::local("b")),
            NodeTest::Kind(KindTest::Text),
        ];
        for axis in [
            Axis::SelfAxis,
            Axis::Child,
            Axis::Attribute,
            Axis::Descendant,
            Axis::DescendantOrSelf,
        ] {
            for test in &tests {
                // Attribute contexts only stream when provably safe.
                let ctxs = if step_never_yields_attributes(axis, test) {
                    &everything
                } else {
                    &non_attr
                };
                let mut stream = StepStream::new(axis, test);
                let mut got: Vec<NodeHandle> = Vec::new();
                for c in ctxs {
                    stream.push_context(c, &TrivialHierarchy);
                    while let Some(n) = stream.pop(&TrivialHierarchy) {
                        got.push(n);
                    }
                }
                stream.finish();
                while let Some(n) = stream.pop(&TrivialHierarchy) {
                    got.push(n);
                }
                let want = tree_join(
                    &Sequence::from_vec(ctxs.iter().cloned().map(Item::Node).collect()),
                    axis,
                    test,
                    &TrivialHierarchy,
                )
                .unwrap();
                assert_eq!(got.len(), want.len(), "axis {axis:?} test {test:?}");
                for (g, w) in got.iter().zip(want.iter()) {
                    assert!(g.same_node(w.as_node().unwrap()), "axis {axis:?}");
                }
            }
        }
    }
}
