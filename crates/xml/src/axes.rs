//! XPath axes and node tests — the machinery behind the `TreeJoin` operator.
//!
//! `TreeJoin[axis, nodetest]` (paper Table 1) is "a set-at-a-time operator
//! for navigation, which takes a set of nodes in document order and returns
//! a set of nodes in document order after applying the given step". The
//! entry point here is [`tree_join`].

use crate::item::{Item, Sequence};
use crate::node::{NodeHandle, NodeKind, TypeHierarchy};
use crate::qname::QName;
use crate::XmlError;

/// The twelve XPath axes (the `namespace` axis is deprecated in XQuery and
/// not supported).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum Axis {
    Child,
    Descendant,
    DescendantOrSelf,
    Attribute,
    SelfAxis,
    Parent,
    Ancestor,
    AncestorOrSelf,
    FollowingSibling,
    PrecedingSibling,
    Following,
    Preceding,
}

impl Axis {
    pub fn name(self) -> &'static str {
        match self {
            Axis::Child => "child",
            Axis::Descendant => "descendant",
            Axis::DescendantOrSelf => "descendant-or-self",
            Axis::Attribute => "attribute",
            Axis::SelfAxis => "self",
            Axis::Parent => "parent",
            Axis::Ancestor => "ancestor",
            Axis::AncestorOrSelf => "ancestor-or-self",
            Axis::FollowingSibling => "following-sibling",
            Axis::PrecedingSibling => "preceding-sibling",
            Axis::Following => "following",
            Axis::Preceding => "preceding",
        }
    }

    pub fn by_name(s: &str) -> Option<Axis> {
        Some(match s {
            "child" => Axis::Child,
            "descendant" => Axis::Descendant,
            "descendant-or-self" => Axis::DescendantOrSelf,
            "attribute" => Axis::Attribute,
            "self" => Axis::SelfAxis,
            "parent" => Axis::Parent,
            "ancestor" => Axis::Ancestor,
            "ancestor-or-self" => Axis::AncestorOrSelf,
            "following-sibling" => Axis::FollowingSibling,
            "preceding-sibling" => Axis::PrecedingSibling,
            "following" => Axis::Following,
            "preceding" => Axis::Preceding,
            _ => return None,
        })
    }

    /// Principal node kind: Attribute for the attribute axis, Element else.
    pub fn principal_kind(self) -> NodeKind {
        match self {
            Axis::Attribute => NodeKind::Attribute,
            _ => NodeKind::Element,
        }
    }
}

/// A name test: possibly wildcarded in the URI and/or local part.
/// `*` = both None; `ns:*` = uri set, local None; `*:local` = uri None
/// (distinguished from plain `local` by `any_uri`).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct NameTest {
    pub uri: Option<String>,
    pub local: Option<String>,
    /// True for `*:local` (match any namespace); false means "no namespace"
    /// when `uri` is None.
    pub any_uri: bool,
}

impl NameTest {
    pub fn any() -> Self {
        NameTest {
            uri: None,
            local: None,
            any_uri: true,
        }
    }

    pub fn local(name: &str) -> Self {
        NameTest {
            uri: None,
            local: Some(name.to_string()),
            any_uri: false,
        }
    }

    pub fn with_uri(uri: &str, name: &str) -> Self {
        NameTest {
            uri: Some(uri.to_string()),
            local: Some(name.to_string()),
            any_uri: false,
        }
    }

    pub fn matches(&self, name: &QName) -> bool {
        if let Some(l) = &self.local {
            if l != name.local_part() {
                return false;
            }
        }
        if self.any_uri {
            return true;
        }
        match &self.uri {
            Some(u) => name.uri() == Some(u.as_str()),
            None => name.uri().is_none(),
        }
    }
}

/// Kind tests per XQuery sequence types.
#[derive(Clone, PartialEq, Debug)]
pub enum KindTest {
    /// `node()`
    AnyKind,
    /// `text()`
    Text,
    /// `comment()`
    Comment,
    /// `processing-instruction(target?)`
    Pi(Option<String>),
    /// `document-node()`
    Document,
    /// `element(name-or-*, type?)`
    Element(Option<NameTest>, Option<QName>),
    /// `attribute(name-or-*, type?)`
    Attribute(Option<NameTest>, Option<QName>),
}

/// A node test: either a name test (against the axis's principal node kind)
/// or a kind test.
#[derive(Clone, PartialEq, Debug)]
pub enum NodeTest {
    Name(NameTest),
    Kind(KindTest),
}

impl NodeTest {
    /// Does `node` satisfy this test on `axis`? Type constraints in
    /// element/attribute kind tests consult the `types` hierarchy; untyped
    /// nodes only satisfy a type constraint of `xs:anyType`/`xdt:untyped`.
    pub fn matches(&self, node: &NodeHandle, axis: Axis, types: &dyn TypeHierarchy) -> bool {
        match self {
            NodeTest::Name(nt) => {
                node.kind() == axis.principal_kind() && node.name().is_some_and(|n| nt.matches(n))
            }
            NodeTest::Kind(kt) => kind_test_matches(kt, node, types),
        }
    }
}

/// Kind-test matching shared with `instance of` checking in `xqr-types`.
pub fn kind_test_matches(kt: &KindTest, node: &NodeHandle, types: &dyn TypeHierarchy) -> bool {
    match kt {
        KindTest::AnyKind => true,
        KindTest::Text => node.kind() == NodeKind::Text,
        KindTest::Comment => node.kind() == NodeKind::Comment,
        KindTest::Pi(target) => {
            node.kind() == NodeKind::Pi
                && target
                    .as_ref()
                    .is_none_or(|t| node.name().is_some_and(|n| n.local_part() == t))
        }
        KindTest::Document => node.kind() == NodeKind::Document,
        KindTest::Element(name, ty) => {
            node.kind() == NodeKind::Element
                && name
                    .as_ref()
                    .is_none_or(|nt| node.name().is_some_and(|n| nt.matches(n)))
                && type_constraint_ok(node, ty, types, "untyped")
        }
        KindTest::Attribute(name, ty) => {
            node.kind() == NodeKind::Attribute
                && name
                    .as_ref()
                    .is_none_or(|nt| node.name().is_some_and(|n| nt.matches(n)))
                && type_constraint_ok(node, ty, types, "untypedAtomic")
        }
    }
}

fn type_constraint_ok(
    node: &NodeHandle,
    constraint: &Option<QName>,
    types: &dyn TypeHierarchy,
    untyped_name: &str,
) -> bool {
    match constraint {
        None => true,
        Some(required) => {
            let annotated = node
                .type_name()
                .cloned()
                .unwrap_or_else(|| QName::local(untyped_name));
            types.derives_from(&annotated, required)
        }
    }
}

fn axis_nodes(node: &NodeHandle, axis: Axis) -> Vec<NodeHandle> {
    match axis {
        Axis::Child => node.children(),
        Axis::Attribute => node.attributes(),
        Axis::SelfAxis => vec![node.clone()],
        Axis::Parent => node.parent().into_iter().collect(),
        Axis::Descendant => node.descendants(),
        Axis::DescendantOrSelf => {
            let mut v = vec![node.clone()];
            v.extend(node.descendants());
            v
        }
        Axis::Ancestor => {
            let mut v = Vec::new();
            let mut cur = node.parent();
            while let Some(p) = cur {
                cur = p.parent();
                v.push(p);
            }
            v.reverse(); // document order
            v
        }
        Axis::AncestorOrSelf => {
            let mut v = axis_nodes(node, Axis::Ancestor);
            v.push(node.clone());
            v
        }
        Axis::FollowingSibling => siblings(node, true),
        Axis::PrecedingSibling => siblings(node, false),
        Axis::Following => {
            // Nodes after self in document order, excluding descendants.
            let root = node.tree_root();
            let key = node.order_key();
            let desc_max = node
                .descendants()
                .last()
                .map(|d| d.order_key())
                .unwrap_or(key);
            let mut v: Vec<NodeHandle> = Vec::new();
            collect_subtree(&root, &mut v);
            v.retain(|n| n.order_key() > desc_max && n.order_key() > key);
            v
        }
        Axis::Preceding => {
            // Nodes before self in document order, excluding ancestors.
            let root = node.tree_root();
            let key = node.order_key();
            let mut ancestors = axis_nodes(node, Axis::Ancestor);
            ancestors.push(root.clone());
            let mut v: Vec<NodeHandle> = Vec::new();
            collect_subtree(&root, &mut v);
            v.retain(|n| n.order_key() < key && !ancestors.iter().any(|a| a.same_node(n)));
            v
        }
    }
}

fn collect_subtree(root: &NodeHandle, out: &mut Vec<NodeHandle>) {
    out.push(root.clone());
    out.extend(root.descendants());
}

fn siblings(node: &NodeHandle, following: bool) -> Vec<NodeHandle> {
    let Some(parent) = node.parent() else {
        return Vec::new();
    };
    if node.kind() == NodeKind::Attribute {
        return Vec::new();
    }
    let sibs = parent.children();
    let pos = sibs.iter().position(|s| s.same_node(node));
    match pos {
        Some(i) if following => sibs[i + 1..].to_vec(),
        Some(i) => sibs[..i].to_vec(),
        None => Vec::new(),
    }
}

/// The `TreeJoin[axis, nodetest]` primitive: applies the step to every node
/// of the input (erroring on non-node items, per XPTY0020), returning the
/// result in document order without duplicates.
pub fn tree_join(
    input: &Sequence,
    axis: Axis,
    test: &NodeTest,
    types: &dyn TypeHierarchy,
) -> crate::Result<Sequence> {
    let mut out: Vec<NodeHandle> = Vec::new();
    for item in input.iter() {
        let node = item
            .as_node()
            .ok_or_else(|| XmlError::new("XPTY0020", "path step applied to a non-node item"))?;
        for candidate in axis_nodes(node, axis) {
            if test.matches(&candidate, axis, types) {
                out.push(candidate);
            }
        }
    }
    out.sort_by_key(|n| n.order_key());
    out.dedup_by(|a, b| a.same_node(b));
    Ok(Sequence::from_vec(
        out.into_iter().map(Item::Node).collect(),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::TreeBuilder;
    use crate::node::TrivialHierarchy;

    /// <r><a i="1"><b/><c><b/></c></a><a i="2"/>text</r>
    fn sample() -> NodeHandle {
        let mut bld = TreeBuilder::new();
        bld.start_document();
        bld.start_element(QName::local("r"));
        bld.start_element(QName::local("a"));
        bld.attribute(QName::local("i"), "1");
        bld.start_element(QName::local("b"));
        bld.end_element();
        bld.start_element(QName::local("c"));
        bld.start_element(QName::local("b"));
        bld.end_element();
        bld.end_element();
        bld.end_element();
        bld.start_element(QName::local("a"));
        bld.attribute(QName::local("i"), "2");
        bld.end_element();
        bld.text("text");
        bld.end_element();
        bld.end_document();
        bld.finish(None).root()
    }

    fn names(seq: &Sequence) -> Vec<String> {
        seq.iter()
            .map(|i| {
                let n = i.as_node().unwrap();
                n.name()
                    .map(|q| q.local_part().to_string())
                    .unwrap_or_else(|| "#text".into())
            })
            .collect()
    }

    fn step(input: &NodeHandle, axis: Axis, test: NodeTest) -> Sequence {
        tree_join(
            &Sequence::singleton(input.clone()),
            axis,
            &test,
            &TrivialHierarchy,
        )
        .unwrap()
    }

    #[test]
    fn child_axis_with_name_test() {
        let doc = sample();
        let r = step(&doc, Axis::Child, NodeTest::Name(NameTest::local("r")));
        assert_eq!(names(&r), ["r"]);
        let root = r.get(0).unwrap().as_node().unwrap().clone();
        let aa = step(&root, Axis::Child, NodeTest::Name(NameTest::local("a")));
        assert_eq!(names(&aa), ["a", "a"]);
    }

    #[test]
    fn descendant_finds_all_in_doc_order() {
        let doc = sample();
        let bs = step(&doc, Axis::Descendant, NodeTest::Name(NameTest::local("b")));
        assert_eq!(names(&bs), ["b", "b"]);
        let keys: Vec<_> = bs
            .iter()
            .map(|i| i.as_node().unwrap().order_key())
            .collect();
        assert!(keys[0] < keys[1]);
    }

    #[test]
    fn attribute_axis() {
        let doc = sample();
        let a_elems = step(&doc, Axis::Descendant, NodeTest::Name(NameTest::local("a")));
        let attrs = tree_join(
            &a_elems,
            Axis::Attribute,
            &NodeTest::Name(NameTest::local("i")),
            &TrivialHierarchy,
        )
        .unwrap();
        assert_eq!(attrs.len(), 2);
        assert_eq!(attrs.get(0).unwrap().string_value(), "1");
        assert_eq!(attrs.get(1).unwrap().string_value(), "2");
    }

    #[test]
    fn name_test_does_not_match_attributes_on_child_axis() {
        let doc = sample();
        let any_child = step(&doc, Axis::Descendant, NodeTest::Name(NameTest::any()));
        // Elements only — not the text node, not attributes.
        assert_eq!(names(&any_child), ["r", "a", "b", "c", "b", "a"]);
    }

    #[test]
    fn kind_tests() {
        let doc = sample();
        let texts = step(&doc, Axis::Descendant, NodeTest::Kind(KindTest::Text));
        assert_eq!(texts.len(), 1);
        assert_eq!(texts.get(0).unwrap().string_value(), "text");
        let all = step(&doc, Axis::Descendant, NodeTest::Kind(KindTest::AnyKind));
        assert_eq!(all.len(), 7); // 6 elements + 1 text (attributes not on descendant)
    }

    #[test]
    fn parent_and_ancestor() {
        let doc = sample();
        let bs = step(&doc, Axis::Descendant, NodeTest::Name(NameTest::local("b")));
        let deep_b = bs.get(1).unwrap().as_node().unwrap().clone();
        let anc = step(&deep_b, Axis::Ancestor, NodeTest::Name(NameTest::any()));
        assert_eq!(names(&anc), ["r", "a", "c"]);
        let par = step(&deep_b, Axis::Parent, NodeTest::Kind(KindTest::AnyKind));
        assert_eq!(names(&par), ["c"]);
    }

    #[test]
    fn sibling_axes() {
        let doc = sample();
        let aa = step(&doc, Axis::Descendant, NodeTest::Name(NameTest::local("a")));
        let first_a = aa.get(0).unwrap().as_node().unwrap().clone();
        let foll = step(
            &first_a,
            Axis::FollowingSibling,
            NodeTest::Kind(KindTest::AnyKind),
        );
        assert_eq!(names(&foll), ["a", "#text"]);
        let second_a = aa.get(1).unwrap().as_node().unwrap().clone();
        let prec = step(
            &second_a,
            Axis::PrecedingSibling,
            NodeTest::Kind(KindTest::AnyKind),
        );
        assert_eq!(names(&prec), ["a"]);
    }

    #[test]
    fn following_and_preceding() {
        let doc = sample();
        let cs = step(&doc, Axis::Descendant, NodeTest::Name(NameTest::local("c")));
        let c = cs.get(0).unwrap().as_node().unwrap().clone();
        let foll = step(&c, Axis::Following, NodeTest::Kind(KindTest::AnyKind));
        assert_eq!(names(&foll), ["a", "#text"]);
        let prec = step(&c, Axis::Preceding, NodeTest::Kind(KindTest::AnyKind));
        assert_eq!(names(&prec), ["b"]);
    }

    #[test]
    fn dedup_across_input_nodes() {
        let doc = sample();
        let aa = step(&doc, Axis::Descendant, NodeTest::Name(NameTest::local("a")));
        // Both <a> nodes plus the root: descendants overlap; output must dedup.
        let mut input: Vec<Item> = aa.items().to_vec();
        input.push(Item::Node(doc.clone()));
        let out = tree_join(
            &Sequence::from_vec(input),
            Axis::Descendant,
            &NodeTest::Name(NameTest::local("b")),
            &TrivialHierarchy,
        )
        .unwrap();
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn non_node_input_is_type_error() {
        let r = tree_join(
            &Sequence::integers([1]),
            Axis::Child,
            &NodeTest::Kind(KindTest::AnyKind),
            &TrivialHierarchy,
        );
        assert_eq!(r.unwrap_err().code, "XPTY0020");
    }
}
