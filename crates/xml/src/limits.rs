//! The resource governor: execution limits, cooperative cancellation, and
//! budget accounting shared by every evaluation path.
//!
//! The engine serves untrusted queries; a single deeply nested FLWOR or an
//! exponential `Product` plan can otherwise pin a core or exhaust memory.
//! [`Limits`] declares the budgets (wall-clock deadline, tuple-operation
//! cardinality, approximate bytes of materialized state, recursion and
//! nesting depths); a [`Governor`] carries the running counters plus a
//! [`CancellationToken`] and is checked *cooperatively* from the hot loops
//! of both execution strategies (every pipelined cursor `next()`, every
//! materialized operator loop, join build/probe phases, the Core
//! interpreter's clause streams, and document parsing).
//!
//! Violations surface as [`XmlError`]s with stable governor codes in the
//! repo's `err:`-style convention:
//!
//! | code | budget |
//! |---|---|
//! | `XQRG0001` | wall-clock deadline exceeded |
//! | `XQRG0002` | cancelled via [`CancellationToken`] |
//! | `XQRG0003` | tuple-operation cardinality budget exceeded |
//! | `XQRG0004` | memory (byte) budget exceeded (spilling disabled) |
//! | `XQRG0005` | spill I/O failed after retries |
//! | `XQRG0006` | spill disk budget exceeded |
//! | `XQRG0007` | shed by the query service's admission controller |
//! | `XQRG0008` | fast-failed by an open per-shape circuit breaker |
//! | `XQRT0005` | function recursion depth exceeded (pre-existing code) |
//!
//! With spilling **enabled** (the default), the byte budget degrades
//! instead of killing: crossing the *soft watermark* (a percentage of
//! `max_bytes`, default 80%) flips the governor into spill mode, and the
//! memory-bound operators (join build, group-by partitions, order-by)
//! switch to their out-of-core variants in `xqr-runtime`'s `spill`
//! module. The hard `XQRG0004` trip then only fires when spilling is
//! disabled with [`Limits::with_spill`]`(None)`; disk consumption is
//! separately bounded by `max_spill_bytes` (`XQRG0006`).
//!
//! Cost model: [`Governor::tick`] is one `Cell` increment, one integer
//! compare, and a predictable branch; the clock and the atomic cancel flag
//! are consulted only every [`TIME_CHECK_MASK`]+1 ticks, so an un-governed
//! run (all budgets `None`) pays only the counter arithmetic.

use std::cell::Cell;
use std::path::PathBuf;
use std::rc::Rc;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::metrics::metrics;
use crate::XmlError;

/// Deadline exceeded.
pub const ERR_DEADLINE: &str = "XQRG0001";
/// Cancelled through a [`CancellationToken`].
pub const ERR_CANCELLED: &str = "XQRG0002";
/// Tuple-operation cardinality budget exceeded.
pub const ERR_TUPLES: &str = "XQRG0003";
/// Approximate-memory budget exceeded.
pub const ERR_BYTES: &str = "XQRG0004";
/// Spill I/O failed after the retry budget (3 attempts, capped backoff).
pub const ERR_SPILL_IO: &str = "XQRG0005";
/// Spill disk budget (`max_spill_bytes`) exceeded.
pub const ERR_SPILL_BUDGET: &str = "XQRG0006";
/// The query service's admission controller shed the request (overload:
/// queue full, aggregate memory over-committed, or the remaining deadline
/// cannot cover the expected queue wait).
pub const ERR_OVERLOADED: &str = "XQRG0007";
/// The per-query-shape circuit breaker is open: this plan shape has
/// repeatedly failed with internal errors and is fast-failed until the
/// cooldown half-opens the breaker.
pub const ERR_BREAKER: &str = "XQRG0008";
/// A per-tenant session quota refused the request before service
/// admission: too many concurrent queries for the tenant, the tenant's
/// aggregate reservation share is exhausted, or its request rate bucket
/// is empty. Distinct from `XQRG0007` (service-wide overload) so clients
/// can tell "you are over *your* budget" from "the service is full".
pub const ERR_TENANT: &str = "XQRG0009";
/// Function recursion depth exceeded (kept from the pre-governor guard so
/// existing callers observe the same code).
pub const ERR_RECURSION: &str = "XQRT0005";

/// Ticks between clock/cancel-flag consultations (power of two minus one,
/// used as a mask). 1023 ticks is well under a millisecond of tuple work,
/// so a deadline is honored with far less than 2× slack.
pub const TIME_CHECK_MASK: u64 = 0x3FF;

/// Declarative resource limits for one execution. `None`/`usize::MAX`
/// means unlimited; [`Limits::default`] is fully permissive apart from the
/// depth guards, which keep their pre-governor defaults.
#[derive(Clone, Debug)]
pub struct Limits {
    /// Wall-clock budget for one `run` (measured from governor creation).
    pub deadline: Option<Duration>,
    /// Budget on tuple *operations*: every tuple produced or inspected by
    /// an operator loop (in either strategy) charges one unit, so the
    /// bound scales with work done, not just output size.
    pub max_tuples: Option<u64>,
    /// Budget on the approximate bytes of materialized operator state
    /// (intermediate tables, join indexes, group-by partitions).
    pub max_bytes: Option<u64>,
    /// Whether the memory-bound operators may degrade to disk when the
    /// byte budget comes under pressure (the default). When `false`, the
    /// hard `XQRG0004` trip of PR 2 is restored.
    pub spill_enabled: bool,
    /// Budget on bytes written to spill files at any one time; `None` is
    /// unlimited disk. Exceeding it fails the query with `XQRG0006`.
    pub max_spill_bytes: Option<u64>,
    /// Percentage of `max_bytes` at which the governor flips into spill
    /// mode (the *soft watermark*). Clamped to 1..=100.
    pub spill_watermark_pct: u8,
    /// Directory for the per-query scoped spill dir; defaults to the
    /// `XQR_SPILL_DIR` environment variable, then the system temp dir.
    pub spill_dir: Option<PathBuf>,
    /// User-function recursion depth (both strategies).
    pub max_recursion_depth: usize,
    /// Expression nesting depth in the query parser.
    pub max_parse_depth: usize,
    /// Element nesting depth in XML document parsing.
    pub max_document_depth: usize,
    /// Fault injection for testing the isolation boundary: panic after
    /// this many governor ticks on the *first* attempt of a run. The
    /// engine disarms it on a graceful-degradation retry, so tests can
    /// prove a pipelined panic is caught and the materialized fallback
    /// completes. Never set in production.
    pub panic_after_ticks: Option<u64>,
}

impl Default for Limits {
    fn default() -> Limits {
        Limits {
            deadline: None,
            max_tuples: None,
            max_bytes: None,
            spill_enabled: true,
            max_spill_bytes: None,
            spill_watermark_pct: 80,
            spill_dir: None,
            max_recursion_depth: 200,
            max_parse_depth: 128,
            max_document_depth: 512,
            panic_after_ticks: None,
        }
    }
}

impl Limits {
    /// Fully permissive limits (depth guards at their defaults).
    pub fn none() -> Limits {
        Limits::default()
    }

    pub fn with_deadline(mut self, d: Duration) -> Limits {
        self.deadline = Some(d);
        self
    }

    pub fn with_max_tuples(mut self, n: u64) -> Limits {
        self.max_tuples = Some(n);
        self
    }

    pub fn with_max_bytes(mut self, n: u64) -> Limits {
        self.max_bytes = Some(n);
        self
    }

    /// Configures spilling: `None` disables it entirely (restoring the
    /// hard `XQRG0004` byte-budget trip), `Some(n)` enables it with a disk
    /// budget of `n` bytes. Spilling is on with unlimited disk by default;
    /// use `with_spill(Some(n))` to bound the disk footprint.
    pub fn with_spill(mut self, disk_budget: Option<u64>) -> Limits {
        match disk_budget {
            None => {
                self.spill_enabled = false;
                self.max_spill_bytes = None;
            }
            Some(n) => {
                self.spill_enabled = true;
                self.max_spill_bytes = Some(n);
            }
        }
        self
    }

    /// Sets the soft watermark as a percentage of `max_bytes` (default
    /// 80). Values are clamped to 1..=100 at governor creation.
    pub fn with_spill_watermark(mut self, pct: u8) -> Limits {
        self.spill_watermark_pct = pct;
        self
    }

    /// Overrides the parent directory for per-query spill dirs (takes
    /// precedence over the `XQR_SPILL_DIR` environment variable).
    pub fn with_spill_dir(mut self, dir: impl Into<PathBuf>) -> Limits {
        self.spill_dir = Some(dir.into());
        self
    }

    pub fn with_max_recursion_depth(mut self, n: usize) -> Limits {
        self.max_recursion_depth = n;
        self
    }

    pub fn with_max_parse_depth(mut self, n: usize) -> Limits {
        self.max_parse_depth = n;
        self
    }

    pub fn with_max_document_depth(mut self, n: usize) -> Limits {
        self.max_document_depth = n;
        self
    }
}

/// A thread-safe cancellation handle. Clone it, hand the clone to another
/// thread (the token is `Send + Sync` even though query values are not),
/// and `cancel()` flips a flag the governor polls cooperatively.
///
/// The token doubles as a **liveness probe**: every time the governor
/// consults the clock/cancel flag (the sampled `tick` path, an explicit
/// `check_time`, the document parser's per-element check) it bumps a
/// shared progress counter. A supervisor on another thread can read
/// [`CancellationToken::progress`] periodically — a query whose counter
/// stops moving is stuck somewhere that never reaches the governor (a
/// blocked loader, a stalled syscall), which is exactly the case the
/// deadline alone cannot catch.
#[derive(Clone, Debug, Default)]
pub struct CancellationToken {
    flag: Arc<AtomicBool>,
    progress: Arc<AtomicU64>,
}

impl CancellationToken {
    pub fn new() -> CancellationToken {
        CancellationToken::default()
    }

    /// Requests cancellation; the running query observes it at its next
    /// time-check tick and fails with `XQRG0002`.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Relaxed);
    }

    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Relaxed)
    }

    /// Monotone liveness counter: incremented on every governor
    /// clock/cancel consultation for the run holding this token. Two
    /// equal reads spaced in time mean the run made no governed progress
    /// in between.
    pub fn progress(&self) -> u64 {
        self.progress.load(Ordering::Relaxed)
    }

    /// Bumps the liveness counter (called by the governor; also available
    /// to long blocking operations that want to report liveness without a
    /// governor in reach).
    pub fn mark_progress(&self) {
        self.progress.fetch_add(1, Ordering::Relaxed);
    }
}

struct GovernorInner {
    token: CancellationToken,
    deadline: Option<Instant>,
    max_tuples: u64,
    max_bytes: u64,
    max_depth: usize,
    tuples: Cell<u64>,
    /// Tuple count at which the slow path must run next: the minimum of
    /// the next clock/cancel consultation, the budget trip point, and the
    /// fault-injection point. Keeps the hot path to one compare.
    next_event: Cell<u64>,
    /// Next tick count at which to consult the clock and cancel flag.
    next_time_check: Cell<u64>,
    bytes: Cell<u64>,
    /// High-water mark of `bytes` (live accounting means `bytes` can go
    /// down; profiling wants the peak).
    peak_bytes: Cell<u64>,
    /// Byte count at which spill mode flips on; `u64::MAX` when spilling
    /// is disabled or no byte budget is set.
    spill_watermark: Cell<u64>,
    /// Sticky: once the watermark is crossed, spill-capable operators stay
    /// in spill mode for the rest of the run.
    spill_mode: Cell<bool>,
    spill_enabled: bool,
    max_spill_bytes: u64,
    /// Live bytes currently held in spill files.
    spill_bytes: Cell<u64>,
    /// Total bytes ever written to spill files this run (observability).
    spill_bytes_total: Cell<u64>,
    spill_dir: Option<PathBuf>,
    depth: Cell<usize>,
    /// Fault-injection trip point; `u64::MAX` when disarmed.
    panic_at: Cell<u64>,
}

/// The running budget counters for one execution, shared (`Rc`) between
/// the dynamic context, cursors, and the document parser. All methods take
/// `&self`; the runtime is single-threaded, so plain `Cell` counters
/// suffice — only the cancel flag crosses threads.
#[derive(Clone)]
pub struct Governor(Rc<GovernorInner>);

impl std::fmt::Debug for Governor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Governor")
            .field("tuples", &self.0.tuples.get())
            .field("bytes", &self.0.bytes.get())
            .field("depth", &self.0.depth.get())
            .finish_non_exhaustive()
    }
}

impl Default for Governor {
    fn default() -> Governor {
        Governor::unlimited()
    }
}

impl Governor {
    /// A governor that enforces nothing beyond the default recursion
    /// guard — the zero-configuration path.
    pub fn unlimited() -> Governor {
        Governor::new(&Limits::default(), CancellationToken::new())
    }

    /// Starts the clock: the deadline is measured from this call.
    pub fn new(limits: &Limits, token: CancellationToken) -> Governor {
        let max_bytes = limits.max_bytes.unwrap_or(u64::MAX);
        let watermark = if limits.spill_enabled && max_bytes != u64::MAX {
            let pct = limits.spill_watermark_pct.clamp(1, 100) as u64;
            (max_bytes / 100).saturating_mul(pct).max(1)
        } else {
            u64::MAX
        };
        let g = Governor(Rc::new(GovernorInner {
            token,
            deadline: limits.deadline.map(|d| Instant::now() + d),
            max_tuples: limits.max_tuples.unwrap_or(u64::MAX),
            max_bytes,
            max_depth: limits.max_recursion_depth,
            tuples: Cell::new(0),
            next_event: Cell::new(0),
            next_time_check: Cell::new(TIME_CHECK_MASK + 1),
            bytes: Cell::new(0),
            peak_bytes: Cell::new(0),
            spill_watermark: Cell::new(watermark),
            spill_mode: Cell::new(false),
            spill_enabled: limits.spill_enabled,
            max_spill_bytes: limits.max_spill_bytes.unwrap_or(u64::MAX),
            spill_bytes: Cell::new(0),
            spill_bytes_total: Cell::new(0),
            spill_dir: limits.spill_dir.clone(),
            depth: Cell::new(0),
            panic_at: Cell::new(limits.panic_after_ticks.unwrap_or(u64::MAX)),
        }));
        g.rearm();
        g
    }

    /// Recomputes the single hot-path threshold from the pending events.
    fn rearm(&self) {
        let g = &*self.0;
        let budget_trip = g.max_tuples.saturating_add(1);
        let next = g
            .next_time_check
            .get()
            .min(budget_trip)
            .min(g.panic_at.get());
        g.next_event.set(next);
    }

    /// One unit of tuple work: increments the cardinality counter and,
    /// when the precomputed event threshold is reached, runs the slow path
    /// (budget check, clock/cancel consultation every `TIME_CHECK_MASK+1`
    /// ticks, fault injection). The common case is one `Cell` increment
    /// and one compare.
    #[inline]
    pub fn tick(&self) -> crate::Result<()> {
        let g = &*self.0;
        let n = g.tuples.get() + 1;
        g.tuples.set(n);
        if n >= g.next_event.get() {
            self.slow_tick(n)?;
        }
        Ok(())
    }

    /// Charges `n` units of tuple work at once (bulk operator loops charge
    /// before allocating their output, so an exploding `Product` trips the
    /// budget before the allocation is attempted).
    #[inline]
    pub fn charge_tuples(&self, n: u64) -> crate::Result<()> {
        let g = &*self.0;
        let total = g.tuples.get().saturating_add(n);
        g.tuples.set(total);
        if total >= g.next_event.get() {
            self.slow_tick(total)?;
        }
        Ok(())
    }

    /// The amortized event path: runs only when the tick counter crosses
    /// `next_event`, so its cost is spread over at least
    /// `TIME_CHECK_MASK + 1` units of tuple work.
    #[inline(never)]
    fn slow_tick(&self, n: u64) -> crate::Result<()> {
        let g = &*self.0;
        if n > g.max_tuples {
            return Err(self.trip_tuples());
        }
        let panic_at = g.panic_at.get();
        if n >= panic_at {
            g.panic_at.set(u64::MAX);
            self.rearm();
            panic!("governor fault injection: panic_after_ticks={panic_at} reached");
        }
        if n >= g.next_time_check.get() {
            g.next_time_check.set(n + TIME_CHECK_MASK + 1);
            self.rearm();
            self.check_time()?;
        }
        Ok(())
    }

    /// Charges approximate bytes of materialized state. With spilling
    /// enabled (the default), crossing the soft watermark flips the
    /// governor into spill mode and the charge always succeeds — the byte
    /// budget becomes advisory and enforcement moves to the disk budget.
    /// With spilling disabled, exceeding `max_bytes` trips `XQRG0004`.
    #[inline]
    pub fn charge_bytes(&self, n: u64) -> crate::Result<()> {
        let g = &*self.0;
        let total = g.bytes.get().saturating_add(n);
        g.bytes.set(total);
        if total > g.peak_bytes.get() {
            g.peak_bytes.set(total);
        }
        if total >= g.spill_watermark.get() {
            // One-time flip; the watermark cell is re-used as the "already
            // flipped" latch so the hot path stays a single compare.
            g.spill_watermark.set(u64::MAX);
            g.spill_mode.set(true);
            metrics().record_query_spilled();
        }
        if total > g.max_bytes && !g.spill_enabled {
            return Err(XmlError::new(
                ERR_BYTES,
                format!(
                    "memory budget exceeded: ~{total} bytes of materialized state \
                     (limit {})",
                    g.max_bytes
                ),
            ));
        }
        Ok(())
    }

    /// Returns bytes of materialized state that have been freed (a join
    /// build dropped, a partition flushed to disk). Live accounting: the
    /// budget meters what is held *now*, not the cumulative total — the
    /// peak is kept separately for profiling. Releasing does not unflip
    /// spill mode (the flip is sticky by design: a query that crossed the
    /// watermark once is assumed to be at risk of doing it again).
    #[inline]
    pub fn release_bytes(&self, n: u64) {
        let g = &*self.0;
        g.bytes.set(g.bytes.get().saturating_sub(n));
    }

    /// Charges bytes written to a spill file against the disk budget
    /// (`XQRG0006` on exhaustion).
    pub fn charge_spill_bytes(&self, n: u64) -> crate::Result<()> {
        let g = &*self.0;
        let total = g.spill_bytes.get().saturating_add(n);
        g.spill_bytes.set(total);
        g.spill_bytes_total
            .set(g.spill_bytes_total.get().saturating_add(n));
        if total > g.max_spill_bytes {
            return Err(XmlError::new(
                ERR_SPILL_BUDGET,
                format!(
                    "spill disk budget exceeded: ~{total} bytes spilled (limit {})",
                    g.max_spill_bytes
                ),
            ));
        }
        Ok(())
    }

    /// Returns disk bytes freed when a spill file is deleted.
    pub fn release_spill_bytes(&self, n: u64) {
        let g = &*self.0;
        g.spill_bytes.set(g.spill_bytes.get().saturating_sub(n));
    }

    /// Should spill-capable operators run their out-of-core variant? True
    /// once the soft watermark has been crossed (sticky for the run).
    #[inline]
    pub fn should_spill(&self) -> bool {
        self.0.spill_mode.get()
    }

    /// Forces spill mode on (tests and the forced-spill CI run).
    pub fn force_spill_mode(&self) {
        let g = &*self.0;
        if !g.spill_mode.get() && g.spill_enabled {
            g.spill_watermark.set(u64::MAX);
            g.spill_mode.set(true);
            metrics().record_query_spilled();
        }
    }

    /// Is spilling allowed by the limits at all?
    pub fn spill_enabled(&self) -> bool {
        self.0.spill_enabled
    }

    /// Did this run ever enter spill mode? (Engine trace/fallback notes.)
    pub fn spilled(&self) -> bool {
        self.0.spill_mode.get()
    }

    /// Configured parent directory for spill files, if any.
    pub fn spill_dir(&self) -> Option<&PathBuf> {
        self.0.spill_dir.as_ref()
    }

    /// High-water mark of live materialized bytes (profiling).
    pub fn peak_bytes(&self) -> u64 {
        self.0.peak_bytes.get()
    }

    /// Live bytes currently held in spill files.
    pub fn spill_bytes_used(&self) -> u64 {
        self.0.spill_bytes.get()
    }

    /// Total bytes ever written to spill files this run.
    pub fn spill_bytes_total(&self) -> u64 {
        self.0.spill_bytes_total.get()
    }

    /// Time left until the wall-clock deadline (`None` when no deadline is
    /// configured; zero once it has passed). Retry backoff and admission
    /// queues consult this so waiting never overshoots the budget.
    pub fn remaining_deadline(&self) -> Option<Duration> {
        self.0
            .deadline
            .map(|dl| dl.saturating_duration_since(Instant::now()))
    }

    /// Forces a clock/cancel check regardless of the tick phase. Cheap
    /// enough for per-element use in the document parser. Each check also
    /// bumps the token's liveness counter ([`CancellationToken::progress`])
    /// so an external watchdog can distinguish "slow but alive" from
    /// "stuck outside the governor's reach".
    pub fn check_time(&self) -> crate::Result<()> {
        let g = &*self.0;
        g.token.mark_progress();
        if g.token.is_cancelled() {
            return Err(XmlError::new(ERR_CANCELLED, "execution cancelled"));
        }
        if let Some(dl) = g.deadline {
            if Instant::now() > dl {
                return Err(XmlError::new(ERR_DEADLINE, "wall-clock deadline exceeded"));
            }
        }
        Ok(())
    }

    /// Enters a user-function frame; the single recursion-depth authority
    /// for both the plan evaluator and the Core interpreter.
    pub fn enter_frame(&self) -> crate::Result<()> {
        let g = &*self.0;
        let d = g.depth.get() + 1;
        if d > g.max_depth {
            return Err(XmlError::new(
                ERR_RECURSION,
                "function recursion limit exceeded",
            ));
        }
        g.depth.set(d);
        Ok(())
    }

    pub fn exit_frame(&self) {
        let g = &*self.0;
        g.depth.set(g.depth.get().saturating_sub(1));
    }

    /// Disarms test-only fault injection (used by the engine before a
    /// graceful-degradation retry).
    pub fn disarm_fault_injection(&self) {
        self.0.panic_at.set(u64::MAX);
        self.rearm();
    }

    /// Tuple-work units consumed so far (diagnostics / tests).
    pub fn tuples_used(&self) -> u64 {
        self.0.tuples.get()
    }

    /// The tuple-work counter doubling as the observability layer's
    /// sampling clock: the profiler samples `Instant::now()` only when
    /// this counter crosses a subsampling phase, so a profiled hot loop
    /// pays one extra compare per tuple and no syscalls (see
    /// `xqr-runtime`'s `profile` module). Reusing the governor counter
    /// means profiling adds no second per-tuple increment.
    #[inline]
    pub fn sampling_clock(&self) -> u64 {
        self.0.tuples.get()
    }

    /// Approximate bytes charged so far (diagnostics / tests).
    pub fn bytes_used(&self) -> u64 {
        self.0.bytes.get()
    }

    /// Is a byte budget configured at all? Callers use this to skip the
    /// O(table) footprint estimate when nobody is counting.
    #[inline]
    pub fn has_byte_budget(&self) -> bool {
        self.0.max_bytes != u64::MAX
    }

    /// The configured byte budget (spill operators size their in-memory
    /// working sets — sort runs, join partitions — from it).
    pub fn max_bytes(&self) -> Option<u64> {
        if self.0.max_bytes == u64::MAX {
            None
        } else {
            Some(self.0.max_bytes)
        }
    }

    pub fn token(&self) -> &CancellationToken {
        &self.0.token
    }

    #[cold]
    fn trip_tuples(&self) -> XmlError {
        XmlError::new(
            ERR_TUPLES,
            format!(
                "cardinality budget exceeded: more than {} tuple operations",
                self.0.max_tuples
            ),
        )
    }
}

/// A scoped byte charge against the governor's live-byte accounting: bytes
/// added through [`ByteCharge::add`] are released when the guard drops —
/// on every exit path, including errors and unwinds — so a join build or
/// materialized cursor stops counting against the budget the moment it is
/// freed. Call [`ByteCharge::leak`] to keep the bytes charged past the
/// guard's lifetime (the caller then owns the release).
pub struct ByteCharge {
    gov: Governor,
    n: u64,
}

impl ByteCharge {
    pub fn new(gov: &Governor) -> ByteCharge {
        ByteCharge {
            gov: gov.clone(),
            n: 0,
        }
    }

    /// Charges `n` more bytes, remembered for release on drop.
    pub fn add(&mut self, n: u64) -> crate::Result<()> {
        self.n += n;
        self.gov.charge_bytes(n)
    }

    /// Bytes currently held by this guard.
    pub fn amount(&self) -> u64 {
        self.n
    }

    /// Forgets the held bytes without releasing them: the charge becomes
    /// permanent for the run (pre-live-accounting behavior, used where the
    /// charged state genuinely stays alive to the end of the query).
    pub fn leak(mut self) {
        self.n = 0;
    }
}

impl Drop for ByteCharge {
    fn drop(&mut self) {
        if self.n > 0 {
            self.gov.release_bytes(self.n);
        }
    }
}

/// Is this error one of the governor's budget codes? (The engine boundary
/// uses this to classify `Dynamic` vs `LimitExceeded`.)
pub fn is_limit_code(code: &str) -> bool {
    matches!(
        code,
        ERR_DEADLINE
            | ERR_CANCELLED
            | ERR_TUPLES
            | ERR_BYTES
            | ERR_SPILL_IO
            | ERR_SPILL_BUDGET
            | ERR_OVERLOADED
            | ERR_BREAKER
            | ERR_TENANT
            | ERR_RECURSION
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_never_trips_on_work() {
        let g = Governor::unlimited();
        for _ in 0..10_000 {
            g.tick().unwrap();
        }
        g.charge_bytes(u64::MAX / 2).unwrap();
        assert_eq!(g.tuples_used(), 10_000);
    }

    #[test]
    fn tuple_budget_trips_exactly() {
        let g = Governor::new(
            &Limits::default().with_max_tuples(10),
            CancellationToken::new(),
        );
        for _ in 0..10 {
            g.tick().unwrap();
        }
        assert_eq!(g.tick().unwrap_err().code, ERR_TUPLES);
    }

    #[test]
    fn byte_budget_trips_when_spill_disabled() {
        let g = Governor::new(
            &Limits::default().with_max_bytes(1000).with_spill(None),
            CancellationToken::new(),
        );
        g.charge_bytes(600).unwrap();
        assert_eq!(g.charge_bytes(600).unwrap_err().code, ERR_BYTES);
    }

    #[test]
    fn byte_budget_degrades_to_spill_mode_by_default() {
        let g = Governor::new(
            &Limits::default().with_max_bytes(1000),
            CancellationToken::new(),
        );
        assert!(!g.should_spill());
        g.charge_bytes(600).unwrap();
        assert!(!g.should_spill());
        // Crossing 80% of 1000 flips spill mode; the hard limit no longer
        // trips because the operators are expected to shed state to disk.
        g.charge_bytes(600).unwrap();
        assert!(g.should_spill());
        g.charge_bytes(10_000).unwrap();
        assert!(g.spilled());
    }

    #[test]
    fn release_restores_live_bytes_but_keeps_peak_and_spill_mode() {
        let g = Governor::new(
            &Limits::default().with_max_bytes(1000),
            CancellationToken::new(),
        );
        g.charge_bytes(900).unwrap();
        assert!(g.should_spill());
        g.release_bytes(900);
        assert_eq!(g.bytes_used(), 0);
        assert_eq!(g.peak_bytes(), 900);
        assert!(g.should_spill(), "spill flip is sticky");
    }

    #[test]
    fn release_lets_sequential_state_fit_when_spill_disabled() {
        // The live-accounting fix: two 600-byte builds that never coexist
        // fit a 1000-byte budget once the first is released.
        let g = Governor::new(
            &Limits::default().with_max_bytes(1000).with_spill(None),
            CancellationToken::new(),
        );
        g.charge_bytes(600).unwrap();
        g.release_bytes(600);
        g.charge_bytes(600).unwrap();
        assert_eq!(g.peak_bytes(), 600);
    }

    #[test]
    fn byte_charge_guard_releases_on_drop() {
        let g = Governor::new(
            &Limits::default().with_max_bytes(1000).with_spill(None),
            CancellationToken::new(),
        );
        {
            let mut c = ByteCharge::new(&g);
            c.add(700).unwrap();
            assert_eq!(g.bytes_used(), 700);
        }
        assert_eq!(g.bytes_used(), 0);
        let mut c = ByteCharge::new(&g);
        c.add(500).unwrap();
        c.leak();
        assert_eq!(g.bytes_used(), 500, "leaked charge stays");
    }

    #[test]
    fn spill_disk_budget_trips() {
        let g = Governor::new(
            &Limits::default().with_max_bytes(100).with_spill(Some(1000)),
            CancellationToken::new(),
        );
        g.charge_spill_bytes(800).unwrap();
        assert_eq!(
            g.charge_spill_bytes(800).unwrap_err().code,
            ERR_SPILL_BUDGET
        );
        g.release_spill_bytes(1600);
        assert_eq!(g.spill_bytes_used(), 0);
        assert_eq!(g.spill_bytes_total(), 1600);
    }

    #[test]
    fn force_spill_mode_respects_disablement() {
        let g = Governor::new(
            &Limits::default().with_spill(None),
            CancellationToken::new(),
        );
        g.force_spill_mode();
        assert!(!g.should_spill());
        let g2 = Governor::unlimited();
        g2.force_spill_mode();
        assert!(g2.should_spill());
    }

    #[test]
    fn deadline_trips_via_tick() {
        let g = Governor::new(
            &Limits::default().with_deadline(Duration::from_millis(0)),
            CancellationToken::new(),
        );
        std::thread::sleep(Duration::from_millis(2));
        let mut tripped = None;
        for _ in 0..=TIME_CHECK_MASK + 1 {
            if let Err(e) = g.tick() {
                tripped = Some(e);
                break;
            }
        }
        assert_eq!(tripped.expect("deadline observed").code, ERR_DEADLINE);
    }

    #[test]
    fn cancellation_crosses_threads() {
        let g = Governor::new(&Limits::default(), CancellationToken::new());
        let token = g.token().clone();
        std::thread::spawn(move || token.cancel()).join().unwrap();
        assert_eq!(g.check_time().unwrap_err().code, ERR_CANCELLED);
    }

    #[test]
    fn recursion_depth_is_tracked_here() {
        let g = Governor::new(
            &Limits::default().with_max_recursion_depth(2),
            CancellationToken::new(),
        );
        g.enter_frame().unwrap();
        g.enter_frame().unwrap();
        assert_eq!(g.enter_frame().unwrap_err().code, ERR_RECURSION);
        g.exit_frame();
        g.exit_frame();
        g.enter_frame().unwrap();
    }

    #[test]
    fn clones_share_counters() {
        let g = Governor::new(
            &Limits::default().with_max_tuples(5),
            CancellationToken::new(),
        );
        let g2 = g.clone();
        for _ in 0..5 {
            g.tick().unwrap();
        }
        assert_eq!(g2.tick().unwrap_err().code, ERR_TUPLES);
    }
}
