//! # xqr-xml — the XQuery Data Model substrate
//!
//! This crate implements, from scratch, everything the algebraic XQuery
//! compiler (crates `xqr-core` / `xqr-runtime`) needs from the XQuery 1.0
//! data model (XDM):
//!
//! * [`QName`] — expanded names with namespace URIs;
//! * [`AtomicValue`] / [`AtomicType`] — all 19 primitive XML Schema atomic
//!   types plus `xs:integer` and `xdt:untypedAtomic`, with a fixed-point
//!   [`Decimal`], calendar types and durations implemented here;
//! * [`Document`] / [`NodeHandle`] — an arena-backed node store with node
//!   identity and **global document order** (every document draws a
//!   monotonically increasing sequence number, node ids are assigned in
//!   document order);
//! * [`Item`] / [`Sequence`] — ordered, flattened item sequences, the value
//!   domain of the logical algebra's XML side;
//! * [`axes`] — the twelve XPath axes with name and kind tests (the engine
//!   of the `TreeJoin` operator);
//! * [`parse`] / [`serialize`] — an XML 1.0 parser and serializer.

pub mod atomic;
pub mod axes;
pub mod build;
pub mod decimal;
pub mod failpoint;
pub mod item;
pub mod limits;
pub mod metrics;
pub mod node;
pub mod parse;
pub mod qname;
pub mod retry;
pub mod serialize;
pub mod temporal;

pub use atomic::{AtomicType, AtomicValue};
pub use axes::{Axis, KindTest, NameTest, NodeTest};
pub use build::TreeBuilder;
pub use decimal::Decimal;
pub use item::{Item, Sequence, SequenceBuilder};
pub use limits::{ByteCharge, CancellationToken, Governor, Limits};
pub use metrics::{metrics, MetricsRegistry, MetricsSnapshot};
pub use node::{Document, NodeHandle, NodeId, NodeKind};
pub use parse::{parse_document, ParseError, ParseOptions};
pub use qname::QName;
pub use retry::{retry_transient, RetryError, RetryPolicy};
pub use serialize::serialize_sequence;
pub use temporal::{Date, DateTime, Duration, Time};

/// Errors raised by data-model operations (casts, parses, navigation).
#[derive(Debug, Clone, PartialEq)]
pub struct XmlError {
    /// An error code in the spirit of the XQuery `err:` codes (e.g. `FORG0001`).
    pub code: &'static str,
    pub message: String,
}

impl XmlError {
    pub fn new(code: &'static str, message: impl Into<String>) -> Self {
        XmlError {
            code,
            message: message.into(),
        }
    }
}

impl std::fmt::Display for XmlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] {}", self.code, self.message)
    }
}

impl std::error::Error for XmlError {}

pub type Result<T> = std::result::Result<T, XmlError>;
