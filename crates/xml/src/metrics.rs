//! Process-wide engine metrics registry.
//!
//! A single static registry of counters and histograms covering the whole
//! engine: queries run and failed (per error code, including the governor's
//! `XQRG*` limit codes), strategy fallbacks taken, structural-index and
//! postings builds, documents parsed, and a log2 histogram of query wall
//! times. Everything is lock-free atomics except the per-error-code map,
//! which sits behind a mutex on the (cold) error path.
//!
//! The registry is deliberately placed in the lowest crate of the
//! workspace so both the node store (`node.rs` index builds) and the
//! public engine facade can record into the same instance. Recording is a
//! relaxed atomic increment — cheap enough to stay on unconditionally —
//! and reads take a [`MetricsSnapshot`], so dumps never observe a torn
//! multi-counter state worse than individual-counter skew.
//!
//! Counters are monotone for the life of the process; tests must assert
//! *deltas* between two snapshots, never absolute values, because the test
//! harness runs many queries in one process (and in parallel threads).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

/// Number of log2 duration buckets: bucket `i` counts queries whose wall
/// time in microseconds satisfies `floor(log2(max(us, 1))) == i`, with the
/// final bucket absorbing everything longer (~ 36 minutes and up).
pub const DURATION_BUCKETS: usize = 32;

// ===== log-linear latency histogram ========================================

/// Linear sub-buckets per power-of-two octave (HDR-style): 16 sub-buckets
/// bound the relative quantile error at 1/16 ≈ 6.25%.
pub const HIST_SUB_BITS: u32 = 4;
const HIST_SUB: usize = 1 << HIST_SUB_BITS;
/// Largest exponent tracked exactly; values at or above 2^46 ns (~19.5 h)
/// saturate into the top bucket.
const HIST_MAX_EXP: u32 = 45;
/// Total buckets of a [`LatencyHistogram`].
pub const HIST_BUCKETS: usize = ((HIST_MAX_EXP - HIST_SUB_BITS + 2) as usize) << HIST_SUB_BITS;

/// Bucket index for a nanosecond value: exact below 2^`HIST_SUB_BITS`,
/// log-linear above (the octave selects a block of [`HIST_SUB`] linear
/// sub-buckets).
fn hist_index(nanos: u64) -> usize {
    let v = nanos.min((1 << (HIST_MAX_EXP + 1)) - 1);
    let e = 63 - (v | 1).leading_zeros();
    if e < HIST_SUB_BITS {
        v as usize
    } else {
        let sub = (v >> (e - HIST_SUB_BITS)) as usize & (HIST_SUB - 1);
        (((e - HIST_SUB_BITS + 1) as usize) << HIST_SUB_BITS) + sub
    }
}

/// Inclusive lower bound of bucket `i` (nanoseconds).
fn hist_lower(i: usize) -> u64 {
    let block = i >> HIST_SUB_BITS;
    if block < 2 {
        i as u64
    } else {
        let e = block as u32 + HIST_SUB_BITS - 1;
        (1u64 << e) + (((i & (HIST_SUB - 1)) as u64) << (e - HIST_SUB_BITS))
    }
}

/// A thread-safe log-linear (HDR-style) latency histogram. Recording is
/// three relaxed atomic adds plus one `fetch_max` — cheap enough to stay
/// on the per-query service path unconditionally. Quantiles are estimated
/// from a [`HistogramSnapshot`] with ≤ 2^-`HIST_SUB_BITS` relative error.
pub struct LatencyHistogram {
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
    buckets: Box<[AtomicU64]>,
}

impl Default for LatencyHistogram {
    fn default() -> LatencyHistogram {
        LatencyHistogram::new()
    }
}

impl LatencyHistogram {
    pub fn new() -> LatencyHistogram {
        LatencyHistogram {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
            buckets: (0..HIST_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// Records one observation (nanoseconds).
    pub fn record(&self, nanos: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(nanos, Ordering::Relaxed);
        self.max.fetch_max(nanos, Ordering::Relaxed);
        self.buckets[hist_index(nanos)].fetch_add(1, Ordering::Relaxed);
    }

    /// A point-in-time copy. Concurrent recording can skew `count` against
    /// the bucket sum by in-flight increments, never backwards.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
        }
    }
}

/// Frozen histogram state with quantile estimation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    pub count: u64,
    pub sum: u64,
    pub max: u64,
    pub buckets: Vec<u64>,
}

impl HistogramSnapshot {
    /// Estimated value at quantile `q` in [0, 1] (nanoseconds): linear
    /// interpolation inside the covering log-linear bucket, clamped to
    /// the observed maximum. 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        let total: u64 = self.buckets.iter().sum();
        if total == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).clamp(1, total);
        let mut cum = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            if cum + n >= rank {
                let lo = hist_lower(i);
                let hi = if i + 1 < HIST_BUCKETS {
                    hist_lower(i + 1)
                } else {
                    self.max.max(lo + 1)
                };
                let frac = (rank - cum) as f64 / n as f64;
                let est = lo as f64 + (hi - lo) as f64 * frac;
                return (est as u64).min(self.max.max(lo));
            }
            cum += n;
        }
        self.max
    }

    /// Mean observation (nanoseconds), 0 when empty.
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }
}

/// Why the service admission controller refused a submission. Each reason
/// is counted separately (plus the `service_shed` aggregate) so an
/// operator can tell queue collapse from reservation misconfiguration
/// from deadline-infeasible work.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ShedReason {
    /// The bounded admission queue was full.
    QueueFull,
    /// The memory reservation can never fit the service budget.
    Reservation,
    /// The EWMA queue-wait estimate exceeded the query's deadline.
    Deadline,
    /// The service was shutting down.
    Shutdown,
}

impl ShedReason {
    pub fn label(self) -> &'static str {
        match self {
            ShedReason::QueueFull => "queue-full",
            ShedReason::Reservation => "unservable-reservation",
            ShedReason::Deadline => "ewma-deadline",
            ShedReason::Shutdown => "shutdown",
        }
    }
}

/// The process-wide registry. Obtain it with [`metrics`].
pub struct MetricsRegistry {
    queries_started: AtomicU64,
    queries_ok: AtomicU64,
    queries_failed: AtomicU64,
    fallbacks_taken: AtomicU64,
    queries_spilled: AtomicU64,
    spill_io_retries: AtomicU64,
    transient_retries: AtomicU64,
    failpoint_trips: AtomicU64,
    service_admitted: AtomicU64,
    service_shed: AtomicU64,
    service_shed_queue_full: AtomicU64,
    service_shed_reservation: AtomicU64,
    service_shed_deadline: AtomicU64,
    service_shed_shutdown: AtomicU64,
    breaker_trips: AtomicU64,
    breaker_fast_fails: AtomicU64,
    doc_cache_hits: AtomicU64,
    doc_cache_misses: AtomicU64,
    doc_cache_evictions: AtomicU64,
    plan_cache_hits: AtomicU64,
    plan_cache_misses: AtomicU64,
    plan_cache_evictions: AtomicU64,
    plan_cache_rehydrations: AtomicU64,
    server_connections: AtomicU64,
    server_requests: AtomicU64,
    server_conn_kills: AtomicU64,
    watchdog_escalations: AtomicU64,
    tenant_rejections: AtomicU64,
    /// Gauge, not a counter: the number of requests queued in query
    /// services right now (incremented on enqueue, decremented on
    /// dispatch/drain).
    service_queue_depth: AtomicU64,
    struct_index_builds: AtomicU64,
    postings_builds: AtomicU64,
    postings_entries: AtomicU64,
    documents_parsed: AtomicU64,
    query_nanos_total: AtomicU64,
    duration_buckets: [AtomicU64; DURATION_BUCKETS],
    /// Error-code → count. String-keyed (codes arrive as `&str` of mixed
    /// provenance) and mutex-guarded: the error path is cold.
    error_codes: Mutex<BTreeMap<String, u64>>,
}

/// The process-wide registry instance.
pub fn metrics() -> &'static MetricsRegistry {
    static REGISTRY: OnceLock<MetricsRegistry> = OnceLock::new();
    REGISTRY.get_or_init(|| MetricsRegistry {
        queries_started: AtomicU64::new(0),
        queries_ok: AtomicU64::new(0),
        queries_failed: AtomicU64::new(0),
        fallbacks_taken: AtomicU64::new(0),
        queries_spilled: AtomicU64::new(0),
        spill_io_retries: AtomicU64::new(0),
        transient_retries: AtomicU64::new(0),
        failpoint_trips: AtomicU64::new(0),
        service_admitted: AtomicU64::new(0),
        service_shed: AtomicU64::new(0),
        service_shed_queue_full: AtomicU64::new(0),
        service_shed_reservation: AtomicU64::new(0),
        service_shed_deadline: AtomicU64::new(0),
        service_shed_shutdown: AtomicU64::new(0),
        breaker_trips: AtomicU64::new(0),
        breaker_fast_fails: AtomicU64::new(0),
        doc_cache_hits: AtomicU64::new(0),
        doc_cache_misses: AtomicU64::new(0),
        doc_cache_evictions: AtomicU64::new(0),
        plan_cache_hits: AtomicU64::new(0),
        plan_cache_misses: AtomicU64::new(0),
        plan_cache_evictions: AtomicU64::new(0),
        plan_cache_rehydrations: AtomicU64::new(0),
        server_connections: AtomicU64::new(0),
        server_requests: AtomicU64::new(0),
        server_conn_kills: AtomicU64::new(0),
        watchdog_escalations: AtomicU64::new(0),
        tenant_rejections: AtomicU64::new(0),
        service_queue_depth: AtomicU64::new(0),
        struct_index_builds: AtomicU64::new(0),
        postings_builds: AtomicU64::new(0),
        postings_entries: AtomicU64::new(0),
        documents_parsed: AtomicU64::new(0),
        query_nanos_total: AtomicU64::new(0),
        duration_buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        error_codes: Mutex::new(BTreeMap::new()),
    })
}

fn bucket_of(nanos: u64) -> usize {
    let us = (nanos / 1_000).max(1);
    (63 - us.leading_zeros() as usize).min(DURATION_BUCKETS - 1)
}

impl MetricsRegistry {
    pub fn record_query_start(&self) {
        self.queries_started.fetch_add(1, Ordering::Relaxed);
    }

    pub fn record_query_ok(&self, wall_nanos: u64) {
        self.queries_ok.fetch_add(1, Ordering::Relaxed);
        self.query_nanos_total
            .fetch_add(wall_nanos, Ordering::Relaxed);
        self.duration_buckets[bucket_of(wall_nanos)].fetch_add(1, Ordering::Relaxed);
    }

    /// Records a failed query. `code` is the stable error code when one
    /// applies (e.g. `XQRG0003`); codeless failures count under
    /// `"internal"` / `"syntax"` supplied by the caller.
    pub fn record_query_error(&self, code: &str) {
        self.queries_failed.fetch_add(1, Ordering::Relaxed);
        let mut m = self.error_codes.lock().unwrap_or_else(|p| p.into_inner());
        *m.entry(code.to_string()).or_insert(0) += 1;
    }

    /// A pipelined run failed and was retried under the materialized
    /// strategy.
    pub fn record_fallback(&self) {
        self.fallbacks_taken.fetch_add(1, Ordering::Relaxed);
    }

    /// A query crossed the governor's soft memory watermark and entered
    /// spill mode (recorded once per run, at the flip).
    pub fn record_query_spilled(&self) {
        self.queries_spilled.fetch_add(1, Ordering::Relaxed);
    }

    /// A transient spill I/O failure was retried (one per retry attempt,
    /// not per eventual outcome).
    pub fn record_spill_io_retry(&self) {
        self.spill_io_retries.fetch_add(1, Ordering::Relaxed);
    }

    /// Any transient operation (spill I/O, document load) was retried
    /// through `xqr_xml::retry` (one per retry attempt).
    pub fn record_transient_retry(&self) {
        self.transient_retries.fetch_add(1, Ordering::Relaxed);
    }

    /// An armed failpoint fired (injected error, panic, or delay).
    pub fn record_failpoint_trip(&self) {
        self.failpoint_trips.fetch_add(1, Ordering::Relaxed);
    }

    /// The query service admitted a submission (queued or dispatched).
    pub fn record_service_admitted(&self) {
        self.service_admitted.fetch_add(1, Ordering::Relaxed);
    }

    /// The admission controller shed a submission (`XQRG0007`), counted
    /// both in the aggregate and under its [`ShedReason`].
    pub fn record_service_shed(&self, reason: ShedReason) {
        self.service_shed.fetch_add(1, Ordering::Relaxed);
        let per_reason = match reason {
            ShedReason::QueueFull => &self.service_shed_queue_full,
            ShedReason::Reservation => &self.service_shed_reservation,
            ShedReason::Deadline => &self.service_shed_deadline,
            ShedReason::Shutdown => &self.service_shed_shutdown,
        };
        per_reason.fetch_add(1, Ordering::Relaxed);
    }

    /// A per-shape circuit breaker transitioned closed → open.
    pub fn record_breaker_trip(&self) {
        self.breaker_trips.fetch_add(1, Ordering::Relaxed);
    }

    /// An open circuit breaker fast-failed a submission (`XQRG0008`).
    pub fn record_breaker_fast_fail(&self) {
        self.breaker_fast_fails.fetch_add(1, Ordering::Relaxed);
    }

    /// Shared document-text cache hit (raw bytes served without a reload).
    pub fn record_doc_cache_hit(&self) {
        self.doc_cache_hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Shared document-text cache miss (loader invoked).
    pub fn record_doc_cache_miss(&self) {
        self.doc_cache_misses.fetch_add(1, Ordering::Relaxed);
    }

    /// A cached document text was evicted to fit the cache byte budget.
    pub fn record_doc_cache_eviction(&self) {
        self.doc_cache_evictions.fetch_add(1, Ordering::Relaxed);
    }

    /// Plan cache hit: a prepared plan was served without recompiling.
    pub fn record_plan_cache_hit(&self) {
        self.plan_cache_hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Plan cache miss: the full compilation pipeline ran for a shape not
    /// seen before (by this engine, or — in a service — by any worker).
    pub fn record_plan_cache_miss(&self) {
        self.plan_cache_misses.fetch_add(1, Ordering::Relaxed);
    }

    /// A cached plan was evicted to fit the cache entry/byte budget.
    pub fn record_plan_cache_eviction(&self) {
        self.plan_cache_evictions.fetch_add(1, Ordering::Relaxed);
    }

    /// A service worker recompiled a shape already known to the shared
    /// registry into its private `Rc`-based cache (plans cannot cross
    /// threads; only the canonical hash does).
    pub fn record_plan_cache_rehydration(&self) {
        self.plan_cache_rehydrations.fetch_add(1, Ordering::Relaxed);
    }

    /// The network frontend accepted a client connection.
    pub fn record_server_connection(&self) {
        self.server_connections.fetch_add(1, Ordering::Relaxed);
    }

    /// The network frontend parsed one HTTP request (any route, any
    /// outcome).
    pub fn record_server_request(&self) {
        self.server_requests.fetch_add(1, Ordering::Relaxed);
    }

    /// A connection was killed defensively: slow-loris header dribble,
    /// an oversized head/body, an idle or I/O deadline, or an
    /// over-capacity accept.
    pub fn record_server_conn_kill(&self) {
        self.server_conn_kills.fetch_add(1, Ordering::Relaxed);
    }

    /// The stuck-query watchdog cancelled a query that ran past its
    /// deadline without governor progress.
    pub fn record_watchdog_escalation(&self) {
        self.watchdog_escalations.fetch_add(1, Ordering::Relaxed);
    }

    /// A per-tenant session quota refused a request (`XQRG0009`).
    pub fn record_tenant_rejection(&self) {
        self.tenant_rejections.fetch_add(1, Ordering::Relaxed);
    }

    /// A request entered a service queue (gauge increment).
    pub fn record_queue_enter(&self) {
        self.service_queue_depth.fetch_add(1, Ordering::Relaxed);
    }

    /// A request left a service queue by dispatch or drain (gauge
    /// decrement; saturates at zero defensively).
    pub fn record_queue_leave(&self) {
        let _ = self
            .service_queue_depth
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
                Some(v.saturating_sub(1))
            });
    }

    /// A per-document structural index was derived (node.rs, first
    /// structural access).
    pub fn record_struct_index_build(&self) {
        self.struct_index_builds.fetch_add(1, Ordering::Relaxed);
    }

    /// Per-name postings lists were built for a document; `entries` is the
    /// total number of element ids across all lists.
    pub fn record_postings_build(&self, entries: u64) {
        self.postings_builds.fetch_add(1, Ordering::Relaxed);
        self.postings_entries.fetch_add(entries, Ordering::Relaxed);
    }

    pub fn record_document_parsed(&self) {
        self.documents_parsed.fetch_add(1, Ordering::Relaxed);
    }

    /// A point-in-time copy of every counter.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            queries_started: self.queries_started.load(Ordering::Relaxed),
            queries_ok: self.queries_ok.load(Ordering::Relaxed),
            queries_failed: self.queries_failed.load(Ordering::Relaxed),
            fallbacks_taken: self.fallbacks_taken.load(Ordering::Relaxed),
            queries_spilled: self.queries_spilled.load(Ordering::Relaxed),
            spill_io_retries: self.spill_io_retries.load(Ordering::Relaxed),
            transient_retries: self.transient_retries.load(Ordering::Relaxed),
            failpoint_trips: self.failpoint_trips.load(Ordering::Relaxed),
            service_admitted: self.service_admitted.load(Ordering::Relaxed),
            service_shed: self.service_shed.load(Ordering::Relaxed),
            service_shed_queue_full: self.service_shed_queue_full.load(Ordering::Relaxed),
            service_shed_reservation: self.service_shed_reservation.load(Ordering::Relaxed),
            service_shed_deadline: self.service_shed_deadline.load(Ordering::Relaxed),
            service_shed_shutdown: self.service_shed_shutdown.load(Ordering::Relaxed),
            breaker_trips: self.breaker_trips.load(Ordering::Relaxed),
            breaker_fast_fails: self.breaker_fast_fails.load(Ordering::Relaxed),
            doc_cache_hits: self.doc_cache_hits.load(Ordering::Relaxed),
            doc_cache_misses: self.doc_cache_misses.load(Ordering::Relaxed),
            doc_cache_evictions: self.doc_cache_evictions.load(Ordering::Relaxed),
            plan_cache_hits: self.plan_cache_hits.load(Ordering::Relaxed),
            plan_cache_misses: self.plan_cache_misses.load(Ordering::Relaxed),
            plan_cache_evictions: self.plan_cache_evictions.load(Ordering::Relaxed),
            plan_cache_rehydrations: self.plan_cache_rehydrations.load(Ordering::Relaxed),
            server_connections: self.server_connections.load(Ordering::Relaxed),
            server_requests: self.server_requests.load(Ordering::Relaxed),
            server_conn_kills: self.server_conn_kills.load(Ordering::Relaxed),
            watchdog_escalations: self.watchdog_escalations.load(Ordering::Relaxed),
            tenant_rejections: self.tenant_rejections.load(Ordering::Relaxed),
            service_queue_depth: self.service_queue_depth.load(Ordering::Relaxed),
            struct_index_builds: self.struct_index_builds.load(Ordering::Relaxed),
            postings_builds: self.postings_builds.load(Ordering::Relaxed),
            postings_entries: self.postings_entries.load(Ordering::Relaxed),
            documents_parsed: self.documents_parsed.load(Ordering::Relaxed),
            query_nanos_total: self.query_nanos_total.load(Ordering::Relaxed),
            duration_buckets: std::array::from_fn(|i| {
                self.duration_buckets[i].load(Ordering::Relaxed)
            }),
            error_codes: self
                .error_codes
                .lock()
                .unwrap_or_else(|p| p.into_inner())
                .clone(),
        }
    }
}

/// A point-in-time copy of the registry, with text and JSON renderings.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MetricsSnapshot {
    pub queries_started: u64,
    pub queries_ok: u64,
    pub queries_failed: u64,
    pub fallbacks_taken: u64,
    pub queries_spilled: u64,
    pub spill_io_retries: u64,
    pub transient_retries: u64,
    pub failpoint_trips: u64,
    pub service_admitted: u64,
    pub service_shed: u64,
    pub service_shed_queue_full: u64,
    pub service_shed_reservation: u64,
    pub service_shed_deadline: u64,
    pub service_shed_shutdown: u64,
    pub breaker_trips: u64,
    pub breaker_fast_fails: u64,
    pub doc_cache_hits: u64,
    pub doc_cache_misses: u64,
    pub doc_cache_evictions: u64,
    pub plan_cache_hits: u64,
    pub plan_cache_misses: u64,
    pub plan_cache_evictions: u64,
    pub plan_cache_rehydrations: u64,
    pub server_connections: u64,
    pub server_requests: u64,
    pub server_conn_kills: u64,
    pub watchdog_escalations: u64,
    pub tenant_rejections: u64,
    /// Gauge: queued requests at snapshot time, not a monotone counter.
    pub service_queue_depth: u64,
    pub struct_index_builds: u64,
    pub postings_builds: u64,
    pub postings_entries: u64,
    pub documents_parsed: u64,
    pub query_nanos_total: u64,
    pub duration_buckets: [u64; DURATION_BUCKETS],
    pub error_codes: BTreeMap<String, u64>,
}

impl MetricsSnapshot {
    /// Count recorded under one error code.
    pub fn error_count(&self, code: &str) -> u64 {
        self.error_codes.get(code).copied().unwrap_or(0)
    }

    /// Human-readable dump, one metric per line.
    pub fn dump_text(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = writeln!(s, "queries_started       {}", self.queries_started);
        let _ = writeln!(s, "queries_ok            {}", self.queries_ok);
        let _ = writeln!(s, "queries_failed        {}", self.queries_failed);
        let _ = writeln!(s, "fallbacks_taken       {}", self.fallbacks_taken);
        let _ = writeln!(s, "queries_spilled       {}", self.queries_spilled);
        let _ = writeln!(s, "spill_io_retries      {}", self.spill_io_retries);
        let _ = writeln!(s, "transient_retries     {}", self.transient_retries);
        let _ = writeln!(s, "failpoint_trips       {}", self.failpoint_trips);
        let _ = writeln!(s, "service_admitted      {}", self.service_admitted);
        let _ = writeln!(s, "service_shed          {}", self.service_shed);
        let _ = writeln!(s, "  shed[queue-full]    {}", self.service_shed_queue_full);
        let _ = writeln!(s, "  shed[reservation]   {}", self.service_shed_reservation);
        let _ = writeln!(s, "  shed[ewma-deadline] {}", self.service_shed_deadline);
        let _ = writeln!(s, "  shed[shutdown]      {}", self.service_shed_shutdown);
        let _ = writeln!(s, "breaker_trips         {}", self.breaker_trips);
        let _ = writeln!(s, "breaker_fast_fails    {}", self.breaker_fast_fails);
        let _ = writeln!(s, "doc_cache_hits        {}", self.doc_cache_hits);
        let _ = writeln!(s, "doc_cache_misses      {}", self.doc_cache_misses);
        let _ = writeln!(s, "doc_cache_evictions   {}", self.doc_cache_evictions);
        let _ = writeln!(s, "plan_cache_hits       {}", self.plan_cache_hits);
        let _ = writeln!(s, "plan_cache_misses     {}", self.plan_cache_misses);
        let _ = writeln!(s, "plan_cache_evictions  {}", self.plan_cache_evictions);
        let _ = writeln!(s, "plan_cache_rehydrs    {}", self.plan_cache_rehydrations);
        let _ = writeln!(s, "server_connections    {}", self.server_connections);
        let _ = writeln!(s, "server_requests       {}", self.server_requests);
        let _ = writeln!(s, "server_conn_kills     {}", self.server_conn_kills);
        let _ = writeln!(s, "watchdog_escalations  {}", self.watchdog_escalations);
        let _ = writeln!(s, "tenant_rejections     {}", self.tenant_rejections);
        let _ = writeln!(s, "service_queue_depth   {}", self.service_queue_depth);
        let _ = writeln!(s, "struct_index_builds   {}", self.struct_index_builds);
        let _ = writeln!(s, "postings_builds       {}", self.postings_builds);
        let _ = writeln!(s, "postings_entries      {}", self.postings_entries);
        let _ = writeln!(s, "documents_parsed      {}", self.documents_parsed);
        let _ = writeln!(
            s,
            "query_time_total      {:.3} ms",
            self.query_nanos_total as f64 / 1e6
        );
        for (i, n) in self.duration_buckets.iter().enumerate() {
            if *n > 0 {
                let _ = writeln!(s, "query_time_us[2^{i:<2}]   {n}");
            }
        }
        for (code, n) in &self.error_codes {
            let _ = writeln!(s, "error[{code}]        {n}");
        }
        s
    }

    /// Machine-readable dump (hand-rolled JSON; the workspace carries no
    /// serialization dependency).
    pub fn dump_json(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::from("{");
        let _ = write!(
            s,
            "\"queries_started\":{},\"queries_ok\":{},\"queries_failed\":{},\
             \"fallbacks_taken\":{},\"queries_spilled\":{},\"spill_io_retries\":{},\
             \"transient_retries\":{},\"failpoint_trips\":{},\"service_admitted\":{},\
             \"service_shed\":{},\"service_shed_queue_full\":{},\
             \"service_shed_reservation\":{},\"service_shed_deadline\":{},\
             \"service_shed_shutdown\":{},\"breaker_trips\":{},\"breaker_fast_fails\":{},\
             \"doc_cache_hits\":{},\"doc_cache_misses\":{},\"doc_cache_evictions\":{},\
             \"plan_cache_hits\":{},\"plan_cache_misses\":{},\"plan_cache_evictions\":{},\
             \"plan_cache_rehydrations\":{},\"server_connections\":{},\"server_requests\":{},\
             \"server_conn_kills\":{},\"watchdog_escalations\":{},\"tenant_rejections\":{},\
             \"service_queue_depth\":{},\"struct_index_builds\":{},\"postings_builds\":{},\
             \"postings_entries\":{},\"documents_parsed\":{},\"query_nanos_total\":{}",
            self.queries_started,
            self.queries_ok,
            self.queries_failed,
            self.fallbacks_taken,
            self.queries_spilled,
            self.spill_io_retries,
            self.transient_retries,
            self.failpoint_trips,
            self.service_admitted,
            self.service_shed,
            self.service_shed_queue_full,
            self.service_shed_reservation,
            self.service_shed_deadline,
            self.service_shed_shutdown,
            self.breaker_trips,
            self.breaker_fast_fails,
            self.doc_cache_hits,
            self.doc_cache_misses,
            self.doc_cache_evictions,
            self.plan_cache_hits,
            self.plan_cache_misses,
            self.plan_cache_evictions,
            self.plan_cache_rehydrations,
            self.server_connections,
            self.server_requests,
            self.server_conn_kills,
            self.watchdog_escalations,
            self.tenant_rejections,
            self.service_queue_depth,
            self.struct_index_builds,
            self.postings_builds,
            self.postings_entries,
            self.documents_parsed,
            self.query_nanos_total
        );
        s.push_str(",\"duration_buckets_us_log2\":[");
        for (i, n) in self.duration_buckets.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(s, "{n}");
        }
        s.push_str("],\"error_codes\":{");
        for (i, (code, n)) in self.error_codes.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            // Codes are short alphanumerics; escape defensively anyway.
            let _ = write!(s, "\"{}\":{n}", json_escape(code));
        }
        s.push_str("}}");
        s
    }

    /// Prometheus text exposition (format 0.0.4) of the whole registry,
    /// including the log2 query-duration histogram in cumulative
    /// `_bucket{le=...}` form (bucket `i` covers wall times up to
    /// `2^(i+1)` µs) — the piece `dump_text` only showed as raw per-bucket
    /// counts.
    pub fn prometheus_text(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let counters: [(&str, u64); 29] = [
            ("queries_started", self.queries_started),
            ("queries_ok", self.queries_ok),
            ("queries_failed", self.queries_failed),
            ("fallbacks_taken", self.fallbacks_taken),
            ("queries_spilled", self.queries_spilled),
            ("spill_io_retries", self.spill_io_retries),
            ("transient_retries", self.transient_retries),
            ("failpoint_trips", self.failpoint_trips),
            ("service_admitted", self.service_admitted),
            ("service_shed", self.service_shed),
            ("breaker_trips", self.breaker_trips),
            ("breaker_fast_fails", self.breaker_fast_fails),
            ("doc_cache_hits", self.doc_cache_hits),
            ("doc_cache_misses", self.doc_cache_misses),
            ("doc_cache_evictions", self.doc_cache_evictions),
            ("plan_cache_hits", self.plan_cache_hits),
            ("plan_cache_misses", self.plan_cache_misses),
            ("plan_cache_evictions", self.plan_cache_evictions),
            ("plan_cache_rehydrations", self.plan_cache_rehydrations),
            ("server_connections", self.server_connections),
            ("server_requests", self.server_requests),
            ("server_conn_kills", self.server_conn_kills),
            ("watchdog_escalations", self.watchdog_escalations),
            ("tenant_rejections", self.tenant_rejections),
            ("struct_index_builds", self.struct_index_builds),
            ("postings_builds", self.postings_builds),
            ("postings_entries", self.postings_entries),
            ("documents_parsed", self.documents_parsed),
            ("query_nanos_total", self.query_nanos_total),
        ];
        for (name, v) in counters.iter() {
            let _ = writeln!(s, "# TYPE xqr_{name} counter\nxqr_{name} {v}");
        }
        let _ = writeln!(s, "# TYPE xqr_service_shed_reason counter");
        for (reason, v) in [
            ("queue-full", self.service_shed_queue_full),
            ("unservable-reservation", self.service_shed_reservation),
            ("ewma-deadline", self.service_shed_deadline),
            ("shutdown", self.service_shed_shutdown),
        ] {
            let _ = writeln!(s, "xqr_service_shed_reason{{reason=\"{reason}\"}} {v}");
        }
        let _ = writeln!(
            s,
            "# TYPE xqr_service_queue_depth gauge\nxqr_service_queue_depth {}",
            self.service_queue_depth
        );
        let _ = writeln!(s, "# TYPE xqr_queries_failed_by_code counter");
        for (code, n) in &self.error_codes {
            let _ = writeln!(s, "xqr_queries_failed_by_code{{code=\"{code}\"}} {n}");
        }
        // The log2 wall-time histogram, cumulative Prometheus form. The
        // `le` bound of bucket i is its exclusive upper edge, 2^(i+1) µs;
        // the final bucket is open-ended and doubles as `+Inf`.
        let _ = writeln!(s, "# TYPE xqr_query_duration_us histogram");
        let mut cum = 0u64;
        for (i, n) in self.duration_buckets.iter().enumerate() {
            cum += n;
            if i + 1 < DURATION_BUCKETS {
                let _ = writeln!(
                    s,
                    "xqr_query_duration_us_bucket{{le=\"{}\"}} {cum}",
                    1u64 << (i + 1)
                );
            } else {
                let _ = writeln!(s, "xqr_query_duration_us_bucket{{le=\"+Inf\"}} {cum}");
            }
        }
        let _ = writeln!(
            s,
            "xqr_query_duration_us_sum {}\nxqr_query_duration_us_count {cum}",
            self.query_nanos_total / 1_000
        );
        s
    }
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
pub fn json_escape(raw: &str) -> String {
    let mut out = String::with_capacity(raw.len());
    for c in raw.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_are_monotone_deltas() {
        let before = metrics().snapshot();
        metrics().record_query_start();
        metrics().record_query_ok(1_500_000); // 1.5 ms → bucket log2(1500)=10
        metrics().record_query_error("XQRG0003");
        metrics().record_fallback();
        metrics().record_query_spilled();
        metrics().record_spill_io_retry();
        metrics().record_failpoint_trip();
        metrics().record_struct_index_build();
        metrics().record_postings_build(42);
        let after = metrics().snapshot();
        assert!(after.queries_started >= before.queries_started + 1);
        assert!(after.queries_ok >= before.queries_ok + 1);
        assert!(after.queries_failed >= before.queries_failed + 1);
        assert!(after.fallbacks_taken >= before.fallbacks_taken + 1);
        assert!(after.queries_spilled >= before.queries_spilled + 1);
        assert!(after.spill_io_retries >= before.spill_io_retries + 1);
        assert!(after.failpoint_trips >= before.failpoint_trips + 1);
        assert!(after.struct_index_builds >= before.struct_index_builds + 1);
        assert!(after.postings_entries >= before.postings_entries + 42);
        assert!(after.error_count("XQRG0003") >= before.error_count("XQRG0003") + 1);
        assert!(after.duration_buckets[10] >= before.duration_buckets[10] + 1);
    }

    #[test]
    fn service_counters_are_monotone_deltas() {
        let before = metrics().snapshot();
        metrics().record_transient_retry();
        metrics().record_service_admitted();
        metrics().record_service_shed(ShedReason::QueueFull);
        metrics().record_service_shed(ShedReason::Deadline);
        metrics().record_breaker_trip();
        metrics().record_breaker_fast_fail();
        metrics().record_doc_cache_hit();
        metrics().record_doc_cache_miss();
        metrics().record_doc_cache_eviction();
        metrics().record_plan_cache_hit();
        metrics().record_plan_cache_miss();
        metrics().record_plan_cache_eviction();
        metrics().record_plan_cache_rehydration();
        let after = metrics().snapshot();
        assert!(after.transient_retries >= before.transient_retries + 1);
        assert!(after.service_admitted >= before.service_admitted + 1);
        assert!(after.service_shed >= before.service_shed + 2);
        assert!(after.service_shed_queue_full >= before.service_shed_queue_full + 1);
        assert!(after.service_shed_deadline >= before.service_shed_deadline + 1);
        assert!(after.breaker_trips >= before.breaker_trips + 1);
        assert!(after.breaker_fast_fails >= before.breaker_fast_fails + 1);
        assert!(after.doc_cache_hits >= before.doc_cache_hits + 1);
        assert!(after.doc_cache_misses >= before.doc_cache_misses + 1);
        assert!(after.doc_cache_evictions >= before.doc_cache_evictions + 1);
        assert!(after.plan_cache_hits >= before.plan_cache_hits + 1);
        assert!(after.plan_cache_misses >= before.plan_cache_misses + 1);
        assert!(after.plan_cache_evictions >= before.plan_cache_evictions + 1);
        assert!(after.plan_cache_rehydrations >= before.plan_cache_rehydrations + 1);
    }

    #[test]
    fn queue_depth_gauge_tracks_enter_and_leave() {
        // The gauge is global; other tests do not touch it (services in
        // integration tests run in separate processes), so enter/leave
        // pairs net to the starting value.
        let base = metrics().snapshot().service_queue_depth;
        metrics().record_queue_enter();
        metrics().record_queue_enter();
        assert!(metrics().snapshot().service_queue_depth >= base + 2);
        metrics().record_queue_leave();
        metrics().record_queue_leave();
        assert_eq!(metrics().snapshot().service_queue_depth, base);
    }

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1_000), 0); // 1 µs
        assert_eq!(bucket_of(2_000), 1);
        assert_eq!(bucket_of(1_024_000), 10);
        assert_eq!(bucket_of(u64::MAX), DURATION_BUCKETS - 1);
    }

    #[test]
    fn dumps_render() {
        let s = metrics().snapshot();
        assert!(s.dump_text().contains("queries_started"));
        let j = s.dump_json();
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.contains("\"queries_started\""));
    }

    #[test]
    fn escape_covers_specials() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }

    #[test]
    fn hist_index_is_monotone_and_bounded() {
        // Exact small values, continuity at octave edges, clamp at top.
        assert_eq!(hist_index(0), 0);
        assert_eq!(hist_index(15), 15);
        assert_eq!(hist_index(16), 16);
        assert_eq!(hist_index(31), 31);
        let mut prev = 0usize;
        for shift in 0..50u32 {
            let v = 1u64 << shift;
            for probe in [v, v + v / 3, v + v / 2, v * 2 - 1] {
                let i = hist_index(probe);
                assert!(i >= prev || probe < 32, "non-monotone at {probe}");
                assert!(i < HIST_BUCKETS, "index {i} out of range for {probe}");
                prev = prev.max(i);
            }
        }
        // Bucket lower bounds are consistent with indexing: every lower
        // bound maps back into its own bucket.
        for i in 0..HIST_BUCKETS {
            assert_eq!(hist_index(hist_lower(i)), i, "lower bound of {i}");
        }
    }

    #[test]
    fn histogram_quantiles_within_relative_error() {
        let h = LatencyHistogram::new();
        // 10_000 observations uniform over [1ms, 2ms): p50 ≈ 1.5ms.
        for k in 0..10_000u64 {
            h.record(1_000_000 + k * 100);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 10_000);
        assert_eq!(s.max, 1_999_900);
        for (q, expect) in [(0.5, 1_500_000.0), (0.95, 1_950_000.0), (0.99, 1_990_000.0)] {
            let got = s.quantile(q) as f64;
            let rel = (got - expect).abs() / expect;
            assert!(rel < 0.08, "q{q}: got {got}, want ~{expect} (rel {rel:.3})");
        }
        assert!(s.quantile(1.0) <= s.max);
        assert!(s.mean() >= 1_400_000 && s.mean() <= 1_600_000);
    }

    #[test]
    fn empty_histogram_quantiles_are_zero() {
        let s = LatencyHistogram::new().snapshot();
        assert_eq!(s.quantile(0.5), 0);
        assert_eq!(s.mean(), 0);
    }

    #[test]
    fn prometheus_exposition_has_cumulative_buckets() {
        metrics().record_query_ok(3_000_000); // 3 ms → log2 bucket 11
        let s = metrics().snapshot();
        let text = s.prometheus_text();
        assert!(text.contains("# TYPE xqr_queries_ok counter"));
        assert!(text.contains("# TYPE xqr_query_duration_us histogram"));
        assert!(text.contains("xqr_query_duration_us_bucket{le=\"+Inf\"}"));
        assert!(text.contains("xqr_service_shed_reason{reason=\"queue-full\"}"));
        // Cumulative buckets are monotone non-decreasing and the +Inf
        // bucket equals the count.
        let mut last = 0u64;
        let mut inf = 0u64;
        for line in text.lines() {
            if let Some(rest) = line.strip_prefix("xqr_query_duration_us_bucket") {
                let v: u64 = rest.split_whitespace().last().unwrap().parse().unwrap();
                assert!(v >= last, "cumulative bucket decreased: {line}");
                last = v;
                if rest.contains("+Inf") {
                    inf = v;
                }
            }
        }
        let count: u64 = text
            .lines()
            .find_map(|l| l.strip_prefix("xqr_query_duration_us_count "))
            .unwrap()
            .parse()
            .unwrap();
        assert_eq!(inf, count);
        assert!(count >= 1);
    }
}
