//! Calendar and duration values for the date/time atomic types.
//!
//! These are deliberately lean: proleptic Gregorian dates, seconds with
//! millisecond precision, optional timezone offsets in minutes. Comparison
//! follows XML Schema order (timezone-normalized); values lacking a timezone
//! compare as if in UTC (the spec's implicit-timezone, fixed to Z here).

use std::cmp::Ordering;
use std::fmt;

use crate::XmlError;

/// `xs:date` — year, month, day, optional tz offset (minutes east of UTC).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Date {
    pub year: i32,
    pub month: u8,
    pub day: u8,
    pub tz_minutes: Option<i32>,
}

/// `xs:time` — milliseconds since midnight, optional tz offset.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Time {
    pub millis: u32,
    pub tz_minutes: Option<i32>,
}

/// `xs:dateTime`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct DateTime {
    pub date: Date,
    /// Milliseconds since midnight (timezone carried on `date.tz_minutes`).
    pub millis: u32,
}

/// `xs:duration` (also covers the two XPath subtypes): a month component and
/// a millisecond component, either of which may be negative.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Duration {
    pub months: i64,
    pub millis: i64,
}

fn is_leap(year: i32) -> bool {
    (year % 4 == 0 && year % 100 != 0) || year % 400 == 0
}

fn days_in_month(year: i32, month: u8) -> u8 {
    match month {
        1 | 3 | 5 | 7 | 8 | 10 | 12 => 31,
        4 | 6 | 9 | 11 => 30,
        2 => {
            if is_leap(year) {
                29
            } else {
                28
            }
        }
        _ => 0,
    }
}

/// Days since 1970-01-01 for a proleptic Gregorian date.
fn days_from_epoch(year: i32, month: u8, day: u8) -> i64 {
    // Howard Hinnant's algorithm.
    let y = if month <= 2 { year - 1 } else { year } as i64;
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = y - era * 400;
    let m = month as i64;
    let d = day as i64;
    let doy = (153 * (if m > 2 { m - 3 } else { m + 9 }) + 2) / 5 + d - 1;
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
    era * 146_097 + doe - 719_468
}

impl Date {
    pub fn new(year: i32, month: u8, day: u8, tz_minutes: Option<i32>) -> crate::Result<Self> {
        if month == 0 || month > 12 || day == 0 || day > days_in_month(year, month) {
            return Err(XmlError::new(
                "FORG0001",
                format!("invalid date: {year:04}-{month:02}-{day:02}"),
            ));
        }
        Ok(Date {
            year,
            month,
            day,
            tz_minutes,
        })
    }

    /// Milliseconds since the Unix epoch of this date's midnight, normalized
    /// to UTC using the timezone (missing timezone treated as Z).
    pub fn epoch_millis(&self) -> i64 {
        let days = days_from_epoch(self.year, self.month, self.day);
        let tz = self.tz_minutes.unwrap_or(0) as i64;
        days * 86_400_000 - tz * 60_000
    }

    pub fn parse(s: &str) -> crate::Result<Self> {
        let t = s.trim();
        let (body, tz) = split_timezone(t)?;
        let err = || XmlError::new("FORG0001", format!("invalid xs:date: {s:?}"));
        let (sign, body) = if let Some(rest) = body.strip_prefix('-') {
            (-1, rest)
        } else {
            (1, body)
        };
        let parts: Vec<&str> = body.splitn(3, '-').collect();
        if parts.len() != 3 || parts[0].len() < 4 || parts[1].len() != 2 || parts[2].len() != 2 {
            return Err(err());
        }
        let year: i32 = parts[0].parse().map_err(|_| err())?;
        let month: u8 = parts[1].parse().map_err(|_| err())?;
        let day: u8 = parts[2].parse().map_err(|_| err())?;
        Date::new(sign * year, month, day, tz)
    }
}

impl Time {
    pub fn new(
        hour: u8,
        minute: u8,
        second: u8,
        milli: u16,
        tz_minutes: Option<i32>,
    ) -> crate::Result<Self> {
        if hour > 24
            || minute > 59
            || second > 59
            || milli > 999
            || (hour == 24 && (minute as u32 | second as u32 | milli as u32) != 0)
        {
            return Err(XmlError::new("FORG0001", "invalid time"));
        }
        let h = if hour == 24 { 0 } else { hour };
        Ok(Time {
            millis: h as u32 * 3_600_000
                + minute as u32 * 60_000
                + second as u32 * 1000
                + milli as u32,
            tz_minutes,
        })
    }

    pub fn normalized_millis(&self) -> i64 {
        self.millis as i64 - self.tz_minutes.unwrap_or(0) as i64 * 60_000
    }

    pub fn parse(s: &str) -> crate::Result<Self> {
        let t = s.trim();
        let (body, tz) = split_timezone(t)?;
        let err = || XmlError::new("FORG0001", format!("invalid xs:time: {s:?}"));
        let parts: Vec<&str> = body.splitn(3, ':').collect();
        if parts.len() != 3 || parts[0].len() != 2 || parts[1].len() != 2 {
            return Err(err());
        }
        let hour: u8 = parts[0].parse().map_err(|_| err())?;
        let minute: u8 = parts[1].parse().map_err(|_| err())?;
        let (sec_str, milli) = match parts[2].split_once('.') {
            Some((sec, frac)) => {
                let mut frac3 = String::from(frac);
                frac3.truncate(3);
                while frac3.len() < 3 {
                    frac3.push('0');
                }
                (sec, frac3.parse::<u16>().map_err(|_| err())?)
            }
            None => (parts[2], 0),
        };
        if sec_str.len() != 2 {
            return Err(err());
        }
        let second: u8 = sec_str.parse().map_err(|_| err())?;
        Time::new(hour, minute, second, milli, tz)
    }
}

impl DateTime {
    pub fn epoch_millis(&self) -> i64 {
        let days = days_from_epoch(self.date.year, self.date.month, self.date.day);
        let tz = self.date.tz_minutes.unwrap_or(0) as i64;
        days * 86_400_000 + self.millis as i64 - tz * 60_000
    }

    pub fn parse(s: &str) -> crate::Result<Self> {
        let t = s.trim();
        let (date_str, time_str) = t
            .split_once('T')
            .ok_or_else(|| XmlError::new("FORG0001", format!("invalid xs:dateTime: {s:?}")))?;
        let time = Time::parse(time_str)?;
        // The timezone belongs to the time part lexically; re-attach to date.
        let date_only = Date::parse(&format!("{date_str}Z"))?; // placeholder tz, replaced below
        let date = Date {
            tz_minutes: time.tz_minutes,
            ..date_only
        };
        Ok(DateTime {
            date,
            millis: time.millis,
        })
    }
}

impl Duration {
    /// Parses `xs:duration` lexical forms like `P1Y2M3DT4H5M6.7S`, `-PT5M`.
    pub fn parse(s: &str) -> crate::Result<Self> {
        let t = s.trim();
        let err = || XmlError::new("FORG0001", format!("invalid xs:duration: {s:?}"));
        let (neg, rest) = match t.strip_prefix('-') {
            Some(r) => (true, r),
            None => (false, t),
        };
        let rest = rest.strip_prefix('P').ok_or_else(err)?;
        let (date_part, time_part) = match rest.split_once('T') {
            Some((d, tm)) => (d, Some(tm)),
            None => (rest, None),
        };
        if date_part.is_empty() && time_part.is_none_or(str::is_empty) {
            return Err(err());
        }
        let mut months: i64 = 0;
        let mut millis: i64 = 0;
        let mut num = String::new();
        for c in date_part.chars() {
            if c.is_ascii_digit() {
                num.push(c);
            } else {
                let v: i64 = num.parse().map_err(|_| err())?;
                num.clear();
                match c {
                    'Y' => months += v * 12,
                    'M' => months += v,
                    'D' => millis += v * 86_400_000,
                    _ => return Err(err()),
                }
            }
        }
        if !num.is_empty() {
            return Err(err());
        }
        if let Some(tp) = time_part {
            if tp.is_empty() {
                return Err(err());
            }
            let mut saw_dot = false;
            for c in tp.chars() {
                if c.is_ascii_digit() || c == '.' {
                    saw_dot |= c == '.';
                    num.push(c);
                } else {
                    match c {
                        'H' => {
                            let v: i64 = num.parse().map_err(|_| err())?;
                            millis += v * 3_600_000;
                        }
                        'M' => {
                            let v: i64 = num.parse().map_err(|_| err())?;
                            millis += v * 60_000;
                        }
                        'S' => {
                            let v: f64 = num.parse().map_err(|_| err())?;
                            millis += (v * 1000.0).round() as i64;
                        }
                        _ => return Err(err()),
                    }
                    num.clear();
                }
            }
            if !num.is_empty() {
                return Err(err());
            }
            let _ = saw_dot;
        }
        if neg {
            months = -months;
            millis = -millis;
        }
        Ok(Duration { months, millis })
    }

    /// Total order is only defined when one of the components is zero on both
    /// sides (year-month vs day-time durations); mixed comparisons use the
    /// conventional 30-day month approximation, documented deviation.
    pub fn approx_millis(&self) -> i64 {
        self.months * 30 * 86_400_000 + self.millis
    }
}

fn split_timezone(s: &str) -> crate::Result<(&str, Option<i32>)> {
    if let Some(body) = s.strip_suffix('Z') {
        return Ok((body, Some(0)));
    }
    // A timezone suffix is +HH:MM or -HH:MM in the last six chars; careful not
    // to confuse the date's own '-' separators.
    if s.len() > 6 {
        let tail = &s[s.len() - 6..];
        let b = tail.as_bytes();
        if (b[0] == b'+' || b[0] == b'-') && b[3] == b':' {
            let sign = if b[0] == b'+' { 1 } else { -1 };
            let hh: i32 = tail[1..3]
                .parse()
                .map_err(|_| XmlError::new("FORG0001", "bad timezone"))?;
            let mm: i32 = tail[4..6]
                .parse()
                .map_err(|_| XmlError::new("FORG0001", "bad timezone"))?;
            if hh > 14 || mm > 59 {
                return Err(XmlError::new("FORG0001", "bad timezone"));
            }
            return Ok((&s[..s.len() - 6], Some(sign * (hh * 60 + mm))));
        }
    }
    Ok((s, None))
}

impl PartialOrd for Date {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.epoch_millis().cmp(&other.epoch_millis()))
    }
}

impl PartialOrd for Time {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.normalized_millis().cmp(&other.normalized_millis()))
    }
}

impl PartialOrd for DateTime {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.epoch_millis().cmp(&other.epoch_millis()))
    }
}

impl PartialOrd for Duration {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.approx_millis().cmp(&other.approx_millis()))
    }
}

fn write_tz(f: &mut fmt::Formatter<'_>, tz: Option<i32>) -> fmt::Result {
    match tz {
        None => Ok(()),
        Some(0) => write!(f, "Z"),
        Some(m) => {
            let sign = if m < 0 { '-' } else { '+' };
            let a = m.abs();
            write!(f, "{}{:02}:{:02}", sign, a / 60, a % 60)
        }
    }
}

impl fmt::Display for Date {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:04}-{:02}-{:02}", self.year, self.month, self.day)?;
        write_tz(f, self.tz_minutes)
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ms = self.millis;
        let (h, m, s, mil) = (ms / 3_600_000, ms / 60_000 % 60, ms / 1000 % 60, ms % 1000);
        write!(f, "{h:02}:{m:02}:{s:02}")?;
        if mil != 0 {
            let frac = format!("{mil:03}");
            write!(f, ".{}", frac.trim_end_matches('0'))?;
        }
        write_tz(f, self.tz_minutes)
    }
}

impl fmt::Display for DateTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:04}-{:02}-{:02}T",
            self.date.year, self.date.month, self.date.day
        )?;
        let t = Time {
            millis: self.millis,
            tz_minutes: self.date.tz_minutes,
        };
        write!(f, "{t}")
    }
}

impl fmt::Display for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.months == 0 && self.millis == 0 {
            return write!(f, "PT0S");
        }
        if self.months < 0 || self.millis < 0 {
            write!(f, "-")?;
        }
        let months = self.months.unsigned_abs();
        let millis = self.millis.unsigned_abs();
        write!(f, "P")?;
        let (y, mo) = (months / 12, months % 12);
        if y > 0 {
            write!(f, "{y}Y")?;
        }
        if mo > 0 {
            write!(f, "{mo}M")?;
        }
        let days = millis / 86_400_000;
        let rem = millis % 86_400_000;
        if days > 0 {
            write!(f, "{days}D")?;
        }
        if rem > 0 {
            write!(f, "T")?;
            let (h, m, s, mil) = (
                rem / 3_600_000,
                rem / 60_000 % 60,
                rem / 1000 % 60,
                rem % 1000,
            );
            if h > 0 {
                write!(f, "{h}H")?;
            }
            if m > 0 {
                write!(f, "{m}M")?;
            }
            if s > 0 || mil > 0 {
                if mil > 0 {
                    let frac = format!("{mil:03}");
                    write!(f, "{s}.{}S", frac.trim_end_matches('0'))?;
                } else {
                    write!(f, "{s}S")?;
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn date_parse_display() {
        let d = Date::parse("2005-11-03").unwrap();
        assert_eq!(d.to_string(), "2005-11-03");
        let d = Date::parse("2005-11-03Z").unwrap();
        assert_eq!(d.to_string(), "2005-11-03Z");
        let d = Date::parse("2005-11-03-05:00").unwrap();
        assert_eq!(d.tz_minutes, Some(-300));
        assert!(Date::parse("2005-13-01").is_err());
        assert!(Date::parse("2005-02-29").is_err());
        assert!(Date::parse("2004-02-29").is_ok());
    }

    #[test]
    fn date_ordering_with_timezones() {
        let a = Date::parse("2005-01-01+05:00").unwrap();
        let b = Date::parse("2005-01-01Z").unwrap();
        assert!(a < b, "earlier UTC instant for +05:00 midnight");
    }

    #[test]
    fn time_parse_display() {
        let t = Time::parse("13:20:00").unwrap();
        assert_eq!(t.to_string(), "13:20:00");
        let t = Time::parse("13:20:30.55Z").unwrap();
        assert_eq!(t.to_string(), "13:20:30.55Z");
        assert!(Time::parse("25:00:00").is_err());
    }

    #[test]
    fn datetime_parse_display() {
        let dt = DateTime::parse("1999-05-31T13:20:00-05:00").unwrap();
        assert_eq!(dt.to_string(), "1999-05-31T13:20:00-05:00");
        let later = DateTime::parse("1999-05-31T18:20:00Z").unwrap();
        assert_eq!(dt.partial_cmp(&later), Some(Ordering::Equal));
    }

    #[test]
    fn duration_parse_display() {
        let d = Duration::parse("P1Y2M3DT4H5M6S").unwrap();
        assert_eq!(d.months, 14);
        assert_eq!(d.to_string(), "P1Y2M3DT4H5M6S");
        assert_eq!(Duration::parse("-PT5M").unwrap().to_string(), "-PT5M");
        assert_eq!(Duration::parse("PT0S").unwrap().to_string(), "PT0S");
        assert!(Duration::parse("P").is_err());
        assert!(Duration::parse("1Y").is_err());
    }

    #[test]
    fn duration_ordering() {
        let a = Duration::parse("PT1H").unwrap();
        let b = Duration::parse("PT90M").unwrap();
        assert!(a < b);
    }

    #[test]
    fn epoch_math() {
        assert_eq!(days_from_epoch(1970, 1, 1), 0);
        assert_eq!(days_from_epoch(1970, 1, 2), 1);
        assert_eq!(days_from_epoch(1969, 12, 31), -1);
        assert_eq!(days_from_epoch(2000, 3, 1), 11017);
    }
}
