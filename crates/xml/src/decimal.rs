//! Fixed-point decimal arithmetic for `xs:decimal`.
//!
//! Implemented as an `i128` count of millionths (scale 6). This departs from
//! XML Schema's arbitrary precision — the deviation is documented in
//! DESIGN.md and is ample for the paper's workloads, which only need money
//! amounts and small counters.

use std::cmp::Ordering;
use std::fmt;

use crate::XmlError;

/// Number of fractional digits carried by [`Decimal`].
pub const SCALE: u32 = 6;
const UNIT: i128 = 1_000_000;

/// A fixed-point decimal: `units` millionths.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Decimal {
    units: i128,
}

impl Decimal {
    pub const ZERO: Decimal = Decimal { units: 0 };
    pub const ONE: Decimal = Decimal { units: UNIT };

    /// Builds a decimal from a raw count of millionths.
    pub fn from_units(units: i128) -> Self {
        Decimal { units }
    }

    pub fn units(self) -> i128 {
        self.units
    }

    pub fn from_i64(v: i64) -> Self {
        Decimal {
            units: v as i128 * UNIT,
        }
    }

    /// Lossy conversion from a double (used by casting).
    pub fn from_f64(v: f64) -> crate::Result<Self> {
        if !v.is_finite() {
            return Err(XmlError::new(
                "FOCA0002",
                format!("cannot cast {v} to xs:decimal"),
            ));
        }
        let scaled = v * UNIT as f64;
        if scaled.abs() > i128::MAX as f64 / 2.0 {
            return Err(XmlError::new("FOCA0001", "decimal overflow"));
        }
        Ok(Decimal {
            units: scaled.round() as i128,
        })
    }

    pub fn to_f64(self) -> f64 {
        self.units as f64 / UNIT as f64
    }

    /// Truncating conversion to integer (toward zero), per `xs:integer` cast.
    pub fn trunc_to_i64(self) -> i64 {
        (self.units / UNIT) as i64
    }

    pub fn is_integral(self) -> bool {
        self.units % UNIT == 0
    }

    pub fn checked_add(self, rhs: Decimal) -> Option<Decimal> {
        self.units.checked_add(rhs.units).map(Decimal::from_units)
    }

    pub fn checked_sub(self, rhs: Decimal) -> Option<Decimal> {
        self.units.checked_sub(rhs.units).map(Decimal::from_units)
    }

    pub fn checked_mul(self, rhs: Decimal) -> Option<Decimal> {
        // (a/U) * (b/U) = a*b/U^2; rescale down by U.
        self.units
            .checked_mul(rhs.units)
            .map(|p| Decimal::from_units(p / UNIT))
    }

    pub fn checked_div(self, rhs: Decimal) -> Option<Decimal> {
        if rhs.units == 0 {
            return None;
        }
        self.units
            .checked_mul(UNIT)
            .map(|n| Decimal::from_units(n / rhs.units))
    }

    pub fn abs(self) -> Decimal {
        Decimal {
            units: self.units.abs(),
        }
    }

    pub fn floor(self) -> Decimal {
        Decimal {
            units: self.units.div_euclid(UNIT) * UNIT,
        }
    }

    pub fn ceiling(self) -> Decimal {
        Decimal {
            units: -(-self.units).div_euclid(UNIT) * UNIT,
        }
    }

    /// Round half away from zero (fn:round semantics for positive halves:
    /// round(2.5) = 3, round(-2.5) = -2 per F&O "round toward positive infinity").
    pub fn round(self) -> Decimal {
        let rem = self.units.rem_euclid(UNIT);
        let base = self.units - rem;
        if rem * 2 >= UNIT {
            Decimal { units: base + UNIT }
        } else {
            Decimal { units: base }
        }
    }

    /// Parses the XML Schema decimal lexical form: optional sign, digits,
    /// optional fraction. Exponents are *not* allowed (that is xs:double).
    pub fn parse(s: &str) -> crate::Result<Self> {
        let t = s.trim();
        let err = || XmlError::new("FORG0001", format!("invalid xs:decimal literal: {s:?}"));
        if t.is_empty() {
            return Err(err());
        }
        let (neg, rest) = match t.as_bytes()[0] {
            b'-' => (true, &t[1..]),
            b'+' => (false, &t[1..]),
            _ => (false, t),
        };
        let (int_part, frac_part) = match rest.split_once('.') {
            Some((i, f)) => (i, f),
            None => (rest, ""),
        };
        if int_part.is_empty() && frac_part.is_empty() {
            return Err(err());
        }
        if !int_part.bytes().all(|b| b.is_ascii_digit())
            || !frac_part.bytes().all(|b| b.is_ascii_digit())
        {
            return Err(err());
        }
        let mut units: i128 = 0;
        for b in int_part.bytes() {
            units = units
                .checked_mul(10)
                .and_then(|u| u.checked_add((b - b'0') as i128))
                .ok_or_else(|| XmlError::new("FOCA0001", "decimal overflow"))?;
        }
        units = units
            .checked_mul(UNIT)
            .ok_or_else(|| XmlError::new("FOCA0001", "decimal overflow"))?;
        let mut frac: i128 = 0;
        let mut scale = UNIT / 10;
        for b in frac_part.bytes().take(SCALE as usize) {
            frac += (b - b'0') as i128 * scale;
            scale /= 10;
        }
        let mut total = units + frac;
        if neg {
            total = -total;
        }
        Ok(Decimal { units: total })
    }
}

impl std::ops::Neg for Decimal {
    type Output = Decimal;
    fn neg(self) -> Decimal {
        Decimal { units: -self.units }
    }
}

impl PartialOrd for Decimal {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Decimal {
    fn cmp(&self, other: &Self) -> Ordering {
        self.units.cmp(&other.units)
    }
}

impl fmt::Display for Decimal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let neg = self.units < 0;
        let abs = self.units.unsigned_abs();
        let int = abs / UNIT as u128;
        let frac = abs % UNIT as u128;
        if neg {
            write!(f, "-")?;
        }
        if frac == 0 {
            write!(f, "{int}")
        } else {
            let mut frac_str = format!("{frac:06}");
            while frac_str.ends_with('0') {
                frac_str.pop();
            }
            write!(f, "{int}.{frac_str}")
        }
    }
}

impl fmt::Debug for Decimal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_display_round_trip() {
        for s in ["0", "1", "-1", "3.14", "-2.5", "100.000001", "42"] {
            let d = Decimal::parse(s).unwrap();
            assert_eq!(d.to_string(), s, "round trip of {s}");
        }
    }

    #[test]
    fn parse_normalizes() {
        assert_eq!(Decimal::parse("1.50").unwrap().to_string(), "1.5");
        assert_eq!(Decimal::parse("+7").unwrap().to_string(), "7");
        assert_eq!(Decimal::parse(".5").unwrap().to_string(), "0.5");
        assert_eq!(Decimal::parse("5.").unwrap().to_string(), "5");
    }

    #[test]
    fn parse_rejects_garbage() {
        for s in ["", "abc", "1.2.3", "1e5", "--3", "."] {
            assert!(Decimal::parse(s).is_err(), "{s} should fail");
        }
    }

    #[test]
    fn arithmetic() {
        let a = Decimal::parse("2.5").unwrap();
        let b = Decimal::parse("4").unwrap();
        assert_eq!(a.checked_add(b).unwrap().to_string(), "6.5");
        assert_eq!(a.checked_sub(b).unwrap().to_string(), "-1.5");
        assert_eq!(a.checked_mul(b).unwrap().to_string(), "10");
        assert_eq!(b.checked_div(a).unwrap().to_string(), "1.6");
        assert!(b.checked_div(Decimal::ZERO).is_none());
    }

    #[test]
    fn rounding_family() {
        let d = Decimal::parse("2.5").unwrap();
        assert_eq!(d.round().to_string(), "3");
        assert_eq!(Decimal::parse("-2.5").unwrap().round().to_string(), "-2");
        assert_eq!(Decimal::parse("-2.4").unwrap().floor().to_string(), "-3");
        assert_eq!(Decimal::parse("-2.4").unwrap().ceiling().to_string(), "-2");
        assert_eq!(Decimal::parse("2.4").unwrap().floor().to_string(), "2");
        assert_eq!(Decimal::parse("2.4").unwrap().ceiling().to_string(), "3");
    }

    #[test]
    fn ordering() {
        let a = Decimal::parse("1.1").unwrap();
        let b = Decimal::parse("1.10").unwrap();
        let c = Decimal::parse("1.2").unwrap();
        assert_eq!(a.cmp(&b), Ordering::Equal);
        assert!(a < c);
    }

    #[test]
    fn f64_conversions() {
        let d = Decimal::from_f64(2.25).unwrap();
        assert_eq!(d.to_string(), "2.25");
        assert!((d.to_f64() - 2.25).abs() < 1e-9);
        assert!(Decimal::from_f64(f64::NAN).is_err());
        assert!(Decimal::from_f64(f64::INFINITY).is_err());
    }

    #[test]
    fn integral_checks() {
        assert!(Decimal::from_i64(5).is_integral());
        assert!(!Decimal::parse("5.5").unwrap().is_integral());
        assert_eq!(Decimal::parse("-7.9").unwrap().trunc_to_i64(), -7);
    }
}
