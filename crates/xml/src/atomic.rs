//! Atomic values and atomic types.
//!
//! [`AtomicType`] enumerates the nineteen primitive XML Schema datatypes
//! plus the two ubiquitous XPath additions (`xs:integer`, a derived numeric
//! the algebra treats natively, and `xdt:untypedAtomic`, the type of
//! atomized untyped content). [`AtomicValue`] carries the corresponding
//! value representations. Type *relationships* (promotion, casting,
//! `fs:convert-operand`) live in the `xqr-types` crate; this module only
//! knows each value's own type and lexical form.

use std::fmt;
use std::rc::Rc;

use crate::decimal::Decimal;
use crate::qname::QName;
use crate::temporal::{Date, DateTime, Duration, Time};
use crate::XmlError;

/// The atomic types known to the engine.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub enum AtomicType {
    // The 19 primitive XML Schema datatypes:
    String,
    Boolean,
    Decimal,
    Float,
    Double,
    Duration,
    DateTime,
    Time,
    Date,
    GYearMonth,
    GYear,
    GMonthDay,
    GDay,
    GMonth,
    HexBinary,
    Base64Binary,
    AnyUri,
    QName,
    Notation,
    // XPath additions:
    Integer,
    UntypedAtomic,
}

impl AtomicType {
    /// All types enumerable by `promoteToSimpleTypes` (Fig. 6): the paper
    /// notes a join key can be stored under "no more than nineteen" types.
    pub const ALL: [AtomicType; 21] = [
        AtomicType::String,
        AtomicType::Boolean,
        AtomicType::Decimal,
        AtomicType::Float,
        AtomicType::Double,
        AtomicType::Duration,
        AtomicType::DateTime,
        AtomicType::Time,
        AtomicType::Date,
        AtomicType::GYearMonth,
        AtomicType::GYear,
        AtomicType::GMonthDay,
        AtomicType::GDay,
        AtomicType::GMonth,
        AtomicType::HexBinary,
        AtomicType::Base64Binary,
        AtomicType::AnyUri,
        AtomicType::QName,
        AtomicType::Notation,
        AtomicType::Integer,
        AtomicType::UntypedAtomic,
    ];

    pub fn is_numeric(self) -> bool {
        matches!(
            self,
            AtomicType::Integer | AtomicType::Decimal | AtomicType::Float | AtomicType::Double
        )
    }

    /// The `xs:`/`xdt:` lexical name.
    pub fn name(self) -> &'static str {
        match self {
            AtomicType::String => "xs:string",
            AtomicType::Boolean => "xs:boolean",
            AtomicType::Decimal => "xs:decimal",
            AtomicType::Float => "xs:float",
            AtomicType::Double => "xs:double",
            AtomicType::Duration => "xs:duration",
            AtomicType::DateTime => "xs:dateTime",
            AtomicType::Time => "xs:time",
            AtomicType::Date => "xs:date",
            AtomicType::GYearMonth => "xs:gYearMonth",
            AtomicType::GYear => "xs:gYear",
            AtomicType::GMonthDay => "xs:gMonthDay",
            AtomicType::GDay => "xs:gDay",
            AtomicType::GMonth => "xs:gMonth",
            AtomicType::HexBinary => "xs:hexBinary",
            AtomicType::Base64Binary => "xs:base64Binary",
            AtomicType::AnyUri => "xs:anyURI",
            AtomicType::QName => "xs:QName",
            AtomicType::Notation => "xs:NOTATION",
            AtomicType::Integer => "xs:integer",
            AtomicType::UntypedAtomic => "xdt:untypedAtomic",
        }
    }

    /// Looks an atomic type up by its local name (`string`, `untypedAtomic`, …).
    pub fn by_local_name(name: &str) -> Option<AtomicType> {
        AtomicType::ALL
            .iter()
            .copied()
            .find(|t| t.name().split_once(':').map(|(_, l)| l) == Some(name))
    }
}

impl fmt::Display for AtomicType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A single atomic value.
#[derive(Clone, Debug, PartialEq)]
pub enum AtomicValue {
    String(Rc<str>),
    Boolean(bool),
    Decimal(Decimal),
    Integer(i64),
    Double(f64),
    Float(f32),
    UntypedAtomic(Rc<str>),
    AnyUri(Rc<str>),
    QName(QName),
    Date(Date),
    Time(Time),
    DateTime(DateTime),
    Duration(Duration),
    GYear(i32),
    GYearMonth(i32, u8),
    GMonth(u8),
    GMonthDay(u8, u8),
    GDay(u8),
    HexBinary(Rc<[u8]>),
    Base64Binary(Rc<[u8]>),
}

impl AtomicValue {
    pub fn string(s: impl Into<Rc<str>>) -> Self {
        AtomicValue::String(s.into())
    }

    pub fn untyped(s: impl Into<Rc<str>>) -> Self {
        AtomicValue::UntypedAtomic(s.into())
    }

    pub fn type_of(&self) -> AtomicType {
        match self {
            AtomicValue::String(_) => AtomicType::String,
            AtomicValue::Boolean(_) => AtomicType::Boolean,
            AtomicValue::Decimal(_) => AtomicType::Decimal,
            AtomicValue::Integer(_) => AtomicType::Integer,
            AtomicValue::Double(_) => AtomicType::Double,
            AtomicValue::Float(_) => AtomicType::Float,
            AtomicValue::UntypedAtomic(_) => AtomicType::UntypedAtomic,
            AtomicValue::AnyUri(_) => AtomicType::AnyUri,
            AtomicValue::QName(_) => AtomicType::QName,
            AtomicValue::Date(_) => AtomicType::Date,
            AtomicValue::Time(_) => AtomicType::Time,
            AtomicValue::DateTime(_) => AtomicType::DateTime,
            AtomicValue::Duration(_) => AtomicType::Duration,
            AtomicValue::GYear(_) => AtomicType::GYear,
            AtomicValue::GYearMonth(..) => AtomicType::GYearMonth,
            AtomicValue::GMonth(_) => AtomicType::GMonth,
            AtomicValue::GMonthDay(..) => AtomicType::GMonthDay,
            AtomicValue::GDay(_) => AtomicType::GDay,
            AtomicValue::HexBinary(_) => AtomicType::HexBinary,
            AtomicValue::Base64Binary(_) => AtomicType::Base64Binary,
        }
    }

    /// The XPath string value (`fn:string` on an atomic).
    pub fn string_value(&self) -> String {
        match self {
            AtomicValue::String(s) | AtomicValue::UntypedAtomic(s) | AtomicValue::AnyUri(s) => {
                s.to_string()
            }
            AtomicValue::Boolean(b) => b.to_string(),
            AtomicValue::Decimal(d) => d.to_string(),
            AtomicValue::Integer(i) => i.to_string(),
            AtomicValue::Double(d) => format_double(*d),
            AtomicValue::Float(fl) => format_double(*fl as f64),
            AtomicValue::QName(q) => q.lexical(),
            AtomicValue::Date(d) => d.to_string(),
            AtomicValue::Time(t) => t.to_string(),
            AtomicValue::DateTime(dt) => dt.to_string(),
            AtomicValue::Duration(d) => d.to_string(),
            AtomicValue::GYear(y) => format!("{y:04}"),
            AtomicValue::GYearMonth(y, m) => format!("{y:04}-{m:02}"),
            AtomicValue::GMonth(m) => format!("--{m:02}"),
            AtomicValue::GMonthDay(m, d) => format!("--{m:02}-{d:02}"),
            AtomicValue::GDay(d) => format!("---{d:02}"),
            AtomicValue::HexBinary(b) => b.iter().map(|x| format!("{x:02X}")).collect(),
            AtomicValue::Base64Binary(b) => base64_encode(b),
        }
    }

    /// Numeric view as f64, when the value is numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            AtomicValue::Integer(i) => Some(*i as f64),
            AtomicValue::Decimal(d) => Some(d.to_f64()),
            AtomicValue::Double(d) => Some(*d),
            AtomicValue::Float(f) => Some(*f as f64),
            _ => None,
        }
    }

    /// Parses a double using XML Schema's lexical space (INF, -INF, NaN).
    pub fn parse_double(s: &str) -> crate::Result<f64> {
        let t = s.trim();
        match t {
            "INF" | "+INF" => Ok(f64::INFINITY),
            "-INF" => Ok(f64::NEG_INFINITY),
            "NaN" => Ok(f64::NAN),
            _ => t
                .parse::<f64>()
                .map_err(|_| XmlError::new("FORG0001", format!("invalid xs:double: {s:?}"))),
        }
    }

    /// Parses an integer per `xs:integer`.
    pub fn parse_integer(s: &str) -> crate::Result<i64> {
        let t = s.trim();
        let t = t.strip_prefix('+').unwrap_or(t);
        t.parse::<i64>()
            .map_err(|_| XmlError::new("FORG0001", format!("invalid xs:integer: {s:?}")))
    }

    /// Parses a boolean per `xs:boolean` ("true"/"false"/"1"/"0").
    pub fn parse_boolean(s: &str) -> crate::Result<bool> {
        match s.trim() {
            "true" | "1" => Ok(true),
            "false" | "0" => Ok(false),
            other => Err(XmlError::new(
                "FORG0001",
                format!("invalid xs:boolean: {other:?}"),
            )),
        }
    }
}

/// XPath number-to-string conversion: integers without exponent or trailing
/// `.0`, specials as `INF`/`-INF`/`NaN`.
pub fn format_double(d: f64) -> String {
    if d.is_nan() {
        return "NaN".into();
    }
    if d.is_infinite() {
        return if d > 0.0 { "INF".into() } else { "-INF".into() };
    }
    if d == d.trunc() && d.abs() < 1e15 {
        // Avoid "-0"
        let i = d as i64;
        if i == 0 && d.is_sign_negative() {
            return "0".into();
        }
        return i.to_string();
    }
    format!("{d}")
}

const B64: &[u8; 64] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";

/// Minimal base64 encoder for `xs:base64Binary` string values.
pub fn base64_encode(data: &[u8]) -> String {
    let mut out = String::with_capacity(data.len().div_ceil(3) * 4);
    for chunk in data.chunks(3) {
        let b = [
            chunk[0],
            *chunk.get(1).unwrap_or(&0),
            *chunk.get(2).unwrap_or(&0),
        ];
        let n = (b[0] as u32) << 16 | (b[1] as u32) << 8 | b[2] as u32;
        out.push(B64[(n >> 18) as usize & 63] as char);
        out.push(B64[(n >> 12) as usize & 63] as char);
        out.push(if chunk.len() > 1 {
            B64[(n >> 6) as usize & 63] as char
        } else {
            '='
        });
        out.push(if chunk.len() > 2 {
            B64[n as usize & 63] as char
        } else {
            '='
        });
    }
    out
}

/// Minimal base64 decoder.
pub fn base64_decode(s: &str) -> crate::Result<Vec<u8>> {
    let mut out = Vec::new();
    let mut buf: u32 = 0;
    let mut bits = 0;
    for c in s.bytes() {
        if c.is_ascii_whitespace() || c == b'=' {
            continue;
        }
        let v = B64
            .iter()
            .position(|&b| b == c)
            .ok_or_else(|| XmlError::new("FORG0001", "invalid base64"))? as u32;
        buf = buf << 6 | v;
        bits += 6;
        if bits >= 8 {
            bits -= 8;
            out.push((buf >> bits) as u8);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn type_of_matches_variant() {
        assert_eq!(AtomicValue::Integer(3).type_of(), AtomicType::Integer);
        assert_eq!(
            AtomicValue::untyped("x").type_of(),
            AtomicType::UntypedAtomic
        );
        assert_eq!(AtomicValue::Boolean(true).type_of(), AtomicType::Boolean);
    }

    #[test]
    fn string_values() {
        assert_eq!(AtomicValue::Integer(-7).string_value(), "-7");
        assert_eq!(AtomicValue::Double(2.0).string_value(), "2");
        assert_eq!(AtomicValue::Double(f64::INFINITY).string_value(), "INF");
        assert_eq!(AtomicValue::Double(f64::NAN).string_value(), "NaN");
        assert_eq!(AtomicValue::Double(2.5).string_value(), "2.5");
        assert_eq!(AtomicValue::Boolean(false).string_value(), "false");
        assert_eq!(AtomicValue::GMonthDay(2, 29).string_value(), "--02-29");
    }

    #[test]
    fn double_lexical_space() {
        assert_eq!(AtomicValue::parse_double("INF").unwrap(), f64::INFINITY);
        assert!(AtomicValue::parse_double("NaN").unwrap().is_nan());
        assert_eq!(AtomicValue::parse_double(" 1e3 ").unwrap(), 1000.0);
        assert!(AtomicValue::parse_double("one").is_err());
    }

    #[test]
    fn boolean_lexical_space() {
        assert!(AtomicValue::parse_boolean("1").unwrap());
        assert!(!AtomicValue::parse_boolean(" false ").unwrap());
        assert!(AtomicValue::parse_boolean("TRUE").is_err());
    }

    #[test]
    fn by_local_name_lookup() {
        assert_eq!(
            AtomicType::by_local_name("string"),
            Some(AtomicType::String)
        );
        assert_eq!(
            AtomicType::by_local_name("untypedAtomic"),
            Some(AtomicType::UntypedAtomic)
        );
        assert_eq!(AtomicType::by_local_name("noSuchType"), None);
    }

    #[test]
    fn base64_round_trip() {
        for data in [&b""[..], b"f", b"fo", b"foo", b"foobar", b"\x00\xff\x10"] {
            let enc = base64_encode(data);
            assert_eq!(base64_decode(&enc).unwrap(), data);
        }
        assert_eq!(base64_encode(b"foobar"), "Zm9vYmFy");
    }

    #[test]
    fn nineteen_primitives_plus_two() {
        assert_eq!(AtomicType::ALL.len(), 21);
        let primitives = AtomicType::ALL
            .iter()
            .filter(|t| !matches!(t, AtomicType::Integer | AtomicType::UntypedAtomic))
            .count();
        assert_eq!(primitives, 19, "the paper's 'no more than nineteen' bound");
    }
}
