//! Items and sequences — the value domain of the algebra's XML side.
//!
//! A [`Sequence`] is an ordered, flat list of [`Item`]s behind an `Rc`, so
//! that passing sequences between operators (and storing them in tuple
//! fields) is O(1). Sequences never nest.

use std::fmt;
use std::rc::Rc;

use crate::atomic::AtomicValue;
use crate::node::NodeHandle;

/// One item: a node or an atomic value.
#[derive(Clone, Debug, PartialEq)]
pub enum Item {
    Node(NodeHandle),
    Atomic(AtomicValue),
}

impl Item {
    pub fn as_node(&self) -> Option<&NodeHandle> {
        match self {
            Item::Node(n) => Some(n),
            Item::Atomic(_) => None,
        }
    }

    pub fn as_atomic(&self) -> Option<&AtomicValue> {
        match self {
            Item::Atomic(a) => Some(a),
            Item::Node(_) => None,
        }
    }

    /// `fn:string` of a single item.
    pub fn string_value(&self) -> String {
        match self {
            Item::Node(n) => n.string_value(),
            Item::Atomic(a) => a.string_value(),
        }
    }

    /// `fn:data` of a single item (may yield several atomics for list types).
    pub fn atomized(&self) -> Vec<AtomicValue> {
        match self {
            Item::Node(n) => n.typed_value(),
            Item::Atomic(a) => vec![a.clone()],
        }
    }
}

impl From<AtomicValue> for Item {
    fn from(a: AtomicValue) -> Self {
        Item::Atomic(a)
    }
}

impl From<NodeHandle> for Item {
    fn from(n: NodeHandle) -> Self {
        Item::Node(n)
    }
}

/// An ordered sequence of items (cheaply clonable).
#[derive(Clone, PartialEq)]
pub struct Sequence(Rc<Vec<Item>>);

impl Sequence {
    pub fn empty() -> Self {
        Sequence(Rc::new(Vec::new()))
    }

    pub fn singleton(item: impl Into<Item>) -> Self {
        Sequence(Rc::new(vec![item.into()]))
    }

    pub fn from_vec(items: Vec<Item>) -> Self {
        Sequence(Rc::new(items))
    }

    pub fn from_atomics(values: Vec<AtomicValue>) -> Self {
        Sequence(Rc::new(values.into_iter().map(Item::Atomic).collect()))
    }

    pub fn integers(values: impl IntoIterator<Item = i64>) -> Self {
        Sequence(Rc::new(
            values
                .into_iter()
                .map(|v| Item::Atomic(AtomicValue::Integer(v)))
                .collect(),
        ))
    }

    pub fn len(&self) -> usize {
        self.0.len()
    }

    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    pub fn iter(&self) -> std::slice::Iter<'_, Item> {
        self.0.iter()
    }

    /// Consumes the sequence, returning its items; clones only if shared.
    pub fn into_vec(self) -> Vec<Item> {
        Rc::try_unwrap(self.0).unwrap_or_else(|rc| (*rc).clone())
    }

    pub fn items(&self) -> &[Item] {
        &self.0
    }

    pub fn get(&self, i: usize) -> Option<&Item> {
        self.0.get(i)
    }

    /// Concatenation (XQuery `,` — sequences flatten).
    pub fn concat(&self, other: &Sequence) -> Sequence {
        if self.is_empty() {
            return other.clone();
        }
        if other.is_empty() {
            return self.clone();
        }
        let mut v = Vec::with_capacity(self.len() + other.len());
        v.extend_from_slice(&self.0);
        v.extend_from_slice(&other.0);
        Sequence(Rc::new(v))
    }

    /// `fn:data` over the whole sequence.
    pub fn atomized(&self) -> Vec<AtomicValue> {
        let mut out = Vec::with_capacity(self.len());
        for item in self.iter() {
            out.extend(item.atomized());
        }
        out
    }

    /// Sorts node items into document order and removes duplicates; errors
    /// are not possible here because the caller guarantees node-only input.
    /// Non-node items are kept in place (used by TreeJoin where inputs are
    /// all nodes).
    pub fn document_order_dedup(&self) -> Sequence {
        let mut nodes: Vec<NodeHandle> = Vec::with_capacity(self.len());
        for item in self.iter() {
            if let Item::Node(n) = item {
                nodes.push(n.clone());
            }
        }
        if nodes.len() != self.len() {
            // Mixed content: leave untouched (callers validate beforehand).
            return self.clone();
        }
        nodes.sort_by_key(|n| n.order_key());
        nodes.dedup_by(|a, b| a.same_node(b));
        Sequence(Rc::new(nodes.into_iter().map(Item::Node).collect()))
    }
}

impl Default for Sequence {
    fn default() -> Self {
        Sequence::empty()
    }
}

/// Incremental sequence concatenation in amortised O(total items).
///
/// Evaluator loops that previously folded with `out = out.concat(&next)`
/// copied every already-accumulated item per step — O(n²) over the loop.
/// The builder appends into one buffer instead, and keeps the common
/// zero/one-input cases allocation-free: a single pushed sequence is
/// returned as-is (sharing its `Rc`), not copied.
#[derive(Default)]
pub enum SequenceBuilder {
    #[default]
    Empty,
    One(Sequence),
    Many(Vec<Item>),
}

impl SequenceBuilder {
    pub fn new() -> Self {
        SequenceBuilder::Empty
    }

    /// Appends a whole sequence (XQuery `,` flattening).
    pub fn push(&mut self, seq: Sequence) {
        if seq.is_empty() {
            return;
        }
        match self {
            SequenceBuilder::Empty => *self = SequenceBuilder::One(seq),
            SequenceBuilder::One(first) => {
                let mut v = Vec::with_capacity(first.len() + seq.len());
                v.extend_from_slice(first.items());
                v.extend_from_slice(seq.items());
                *self = SequenceBuilder::Many(v);
            }
            SequenceBuilder::Many(v) => v.extend_from_slice(seq.items()),
        }
    }

    /// Appends a single item.
    pub fn push_item(&mut self, item: Item) {
        match self {
            SequenceBuilder::Empty => *self = SequenceBuilder::Many(vec![item]),
            SequenceBuilder::One(first) => {
                let mut v = Vec::with_capacity(first.len() + 1);
                v.extend_from_slice(first.items());
                v.push(item);
                *self = SequenceBuilder::Many(v);
            }
            SequenceBuilder::Many(v) => v.push(item),
        }
    }

    pub fn finish(self) -> Sequence {
        match self {
            SequenceBuilder::Empty => Sequence::empty(),
            SequenceBuilder::One(seq) => seq,
            SequenceBuilder::Many(v) => Sequence::from_vec(v),
        }
    }
}

impl FromIterator<Item> for Sequence {
    fn from_iter<T: IntoIterator<Item = Item>>(iter: T) -> Self {
        Sequence(Rc::new(iter.into_iter().collect()))
    }
}

impl<'a> IntoIterator for &'a Sequence {
    type Item = &'a Item;
    type IntoIter = std::slice::Iter<'a, Item>;
    fn into_iter(self) -> Self::IntoIter {
        self.0.iter()
    }
}

impl fmt::Debug for Sequence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, item) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{item:?}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::TreeBuilder;
    use crate::qname::QName;

    #[test]
    fn concat_flattens() {
        let a = Sequence::integers([1, 2]);
        let b = Sequence::integers([3]);
        let c = a.concat(&b);
        assert_eq!(c.len(), 3);
        assert_eq!(c.concat(&Sequence::empty()).len(), 3);
        assert_eq!(Sequence::empty().concat(&c).len(), 3);
    }

    #[test]
    fn builder_matches_concat_fold() {
        let parts = [
            Sequence::integers([1, 2]),
            Sequence::empty(),
            Sequence::integers([3]),
            Sequence::integers([4, 5, 6]),
        ];
        let mut builder = SequenceBuilder::new();
        let mut folded = Sequence::empty();
        for p in &parts {
            builder.push(p.clone());
            folded = folded.concat(p);
        }
        assert_eq!(builder.finish(), folded);

        // Zero and one pushed sequences stay allocation-free.
        assert!(SequenceBuilder::new().finish().is_empty());
        let single = Sequence::integers([9]);
        let mut b = SequenceBuilder::new();
        b.push(Sequence::empty());
        b.push(single.clone());
        assert_eq!(b.finish(), single);

        let mut b = SequenceBuilder::new();
        b.push_item(Item::Atomic(AtomicValue::Integer(1)));
        b.push(Sequence::integers([2]));
        b.push_item(Item::Atomic(AtomicValue::Integer(3)));
        assert_eq!(b.finish(), Sequence::integers([1, 2, 3]));
    }

    #[test]
    fn atomize_mixed() {
        let mut b = TreeBuilder::new();
        b.start_element(QName::local("e"));
        b.text("42");
        b.end_element();
        let doc = b.finish(None);
        let seq = Sequence::from_vec(vec![
            Item::Node(doc.root()),
            Item::Atomic(AtomicValue::Integer(7)),
        ]);
        let atoms = seq.atomized();
        assert_eq!(atoms.len(), 2);
        assert_eq!(atoms[0], AtomicValue::untyped("42"));
        assert_eq!(atoms[1], AtomicValue::Integer(7));
    }

    #[test]
    fn doc_order_dedup() {
        let mut b = TreeBuilder::new();
        b.start_element(QName::local("r"));
        b.start_element(QName::local("a"));
        b.end_element();
        b.start_element(QName::local("b"));
        b.end_element();
        b.end_element();
        let doc = b.finish(None);
        let r = doc.root();
        let a = r.children()[0].clone();
        let bb = r.children()[1].clone();
        let seq = Sequence::from_vec(vec![
            Item::Node(bb.clone()),
            Item::Node(a.clone()),
            Item::Node(bb.clone()),
        ]);
        let sorted = seq.document_order_dedup();
        assert_eq!(sorted.len(), 2);
        assert!(sorted.get(0).unwrap().as_node().unwrap().same_node(&a));
        assert!(sorted.get(1).unwrap().as_node().unwrap().same_node(&bb));
    }
}
