//! Tree construction.
//!
//! [`TreeBuilder`] assigns node ids in creation order; callers must emit
//! nodes in document order (the builder's start/end API makes that the only
//! possibility), which is what gives [`crate::node::NodeHandle::order_key`]
//! its meaning. Used by the XML parser, by element/attribute constructor
//! operators (which deep-copy their content per XQuery semantics), and by
//! validation when producing annotated copies.

use std::rc::Rc;

use crate::atomic::AtomicValue;
use crate::node::{Document, NodeData, NodeHandle, NodeId, NodeKind};
use crate::qname::QName;
use crate::XmlError;

/// An incremental, document-order tree builder.
pub struct TreeBuilder {
    nodes: Vec<NodeData>,
    stack: Vec<NodeId>,
}

impl TreeBuilder {
    pub fn new() -> Self {
        TreeBuilder {
            nodes: Vec::new(),
            stack: Vec::new(),
        }
    }

    fn push_node(&mut self, data: NodeData) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        let mut data = data;
        data.parent = self.stack.last().copied();
        if let Some(&parent) = self.stack.last() {
            if data.kind == NodeKind::Attribute {
                self.nodes[parent.0 as usize].attributes.push(id);
            } else {
                self.nodes[parent.0 as usize].children.push(id);
            }
        }
        self.nodes.push(data);
        id
    }

    /// Opens a document node (must be the first node, if used).
    pub fn start_document(&mut self) -> NodeId {
        let id = self.push_node(NodeData::new(NodeKind::Document));
        self.stack.push(id);
        id
    }

    pub fn end_document(&mut self) {
        let popped = self.stack.pop();
        debug_assert!(popped.is_some());
    }

    pub fn start_element(&mut self, name: QName) -> NodeId {
        let mut d = NodeData::new(NodeKind::Element);
        d.name = Some(name);
        let id = self.push_node(d);
        self.stack.push(id);
        id
    }

    /// Sets the type annotation on the currently open element.
    pub fn annotate_type(&mut self, ty: QName, typed_value: Option<Vec<AtomicValue>>) {
        if let Some(&id) = self.stack.last() {
            self.nodes[id.0 as usize].type_name = Some(ty);
            self.nodes[id.0 as usize].typed_value = typed_value;
        }
    }

    pub fn end_element(&mut self) {
        let popped = self.stack.pop();
        debug_assert!(popped.is_some());
    }

    pub fn attribute(&mut self, name: QName, value: &str) -> NodeId {
        let mut d = NodeData::new(NodeKind::Attribute);
        d.name = Some(name);
        d.value = Some(value.into());
        self.push_node(d)
    }

    /// An attribute carrying a type annotation and typed value.
    pub fn typed_attribute(
        &mut self,
        name: QName,
        value: &str,
        ty: QName,
        typed: Vec<AtomicValue>,
    ) -> NodeId {
        let id = self.attribute(name, value);
        self.nodes[id.0 as usize].type_name = Some(ty);
        self.nodes[id.0 as usize].typed_value = Some(typed);
        id
    }

    /// Appends a text node; consecutive text nodes are merged, and empty
    /// text is dropped, per the data model's construction rules.
    pub fn text(&mut self, content: &str) {
        if content.is_empty() {
            return;
        }
        if let Some(&parent) = self.stack.last() {
            if let Some(&last) = self.nodes[parent.0 as usize].children.last() {
                if self.nodes[last.0 as usize].kind == NodeKind::Text {
                    let existing = self.nodes[last.0 as usize].value.take().unwrap_or_default();
                    let merged: Rc<str> = format!("{existing}{content}").into();
                    self.nodes[last.0 as usize].value = Some(merged);
                    return;
                }
            }
        }
        let mut d = NodeData::new(NodeKind::Text);
        d.value = Some(content.into());
        self.push_node(d);
    }

    pub fn comment(&mut self, content: &str) {
        let mut d = NodeData::new(NodeKind::Comment);
        d.value = Some(content.into());
        self.push_node(d);
    }

    pub fn pi(&mut self, target: &str, content: &str) {
        let mut d = NodeData::new(NodeKind::Pi);
        d.name = Some(QName::local(target));
        d.value = Some(content.into());
        self.push_node(d);
    }

    /// Deep-copies an existing node (and its subtree) into the builder,
    /// preserving type annotations. This is what element construction does
    /// with enclosed node sequences.
    pub fn copy_node(&mut self, node: &NodeHandle) {
        match node.kind() {
            NodeKind::Document => {
                for c in node.children() {
                    self.copy_node(&c);
                }
            }
            NodeKind::Element => {
                let data = node.data();
                self.start_element(data.name.clone().expect("element has a name"));
                if let Some(&id) = self.stack.last() {
                    self.nodes[id.0 as usize].type_name = data.type_name.clone();
                    self.nodes[id.0 as usize].typed_value = data.typed_value.clone();
                }
                for a in node.attributes() {
                    self.copy_node(&a);
                }
                for c in node.children() {
                    self.copy_node(&c);
                }
                self.end_element();
            }
            NodeKind::Attribute => {
                let data = node.data();
                let id = self.attribute(
                    data.name.clone().expect("attribute has a name"),
                    data.value.as_deref().unwrap_or(""),
                );
                self.nodes[id.0 as usize].type_name = data.type_name.clone();
                self.nodes[id.0 as usize].typed_value = data.typed_value.clone();
            }
            NodeKind::Text => self.text(node.data().value.as_deref().unwrap_or("")),
            NodeKind::Comment => self.comment(node.data().value.as_deref().unwrap_or("")),
            NodeKind::Pi => self.pi(
                node.data()
                    .name
                    .clone()
                    .expect("pi has a target")
                    .local_part(),
                node.data().value.as_deref().unwrap_or(""),
            ),
        }
    }

    /// True when nothing is currently open and at least one node exists.
    pub fn is_complete(&self) -> bool {
        self.stack.is_empty() && !self.nodes.is_empty()
    }

    /// Freezes the builder into a document. Errors if elements are still open.
    pub fn try_finish(self, base_uri: Option<String>) -> crate::Result<Rc<Document>> {
        if !self.stack.is_empty() {
            return Err(XmlError::new("XQDY0001", "unbalanced tree construction"));
        }
        if self.nodes.is_empty() {
            return Err(XmlError::new("XQDY0002", "empty tree construction"));
        }
        Ok(Document::from_nodes(self.nodes, base_uri))
    }

    /// Freezes the builder, panicking on imbalance (internal use).
    pub fn finish(self, base_uri: Option<String>) -> Rc<Document> {
        self.try_finish(base_uri).expect("balanced construction")
    }
}

impl Default for TreeBuilder {
    fn default() -> Self {
        TreeBuilder::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn text_merging() {
        let mut b = TreeBuilder::new();
        b.start_element(QName::local("e"));
        b.text("a");
        b.text("b");
        b.text("");
        b.end_element();
        let doc = b.finish(None);
        let e = doc.root();
        assert_eq!(e.children().len(), 1);
        assert_eq!(e.string_value(), "ab");
    }

    #[test]
    fn copy_gives_fresh_identity() {
        let mut b = TreeBuilder::new();
        b.start_element(QName::local("e"));
        b.attribute(QName::local("k"), "v");
        b.text("x");
        b.end_element();
        let d1 = b.finish(None);
        let orig = d1.root();

        let mut b2 = TreeBuilder::new();
        b2.start_element(QName::local("wrap"));
        b2.copy_node(&orig);
        b2.end_element();
        let d2 = b2.finish(None);
        let copy = &d2.root().children()[0];
        assert!(!copy.same_node(&orig));
        assert_eq!(copy.string_value(), "x");
        assert_eq!(copy.attributes()[0].string_value(), "v");
    }

    #[test]
    fn unbalanced_is_an_error() {
        let mut b = TreeBuilder::new();
        b.start_element(QName::local("e"));
        assert!(b.try_finish(None).is_err());
    }

    #[test]
    fn empty_is_an_error() {
        let b = TreeBuilder::new();
        assert!(b.try_finish(None).is_err());
    }
}
