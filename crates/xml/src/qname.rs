//! Expanded QNames.
//!
//! A [`QName`] is an (optional namespace URI, local part) pair plus an
//! optional prefix retained only for serialization. Equality and hashing
//! ignore the prefix, per the XQuery data model.

use std::fmt;
use std::rc::Rc;

/// An expanded qualified name.
#[derive(Clone)]
pub struct QName {
    prefix: Option<Rc<str>>,
    local: Rc<str>,
    uri: Option<Rc<str>>,
}

impl QName {
    /// A name in no namespace.
    pub fn local(local: &str) -> Self {
        QName {
            prefix: None,
            local: local.into(),
            uri: None,
        }
    }

    /// A name with an explicit namespace URI (and no prefix).
    pub fn with_uri(uri: &str, local: &str) -> Self {
        QName {
            prefix: None,
            local: local.into(),
            uri: Some(uri.into()),
        }
    }

    /// A fully specified name.
    pub fn full(prefix: Option<&str>, uri: Option<&str>, local: &str) -> Self {
        QName {
            prefix: prefix.map(Into::into),
            local: local.into(),
            uri: uri.map(Into::into),
        }
    }

    pub fn local_part(&self) -> &str {
        &self.local
    }

    pub fn uri(&self) -> Option<&str> {
        self.uri.as_deref()
    }

    pub fn prefix(&self) -> Option<&str> {
        self.prefix.as_deref()
    }

    /// The lexical form used for serialization: `prefix:local` or `local`.
    pub fn lexical(&self) -> String {
        match &self.prefix {
            Some(p) => format!("{}:{}", p, self.local),
            None => self.local.to_string(),
        }
    }

    /// True when `self` and `other` have the same expanded name.
    pub fn same_expanded(&self, other: &QName) -> bool {
        self == other
    }
}

impl PartialEq for QName {
    fn eq(&self, other: &Self) -> bool {
        self.local == other.local && self.uri.as_deref() == other.uri.as_deref()
    }
}

impl Eq for QName {}

impl std::hash::Hash for QName {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.local.hash(state);
        self.uri.as_deref().hash(state);
    }
}

impl PartialOrd for QName {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for QName {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.uri.as_deref(), &*self.local).cmp(&(other.uri.as_deref(), &*other.local))
    }
}

impl fmt::Debug for QName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for QName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.uri {
            Some(u) => write!(f, "{{{}}}{}", u, self.local),
            None => write!(f, "{}", self.local),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equality_ignores_prefix() {
        let a = QName::full(Some("p"), Some("http://x"), "name");
        let b = QName::full(Some("q"), Some("http://x"), "name");
        assert_eq!(a, b);
    }

    #[test]
    fn inequality_on_uri() {
        let a = QName::with_uri("http://x", "name");
        let b = QName::local("name");
        assert_ne!(a, b);
    }

    #[test]
    fn lexical_form() {
        let a = QName::full(Some("p"), Some("http://x"), "name");
        assert_eq!(a.lexical(), "p:name");
        assert_eq!(QName::local("n").lexical(), "n");
    }

    #[test]
    fn display_expanded() {
        assert_eq!(QName::with_uri("u", "l").to_string(), "{u}l");
        assert_eq!(QName::local("l").to_string(), "l");
    }
}
