//! Concurrent scrape-consistency suite for the service observability
//! layer. The per-service accumulator (unlike the process-global metrics
//! registry) starts at zero for every `QueryService`, so these tests
//! assert *exact* accounting identities, not deltas:
//!
//! * every submission ends up in exactly one bucket — per-shape
//!   invocations sum back to admissions, `completed_ok + completed_err`
//!   never exceeds `admitted`, sheds split exactly by reason;
//! * scraping `observe()` / `prometheus_text()` / `observe_json()` from
//!   several threads while the service runs XMark traffic always sees
//!   monotone counters, a bounded well-formed journal, and an exposition
//!   that parses;
//! * the HTTP scrape listener serves consistent text and JSON documents
//!   under the same concurrent load, and 404s unknown paths;
//! * admission decisions are timed (the `admit` phase histogram) even for
//!   submissions that were shed.

mod common;

use std::collections::HashSet;
use std::io::{Read as _, Write as _};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Mutex};
use std::time::Duration;

use common::{json, validate_prometheus};
use xqr::engine::{
    CompileOptions, Engine, Limits, ObserveConfig, QueryRequest, QueryService, ServiceConfig,
};
use xqr_xmark::{generate, query, GenOptions, QUERY_COUNT};

fn xmark_service(workers: usize, observe: ObserveConfig) -> QueryService {
    let xml = generate(&GenOptions::for_bytes(60_000));
    let svc = QueryService::new(ServiceConfig {
        workers,
        queue_capacity: 256,
        observe,
        ..ServiceConfig::default()
    });
    svc.bind_document("auction.xml", xml);
    svc
}

// ===== exact accounting ====================================================

#[test]
fn every_submission_is_accounted_for_in_the_report() {
    let svc = xmark_service(2, ObserveConfig::default());
    let mut ids = Vec::new();
    let mut rows = Vec::new();
    for n in 1..=QUERY_COUNT {
        let out = svc.run(QueryRequest::new(query(n))).unwrap();
        ids.push(out.id);
        rows.push(out.rows as u64);
    }
    let n = QUERY_COUNT as u64;
    let report = svc.observe();
    assert_eq!(report.admitted, n);
    assert_eq!(report.completed_ok, n);
    assert_eq!(report.completed_err, 0);
    assert_eq!(report.shed, 0);
    assert_eq!(report.shapes_dropped, 0);
    assert_eq!(report.queue_depth, 0);

    // Per-shape invocations sum back to admissions, most-invoked first.
    let invocations: u64 = report.shapes.iter().map(|s| s.invocations).sum();
    assert_eq!(invocations, n);
    assert!(report
        .shapes
        .windows(2)
        .all(|w| w[0].invocations >= w[1].invocations));

    // Every lifecycle phase saw every query, and quantiles are ordered.
    assert_eq!(report.phases.len(), 6);
    for p in &report.phases {
        assert_eq!(p.count, n, "phase {}", p.phase);
        assert!(
            p.p50_nanos <= p.p95_nanos && p.p95_nanos <= p.p99_nanos && p.p99_nanos <= p.max_nanos,
            "phase {}: quantiles out of order",
            p.phase
        );
    }

    // The journal holds all twenty timelines: unique ids matching the
    // tickets, well-formed phase arithmetic, and a joinable plan hash.
    assert_eq!(report.journal.len(), QUERY_COUNT);
    let mut seen = HashSet::new();
    for tl in &report.journal {
        assert!(seen.insert(tl.id), "duplicate journal id {}", tl.id);
        assert!(ids.contains(&tl.id), "journal id {} never issued", tl.id);
        assert!(tl.dispatched, "all queries executed");
        assert!(tl.error.is_none(), "{:?}", tl.error);
        assert!(
            matches!(tl.cache, "hit" | "rehydrated" | "miss"),
            "unexpected cache outcome {:?}",
            tl.cache
        );
        assert!(tl.total_nanos >= tl.queue_nanos);
        assert!(!tl.query.is_empty());
        let hash = tl.plan_hash.expect("executed queries carry a plan hash");
        assert!(
            report.shapes.iter().any(|s| s.plan_hash == hash),
            "journal hash {hash:016x} missing from the shape table"
        );
    }

    // Row counts roll up identically through both sinks, and match what
    // the tickets returned.
    let journal_rows: u64 = report.journal.iter().map(|t| t.rows).sum();
    let shape_rows: u64 = report.shapes.iter().map(|s| s.rows).sum();
    let ticket_rows: u64 = rows.iter().sum();
    assert_eq!(journal_rows, shape_rows);
    assert_eq!(journal_rows, ticket_rows);
}

#[test]
fn shape_table_joins_to_canonical_plan_hashes() {
    let xml = generate(&GenOptions::for_bytes(60_000));
    let mut reference = Engine::new();
    reference
        .bind_document("auction.xml", &xml)
        .expect("auction parses");
    let svc = QueryService::new(ServiceConfig {
        workers: 2,
        ..ServiceConfig::default()
    });
    svc.bind_document("auction.xml", xml);
    for n in [1, 6, 14] {
        svc.run(QueryRequest::new(query(n))).unwrap();
        // An out-of-band prepare of the same text yields the same
        // canonical hash — the join key between EXPLAIN ANALYZE output
        // and the service's shape table.
        let hash = reference
            .prepare(query(n), &CompileOptions::default())
            .unwrap()
            .canonical_hash()
            .expect("algebra modes have canonical hashes");
        let report = svc.observe();
        let shape = report
            .shapes
            .iter()
            .find(|s| s.plan_hash == hash)
            .unwrap_or_else(|| panic!("Q{n}: hash {hash:016x} not in the shape table"));
        assert_eq!(shape.breaker, "closed");
        assert!(shape.invocations >= 1);
        assert!(!shape.example_query.is_empty());
    }
}

// ===== concurrent scrape consistency =======================================

#[test]
fn concurrent_scrapes_are_monotone_and_well_formed() {
    let observe = ObserveConfig {
        journal_capacity: 32,
        slow_log_capacity: 16,
        // Threshold zero: every completion qualifies as slow, so the
        // slow log exercises its capacity bound under load.
        slow_query: Some(Duration::ZERO),
        ..ObserveConfig::default()
    };
    let svc = xmark_service(4, observe);
    let jobs_per_thread = 2 * QUERY_COUNT;
    let submitters = 3;
    let running = AtomicBool::new(true);
    std::thread::scope(|s| {
        let workload: Vec<_> = (0..submitters)
            .map(|t| {
                let svc = &svc;
                s.spawn(move || {
                    for i in 0..jobs_per_thread {
                        let n = 1 + (i + t * 7) % QUERY_COUNT;
                        svc.run(QueryRequest::new(query(n)))
                            .unwrap_or_else(|e| panic!("thread {t} Q{n}: {e}"));
                    }
                })
            })
            .collect();
        for _ in 0..2 {
            let svc = &svc;
            let running = &running;
            s.spawn(move || {
                let mut last_admitted = 0u64;
                let mut last_done = 0u64;
                let mut last_invocations = 0u64;
                loop {
                    let stop = !running.load(Ordering::Relaxed);
                    let r = svc.observe();
                    // Counters only move forward.
                    assert!(r.admitted >= last_admitted, "admitted went backwards");
                    let done = r.completed_ok + r.completed_err;
                    assert!(done >= last_done, "completions went backwards");
                    assert!(
                        done <= r.admitted,
                        "completed {done} > admitted {}",
                        r.admitted
                    );
                    let invocations: u64 = r.shapes.iter().map(|s| s.invocations).sum();
                    assert!(invocations >= last_invocations);
                    assert!(
                        invocations <= done,
                        "shape invocations {invocations} ahead of completions {done}"
                    );
                    // Bounded, well-formed sinks at every instant.
                    assert!(r.journal.len() <= 32);
                    assert!(r.slow.len() <= 16);
                    for tl in r.journal.iter().chain(r.slow.iter()) {
                        assert!(tl.dispatched && tl.error.is_none());
                        assert!(tl.total_nanos >= tl.queue_nanos);
                    }
                    // The exposition parses mid-flight too.
                    validate_prometheus(&svc.prometheus_text()).expect("valid exposition");
                    last_admitted = r.admitted;
                    last_done = done;
                    last_invocations = invocations;
                    if stop {
                        break;
                    }
                    std::thread::sleep(Duration::from_micros(200));
                }
            });
        }
        for h in workload {
            h.join().unwrap();
        }
        running.store(false, Ordering::Relaxed);
    });

    // Quiescent: the identities close exactly.
    let total = (submitters * jobs_per_thread) as u64;
    let r = svc.observe();
    assert_eq!(r.admitted, total);
    assert_eq!(r.completed_ok, total);
    assert_eq!(r.completed_err, 0);
    assert_eq!(r.shed, 0);
    let invocations: u64 = r.shapes.iter().map(|s| s.invocations).sum();
    assert_eq!(
        invocations, total,
        "per-shape invocations == admitted - shed"
    );
    assert_eq!(r.journal.len(), 32, "journal capped at its capacity");
    assert_eq!(r.slow.len(), 16, "slow log capped at its capacity");

    // The JSON document agrees with the typed report.
    let parsed = json::parse(&svc.observe_json()).expect("valid observe JSON");
    assert_eq!(parsed.get("admitted").unwrap().as_int(), Some(total as i64));
    assert_eq!(
        parsed.get("completed_ok").unwrap().as_int(),
        Some(total as i64)
    );
    assert_eq!(
        parsed.get("journal").unwrap().as_arr().map(|a| a.len()),
        Some(32)
    );
    let phases = parsed.get("phases").unwrap().as_arr().unwrap();
    assert_eq!(phases.len(), 6);
    for p in phases {
        assert_eq!(p.get("count").unwrap().as_int(), Some(total as i64));
    }
}

// ===== shed accounting =====================================================

#[test]
fn sheds_are_counted_per_reason_with_admit_latency() {
    let svc = QueryService::new(ServiceConfig {
        workers: 1,
        queue_capacity: 2,
        memory_budget: 1 << 20,
        ..ServiceConfig::default()
    });
    // Seed the run-time EWMA so the deadline estimator has data. This
    // must happen before the gated loader below is registered: workers
    // sync every registered document ahead of each job, so any query
    // would stall on the gate once it exists.
    svc.run(QueryRequest::new("sum(1 to 1000)")).unwrap();

    let (gate_tx, gate_rx) = mpsc::channel::<()>();
    let gate_rx = Mutex::new(gate_rx);
    svc.register_document("gate.xml");
    svc.set_loader(move |uri| {
        if uri == "gate.xml" {
            let _ = gate_rx.lock().unwrap().recv();
        }
        Ok("<gate/>".to_string())
    });

    // Stall the single worker in its document sync.
    let first = svc
        .submit(QueryRequest::new("count(doc('gate.xml')/*)"))
        .unwrap();
    while svc.queue_depth() > 0 {
        std::thread::yield_now();
    }

    // Worker busy, queue empty: a 1 ns deadline can never survive the
    // estimated wait — shed as ewma-deadline.
    let doomed = QueryRequest::new("1").with_options(
        CompileOptions::default().limits(Limits::none().with_deadline(Duration::from_nanos(1))),
    );
    assert!(svc.submit(doomed).is_err());

    // A reservation larger than the whole budget is unservable.
    for _ in 0..2 {
        let huge = QueryRequest::new("1").with_options(
            CompileOptions::default().limits(Limits::none().with_max_bytes(10 << 20)),
        );
        assert!(svc.submit(huge).is_err());
    }

    // Fill the queue exactly, then overflow it five times.
    let queued: Vec<_> = (0..2)
        .map(|i| svc.submit(QueryRequest::new(format!("{i} + 10"))).unwrap())
        .collect();
    for _ in 0..5 {
        assert!(svc.submit(QueryRequest::new("2")).is_err());
    }

    let r = svc.observe();
    assert_eq!(r.admitted, 4, "seed + gate + two queued");
    assert_eq!(r.shed, 8);
    assert_eq!(r.shed_queue_full, 5);
    assert_eq!(r.shed_reservation, 2);
    assert_eq!(r.shed_deadline, 1);
    assert_eq!(r.shed_shutdown, 0);

    // Admission decisions are timed for every submission, shed or not.
    let admit = r.phases.iter().find(|p| p.phase == "admit").unwrap();
    assert_eq!(admit.count, 12, "4 admitted + 8 shed admit decisions");
    let total = r.phases.iter().find(|p| p.phase == "total").unwrap();
    assert_eq!(total.count, 1, "only the seed query has completed");

    // The per-reason split surfaces in the exposition with exact values.
    let text = svc.prometheus_text();
    assert!(
        text.contains("xqr_service_sheds_total{reason=\"queue-full\"} 5"),
        "{text}"
    );
    assert!(
        text.contains("xqr_service_sheds_total{reason=\"unservable-reservation\"} 2"),
        "{text}"
    );
    assert!(
        text.contains("xqr_service_sheds_total{reason=\"ewma-deadline\"} 1"),
        "{text}"
    );
    assert!(text.contains("xqr_service_admitted_total 4"), "{text}");

    // Nothing wedged: open the gate and everything admitted completes.
    gate_tx.send(()).unwrap();
    assert_eq!(first.wait().unwrap().xml, "1");
    for (i, t) in queued.into_iter().enumerate() {
        assert_eq!(t.wait().unwrap().xml, (i + 10).to_string());
    }
    let r = svc.observe();
    assert_eq!(r.completed_ok, 4);
    assert_eq!(r.completed_err, 0);
}

// ===== HTTP scrape listener ================================================

fn http_get(addr: SocketAddr, path: &str) -> (String, String) {
    let mut conn = TcpStream::connect(addr).expect("connect to scrape listener");
    conn.set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    write!(
        conn,
        "GET {path} HTTP/1.1\r\nHost: localhost\r\nConnection: close\r\n\r\n"
    )
    .unwrap();
    let mut buf = String::new();
    conn.read_to_string(&mut buf).expect("read response");
    let (head, body) = buf.split_once("\r\n\r\n").expect("header/body split");
    (head.to_string(), body.to_string())
}

#[test]
fn http_scrape_serves_text_and_json_under_concurrent_load() {
    let svc = xmark_service(3, ObserveConfig::default());
    let server = svc.serve_metrics("127.0.0.1:0").expect("bind listener");
    let addr = server.addr();
    std::thread::scope(|s| {
        for t in 0..2usize {
            let svc = &svc;
            s.spawn(move || {
                for i in 0..QUERY_COUNT {
                    let n = 1 + (i + t * 9) % QUERY_COUNT;
                    svc.run(QueryRequest::new(query(n)))
                        .unwrap_or_else(|e| panic!("Q{n}: {e}"));
                }
            });
        }
        for _ in 0..3 {
            s.spawn(move || {
                for _ in 0..6 {
                    let (head, body) = http_get(addr, "/metrics");
                    assert!(head.starts_with("HTTP/1.1 200"), "{head}");
                    assert!(head.contains("text/plain"), "{head}");
                    let samples = validate_prometheus(&body).expect("valid exposition");
                    assert!(samples > 20, "suspiciously small exposition");
                    assert!(body.contains("xqr_service_admitted_total"), "{body}");
                    assert!(body.contains("xqr_query_duration_us_bucket"), "{body}");

                    let (head, body) = http_get(addr, "/observe.json");
                    assert!(head.starts_with("HTTP/1.1 200"), "{head}");
                    assert!(head.contains("application/json"), "{head}");
                    let v = json::parse(&body).expect("valid observe JSON");
                    let admitted = v.get("admitted").unwrap().as_int().unwrap();
                    let ok = v.get("completed_ok").unwrap().as_int().unwrap();
                    let err = v.get("completed_err").unwrap().as_int().unwrap();
                    assert!(ok + err <= admitted, "{ok} + {err} > {admitted}");

                    let (head, body) = http_get(addr, "/metrics.json");
                    assert!(head.starts_with("HTTP/1.1 200"), "{head}");
                    json::parse(&body).expect("valid metrics JSON");
                }
            });
        }
    });

    // Unknown paths 404; the listener survives and keeps serving.
    let (head, _) = http_get(addr, "/nope");
    assert!(head.starts_with("HTTP/1.1 404"), "{head}");
    let (head, body) = http_get(addr, "/observe.json");
    assert!(head.starts_with("HTTP/1.1 200"), "{head}");
    let v = json::parse(&body).expect("valid observe JSON");
    assert_eq!(
        v.get("admitted").unwrap().as_int(),
        Some(2 * QUERY_COUNT as i64)
    );

    // Shutdown stops the listener; the service itself is unaffected.
    server.shutdown();
    assert_eq!(svc.run(QueryRequest::new("1 + 1")).unwrap().xml, "2");
}

// ===== graceful drain ======================================================

/// Draining a service with a wedged worker and a populated queue keeps
/// the accounting identities *exact*: every queued job is shed with the
/// shutdown reason, replied to with the stable overload code, journaled
/// as an undispatched timeline — and still counts as admitted and
/// completed-with-error, so `completed_ok + completed_err == admitted`
/// holds after the dust settles.
#[test]
fn drain_sheds_queue_with_exact_shutdown_accounting() {
    let svc = QueryService::new(ServiceConfig {
        workers: 1,
        queue_capacity: 4,
        ..ServiceConfig::default()
    });
    // Seed one clean completion before the gate exists (workers sync
    // every registered document ahead of each job).
    svc.run(QueryRequest::new("sum(1 to 1000)")).unwrap();

    let (gate_tx, gate_rx) = mpsc::channel::<()>();
    let gate_rx = Mutex::new(gate_rx);
    svc.register_document("gate.xml");
    svc.set_loader(move |uri| {
        if uri == "gate.xml" {
            let _ = gate_rx.lock().unwrap().recv();
        }
        Ok("<gate/>".to_string())
    });

    // Wedge the single worker in its document sync, then stack three
    // queued jobs behind it.
    let wedged = svc
        .submit(QueryRequest::new("count(doc('gate.xml')/*)"))
        .unwrap();
    while svc.queue_depth() > 0 {
        std::thread::yield_now();
    }
    let queued: Vec<_> = (0..3)
        .map(|i| svc.submit(QueryRequest::new(format!("{i} + 10"))).unwrap())
        .collect();
    let queued_ids: Vec<u64> = queued.iter().map(|t| t.id()).collect();

    // Drain under a deadline far shorter than the wedge.
    let drained = svc.drain(Duration::from_millis(50));
    assert_eq!(drained.drained_queued, 3);
    assert_eq!(drained.cancelled, 1, "the wedged query's token");
    assert!(!drained.completed_in_time);

    // Exact bucket split at this instant: seed + wedge + 3 queued were
    // admitted; seed completed ok; the three sheds completed with an
    // error; the wedged query is still in flight.
    let r = svc.observe();
    assert_eq!(r.admitted, 5);
    assert_eq!(r.completed_ok, 1);
    assert_eq!(r.completed_err, 3);
    assert_eq!(r.shed_shutdown, 3);
    assert_eq!(r.shed, 3, "no other shed reason fired");

    // Every shed job got the stable overload reply and an undispatched
    // journal timeline carrying the same code.
    for t in queued {
        let err = t.wait().unwrap_err();
        assert_eq!(err.code(), Some("XQRG0007"), "{err}");
    }
    for id in &queued_ids {
        let tl = r
            .journal
            .iter()
            .find(|tl| tl.id == *id)
            .expect("shed job journaled");
        assert!(!tl.dispatched);
        assert_eq!(tl.error.as_deref(), Some("XQRG0007"));
    }

    // The per-reason split surfaces in the exposition with exact values,
    // and the document still validates.
    let text = svc.prometheus_text();
    assert!(
        text.contains("xqr_service_sheds_total{reason=\"shutdown\"} 3"),
        "{text}"
    );
    validate_prometheus(&text).expect("valid exposition");

    // New work is refused outright after the drain.
    assert!(svc.submit(QueryRequest::new("1")).is_err());

    // Open the gate: the cancelled survivor unwinds (either observing
    // its cancellation or finishing), and the ledger balances.
    gate_tx.send(()).unwrap();
    match wedged.wait() {
        Err(e) => assert_eq!(e.code(), Some("XQRG0002"), "{e}"),
        Ok(out) => assert_eq!(out.xml, "1"),
    }
    let r = svc.observe();
    assert_eq!(r.admitted, 5);
    assert_eq!(r.completed_ok + r.completed_err, 5);
}
