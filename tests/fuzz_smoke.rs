//! Fuzz smoke test: randomly generated, deliberately pathological queries
//! (deep nesting, explosive products, error-raising arithmetic) executed
//! under tight resource limits. Every outcome must be a value or a
//! structured `EngineError` — never a panic, never a hang. The loop is
//! time-bounded: ~5 seconds by default, configurable via FUZZ_SMOKE_SECS
//! (CI runs it for 30).

use std::time::{Duration, Instant};

use xqr::engine::{CompileOptions, Engine, ExecutionMode, Limits};

/// Small deterministic xorshift64* PRNG — no external dependency, and a
/// fixed seed keeps failures reproducible.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// One random pathological query. Shapes rotate through the constructions
/// most likely to stress the guards: paren towers (parser depth), nested
/// FLWORs (compiler recursion + tuple products), element-constructor
/// towers (normalization depth), quantifier chains, and error-raising
/// arithmetic mixed into large ranges (governed evaluation).
fn gen_query(rng: &mut Rng) -> String {
    match rng.below(6) {
        0 => {
            let depth = 1 + rng.below(300) as usize;
            format!("{}1 + 1{}", "(".repeat(depth), ")".repeat(depth))
        }
        1 => {
            let levels = 1 + rng.below(12);
            let width = 1 + rng.below(50);
            let mut q = format!("$v{levels}");
            for i in (1..=levels).rev() {
                q = format!("for $v{i} in (1 to {width}) return {q}");
            }
            format!("count({q})")
        }
        2 => {
            let depth = 1 + rng.below(60) as usize;
            format!("{}x{}", "<e>".repeat(depth), "</e>".repeat(depth))
        }
        3 => {
            let n = 1 + rng.below(100_000);
            let d = rng.below(3);
            format!("count(for $x in 1 to {n} where $x idiv {d} = 1 return $x)")
        }
        4 => {
            let n = 1 + rng.below(1000);
            format!(
                "some $x in (1 to {n}), $y in (1 to {n}) satisfies $x * $y = {}",
                rng.below(1_000_000)
            )
        }
        _ => {
            // Linear growth: interpolating the body twice per level would
            // make the query text (and AST) exponential in the depth.
            let depth = 1 + rng.below(40);
            let mut q = "1".to_string();
            for i in 0..depth {
                q = format!("if ({} mod 2 = 0) then ({q} + 1) else {i}", i % 3);
            }
            q
        }
    }
}

#[test]
fn fuzz_smoke_no_panics_under_tight_limits() {
    // Big-stack thread: debug-build frames are large and the depth guards
    // are sized for the 8 MB main-thread stack, not a test thread's.
    std::thread::Builder::new()
        .stack_size(64 * 1024 * 1024)
        .spawn(fuzz_body)
        .unwrap()
        .join()
        .unwrap();
}

fn fuzz_body() {
    let budget = Duration::from_secs(
        std::env::var("FUZZ_SMOKE_SECS")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(5),
    );
    let limits = Limits::default()
        .with_deadline(Duration::from_millis(250))
        .with_max_tuples(200_000)
        .with_max_bytes(4 * 1024 * 1024);
    let mut rng = Rng(0x9E37_79B9_7F4A_7C15);
    let started = Instant::now();
    let mut ran = 0u64;
    while started.elapsed() < budget {
        let q = gen_query(&mut rng);
        let mode = ExecutionMode::ALL[(ran % ExecutionMode::ALL.len() as u64) as usize];
        let e = Engine::new();
        let per_query = Instant::now();
        // Ok or a structured error are both fine; a panic unwinds through
        // the harness and fails the test, a hang trips the per-query bound.
        let _ = e
            .prepare(&q, &CompileOptions::mode(mode).limits(limits.clone()))
            .and_then(|p| p.run(&e));
        assert!(
            per_query.elapsed() < Duration::from_secs(10),
            "query took {:?} under a 250ms deadline (mode {mode:?}): {}...",
            per_query.elapsed(),
            &q[..q.len().min(200)]
        );
        ran += 1;
    }
    assert!(
        ran > 10,
        "only {ran} queries in {budget:?} — generator hung?"
    );
}
