//! Shared helpers for the integration suites. Not a test binary itself
//! (cargo only builds top-level files in `tests/` as binaries).

#![allow(dead_code)] // each test binary uses a different subset

/// A deliberately independent mini JSON parser (objects, arrays, strings,
/// integers, booleans, null) — just enough to validate the hand-rolled
/// profile/metrics/observability emitters without a serde dependency.
pub mod json {
    #[derive(Debug, PartialEq)]
    pub enum Value {
        Null,
        Bool(bool),
        Int(i64),
        Str(String),
        Arr(Vec<Value>),
        Obj(Vec<(String, Value)>),
    }

    impl Value {
        pub fn get(&self, key: &str) -> Option<&Value> {
            match self {
                Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
                _ => None,
            }
        }

        pub fn as_int(&self) -> Option<i64> {
            match self {
                Value::Int(i) => Some(*i),
                _ => None,
            }
        }

        pub fn as_str(&self) -> Option<&str> {
            match self {
                Value::Str(s) => Some(s),
                _ => None,
            }
        }

        pub fn as_arr(&self) -> Option<&[Value]> {
            match self {
                Value::Arr(items) => Some(items),
                _ => None,
            }
        }
    }

    pub fn parse(s: &str) -> Result<Value, String> {
        let b = s.as_bytes();
        let mut i = 0;
        let v = value(b, &mut i)?;
        skip_ws(b, &mut i);
        if i != b.len() {
            return Err(format!("trailing data at byte {i}"));
        }
        Ok(v)
    }

    fn skip_ws(b: &[u8], i: &mut usize) {
        while *i < b.len() && (b[*i] as char).is_ascii_whitespace() {
            *i += 1;
        }
    }

    fn value(b: &[u8], i: &mut usize) -> Result<Value, String> {
        skip_ws(b, i);
        match b.get(*i) {
            Some(b'{') => {
                *i += 1;
                let mut fields = Vec::new();
                skip_ws(b, i);
                if b.get(*i) == Some(&b'}') {
                    *i += 1;
                    return Ok(Value::Obj(fields));
                }
                loop {
                    skip_ws(b, i);
                    let k = match value(b, i)? {
                        Value::Str(s) => s,
                        other => return Err(format!("non-string key {other:?}")),
                    };
                    skip_ws(b, i);
                    if b.get(*i) != Some(&b':') {
                        return Err(format!("expected ':' at byte {i}"));
                    }
                    *i += 1;
                    fields.push((k, value(b, i)?));
                    skip_ws(b, i);
                    match b.get(*i) {
                        Some(b',') => *i += 1,
                        Some(b'}') => {
                            *i += 1;
                            return Ok(Value::Obj(fields));
                        }
                        _ => return Err(format!("expected ',' or '}}' at byte {i}")),
                    }
                }
            }
            Some(b'[') => {
                *i += 1;
                let mut items = Vec::new();
                skip_ws(b, i);
                if b.get(*i) == Some(&b']') {
                    *i += 1;
                    return Ok(Value::Arr(items));
                }
                loop {
                    items.push(value(b, i)?);
                    skip_ws(b, i);
                    match b.get(*i) {
                        Some(b',') => *i += 1,
                        Some(b']') => {
                            *i += 1;
                            return Ok(Value::Arr(items));
                        }
                        _ => return Err(format!("expected ',' or ']' at byte {i}")),
                    }
                }
            }
            Some(b'"') => {
                *i += 1;
                let mut s = String::new();
                while let Some(&c) = b.get(*i) {
                    *i += 1;
                    match c {
                        b'"' => return Ok(Value::Str(s)),
                        b'\\' => {
                            let esc = *b.get(*i).ok_or("eof in escape")?;
                            *i += 1;
                            match esc {
                                b'"' => s.push('"'),
                                b'\\' => s.push('\\'),
                                b'/' => s.push('/'),
                                b'n' => s.push('\n'),
                                b't' => s.push('\t'),
                                b'r' => s.push('\r'),
                                b'u' => {
                                    let hex = std::str::from_utf8(&b[*i..*i + 4])
                                        .map_err(|e| e.to_string())?;
                                    let cp =
                                        u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
                                    s.push(char::from_u32(cp).ok_or("bad codepoint")?);
                                    *i += 4;
                                }
                                other => return Err(format!("unknown escape \\{}", other as char)),
                            }
                        }
                        other => s.push(other as char),
                    }
                }
                Err("eof in string".to_string())
            }
            Some(b't') if b[*i..].starts_with(b"true") => {
                *i += 4;
                Ok(Value::Bool(true))
            }
            Some(b'f') if b[*i..].starts_with(b"false") => {
                *i += 5;
                Ok(Value::Bool(false))
            }
            Some(b'n') if b[*i..].starts_with(b"null") => {
                *i += 4;
                Ok(Value::Null)
            }
            Some(c) if c.is_ascii_digit() || *c == b'-' => {
                let start = *i;
                if b[*i] == b'-' {
                    *i += 1;
                }
                while *i < b.len() && b[*i].is_ascii_digit() {
                    *i += 1;
                }
                std::str::from_utf8(&b[start..*i])
                    .unwrap()
                    .parse::<i64>()
                    .map(Value::Int)
                    .map_err(|e| e.to_string())
            }
            other => Err(format!("unexpected {other:?} at byte {i}")),
        }
    }
}

/// Structural validation of a Prometheus 0.0.4 text exposition: every
/// sample line is `name[{labels}] value`, every metric referenced by a
/// sample has a preceding `# TYPE`, and any `_bucket` series with `le`
/// labels is cumulative (non-decreasing, ending at `+Inf` whose value
/// equals the metric's `_count`). Returns the number of sample lines.
pub fn validate_prometheus(text: &str) -> Result<usize, String> {
    use std::collections::HashMap;
    let mut samples = 0usize;
    let mut buckets: HashMap<String, Vec<(String, f64)>> = HashMap::new();
    let mut counts: HashMap<String, f64> = HashMap::new();
    for line in text.lines() {
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('#') {
            let rest = rest.trim_start();
            if !rest.starts_with("TYPE ") && !rest.starts_with("HELP ") {
                return Err(format!("unknown comment form: {line:?}"));
            }
            continue;
        }
        let (series, value) = line
            .rsplit_once(' ')
            .ok_or_else(|| format!("no value on sample line {line:?}"))?;
        let value: f64 = value
            .parse()
            .map_err(|_| format!("non-numeric value on {line:?}"))?;
        samples += 1;
        let (name, labels) = match series.split_once('{') {
            Some((n, l)) => (
                n,
                l.strip_suffix('}')
                    .ok_or_else(|| format!("unterminated labels on {line:?}"))?,
            ),
            None => (series, ""),
        };
        if name
            .chars()
            .any(|c| !c.is_ascii_alphanumeric() && c != '_' && c != ':')
        {
            return Err(format!("bad metric name {name:?}"));
        }
        if let Some(base) = name.strip_suffix("_bucket") {
            let le = labels
                .split(',')
                .find_map(|kv| kv.strip_prefix("le="))
                .ok_or_else(|| format!("bucket without le label: {line:?}"))?
                .trim_matches('"')
                .to_string();
            buckets
                .entry(base.to_string())
                .or_default()
                .push((le, value));
        } else if let Some(base) = name.strip_suffix("_count") {
            if labels.is_empty() {
                counts.insert(base.to_string(), value);
            }
        }
    }
    for (base, series) in &buckets {
        let mut prev = f64::NEG_INFINITY;
        for (le, v) in series {
            if *v < prev {
                return Err(format!("{base}_bucket not cumulative at le={le}"));
            }
            prev = *v;
        }
        let (last_le, last_v) = series.last().unwrap();
        if last_le != "+Inf" {
            return Err(format!("{base}_bucket does not end at +Inf"));
        }
        if let Some(c) = counts.get(base) {
            if (last_v - c).abs() > 0.0 {
                return Err(format!("{base}: +Inf bucket {last_v} != _count {c}"));
            }
        }
    }
    Ok(samples)
}
