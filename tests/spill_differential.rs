//! Spill differential suite: the out-of-core operators (Grace hash join,
//! partition-spilling group-by, external merge-sort) must produce results
//! identical to their in-memory counterparts — same serialized output,
//! same error codes — across both execution strategies, on the XMark join
//! queries, a fixed corpus of join/group-by/order-by shapes (including
//! skewed keys that force recursive repartitioning and a single oversized
//! key that hits the depth cap), and randomly generated FLWOR queries.
//!
//! The second half (`mod failpoints`, compiled with
//! `--features failpoints`) drives the deterministic fault paths: spill
//! I/O retry-then-recover, retry exhaustion (`XQRG0005`), the
//! retry-with-spilling-disabled engine fallback, and temp-file hygiene
//! after an injected panic.

use std::path::PathBuf;
use std::sync::{Mutex, MutexGuard, OnceLock};

use proptest::prelude::*;
use xqr::engine::{CompileOptions, Engine, EngineError, ExecutionMode, Limits};
use xqr_xmark::{generate, query, GenOptions, QUERY_COUNT};

/// A budget small enough that any join build, group-by partition table, or
/// sort buffer crosses the 80% soft watermark and degrades to disk.
const TINY: u64 = 4 * 1024;

/// Every test here serializes on one lock: the failpoint registry and the
/// process metrics are global, and a fault injected by one test must not
/// leak into another test's spill path.
fn lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

fn err_code(e: EngineError) -> String {
    match e {
        EngineError::Dynamic(x) => x.code.to_string(),
        EngineError::Syntax(_) => "SYNTAX".to_string(),
        EngineError::LimitExceeded { code, .. } => code.to_string(),
        EngineError::Internal { .. } => "INTERNAL".to_string(),
    }
}

/// Runs to either the serialized result or the error code.
fn outcome(e: &Engine, q: &str, opts: &CompileOptions) -> Result<String, String> {
    match e.prepare(q, opts) {
        Ok(p) => p.run_to_string(e).map_err(err_code),
        Err(err) => Err(err_code(err)),
    }
}

fn opts(mode: ExecutionMode, materialized: bool) -> CompileOptions {
    if materialized {
        CompileOptions::materialized(mode)
    } else {
        CompileOptions::mode(mode)
    }
}

/// A per-query limit set that forces spilling (spilling is on by default;
/// the tiny byte budget makes the watermark trip almost immediately).
fn spilled_limits() -> Limits {
    Limits::none().with_max_bytes(TINY)
}

/// The core differential: unlimited in-memory vs forced-spill, pipelined
/// and materialized, under both equality-join algorithms.
fn assert_spill_matches_in_memory(e: &Engine, q: &str, label: &str) {
    for mode in [ExecutionMode::OptimHashJoin, ExecutionMode::OptimSortJoin] {
        for materialized in [false, true] {
            let in_mem = outcome(e, q, &opts(mode, materialized).limits(Limits::none()));
            let spilled = outcome(e, q, &opts(mode, materialized).limits(spilled_limits()));
            assert_eq!(
                in_mem, spilled,
                "{label}: spilled run diverged from in-memory \
                 (mode {mode:?}, materialized {materialized})\nquery: {q}"
            );
        }
    }
}

fn xmark_engine(bytes: usize) -> Engine {
    let xml = generate(&GenOptions::for_bytes(bytes));
    let mut e = Engine::new();
    e.bind_document("auction.xml", &xml)
        .expect("auction document parses");
    e
}

/// A scratch directory under the system temp dir, unique per test.
fn scratch_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("xqr-spill-test-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

fn entries(dir: &PathBuf) -> usize {
    match std::fs::read_dir(dir) {
        Ok(rd) => rd.count(),
        Err(_) => 0,
    }
}

/// The canary: an equi-join whose build charges ~25 KB, flipping the soft
/// watermark mid-build, followed by an order-by — the sort sees spill mode
/// already set at entry and genuinely goes to disk. (A lone join flips the
/// watermark too late to spill itself: charging is advisory once spilling
/// is on, so the build it is mid-way through completes in memory.)
const SPILL_JOIN: &str = "for $x in (1 to 800), $y in (1 to 800) \
                          where $x = $y order by $y descending return $y";

/// The fallback-path canary, run under the *materialized* strategy: the
/// input tables are charged before the join starts, so a low watermark
/// flips spill mode ahead of the build and the Grace join goes to disk
/// no matter how roomy the budget — leaving plenty of headroom for the
/// strict in-memory rerun after a spill failure.
const COUNT_JOIN: &str = "count(for $x in (1 to 800), $y in (1 to 800) where $x = $y return $x)";

/// The in-memory reference result for a query (unlimited budget).
fn in_memory(e: &Engine, q: &str) -> Result<String, String> {
    outcome(
        e,
        q,
        &CompileOptions::mode(ExecutionMode::OptimHashJoin).limits(Limits::none()),
    )
}

// ===== differential: fixed corpus ==========================================

const BIB: &str = r#"<bib>
  <book year="1994"><title>TCP/IP Illustrated</title>
    <author><last>Stevens</last><first>W.</first></author>
    <publisher>Addison-Wesley</publisher><price>65.95</price></book>
  <book year="2000"><title>Data on the Web</title>
    <author><last>Abiteboul</last><first>Serge</first></author>
    <author><last>Buneman</last><first>Peter</first></author>
    <publisher>Morgan Kaufmann Publishers</publisher><price>39.95</price></book>
  <book year="1999"><title>The Economics of Technology</title>
    <author><last>Gerbarg</last><first>Darcy</first></author>
    <publisher>Kluwer Academic Publishers</publisher><price>129.95</price></book>
</bib>"#;

#[test]
fn fixed_corpus_spilled_matches_in_memory() {
    let _l = lock();
    let mut e = Engine::new();
    e.bind_document("bib.xml", BIB).unwrap();
    let queries: &[&str] = &[
        // Equi-joins large enough to spill the build side many times over.
        "count(for $x in (1 to 400), $y in (1 to 400) where $x = $y return $x)",
        "sum(for $x in (1 to 120), $y in (1 to 240) where $x = $y return $x + $y)",
        // Skewed keys: 10 distinct values over 200 outer tuples, so every
        // partition repartitions recursively before fitting.
        "for $x in (for $i in (1 to 200) return $i mod 10), \
             $y in (1 to 9) where $x = $y return $y",
        // A single oversized key: repartitioning cannot split it, so the
        // depth cap forces a whole-partition in-memory load.
        "count(for $x in (for $i in (1 to 150) return 1), \
               $y in (for $j in (1 to 150) return 1) where $x = $y return 1)",
        // Group-by with duplicate keys (outer-join/group-by unnesting).
        "for $x in (for $i in (1 to 200) return $i mod 10) \
         let $m := (for $y in (1 to 50) where $y = $x return $y) \
         return ($x, count($m))",
        "for $b in doc('bib.xml')/bib/book \
         let $cheap := for $p in $b/price where number($p) < 100 return $p \
         return count($cheap)",
        // Order-by with heavy ties: external merge-sort must stay stable.
        "for $x at $i in (for $j in (1 to 300) return $j mod 7) \
         order by $x return ($x, $i)",
        "for $x in (1 to 250) order by $x mod 5, $x descending return $x",
        // Join + order-by + group-by stacked in one pipeline.
        "for $x in (for $i in (1 to 90) return $i mod 9) \
         let $m := (for $y in (1 to 30) where $y = $x return $y) \
         order by $x descending, count($m) return ($x, count($m))",
        // Errors must carry the same code whether or not the query spills.
        "for $x in (1 to 200), $y in (1 to 200) \
         where $x = $y return $x idiv ($x - 100)",
    ];
    for q in queries {
        assert_spill_matches_in_memory(&e, q, "fixed corpus");
    }
}

#[test]
fn xmark_join_queries_spilled_match_in_memory() {
    let _l = lock();
    let e = xmark_engine(60_000);
    for n in [8, 9, 11] {
        assert_spill_matches_in_memory(&e, query(n), &format!("XMark Q{n}"));
    }
}

/// The acceptance gate: the whole XMark suite under a 256 KB byte budget
/// (every memory-hungry query degrades to disk) agrees with the unlimited
/// in-memory run.
#[test]
fn forced_spill_xmark_full_suite_under_256k() {
    let _l = lock();
    let e = xmark_engine(120_000);
    let forced = Limits::none().with_max_bytes(256 * 1024);
    for n in 1..=QUERY_COUNT {
        let q = query(n);
        let base = CompileOptions::mode(ExecutionMode::OptimHashJoin);
        let in_mem = outcome(&e, q, &base.clone().limits(Limits::none()));
        let spilled = outcome(&e, q, &base.limits(forced.clone()));
        assert_eq!(in_mem, spilled, "XMark Q{n} diverged under a 256 KB budget");
    }
}

// ===== watermark, budgets, and error codes =================================

#[test]
fn soft_watermark_flip_spills_instead_of_erroring() {
    let _l = lock();
    let e = xmark_engine(60_000);
    let before = e.metrics_snapshot().queries_spilled;
    // A 1% watermark (~1.3 KB) under a budget the query never reaches:
    // the flip happens long before the hard limit, so this exercises the
    // soft path in isolation.
    let limits = Limits::none()
        .with_max_bytes(128 * 1024)
        .with_spill_watermark(1);
    let r = outcome(
        &e,
        query(8),
        &CompileOptions::mode(ExecutionMode::OptimHashJoin).limits(limits),
    );
    assert!(
        r.is_ok(),
        "watermark crossing must degrade, not fail: {r:?}"
    );
    let after = e.metrics_snapshot().queries_spilled;
    assert!(
        after > before,
        "crossing the soft watermark must count in queries_spilled"
    );
}

#[test]
fn disabling_spill_restores_the_hard_byte_budget() {
    let _l = lock();
    let e = xmark_engine(60_000);
    let strict = Limits::none().with_max_bytes(TINY).with_spill(None);
    let r = outcome(
        &e,
        query(8),
        &CompileOptions::mode(ExecutionMode::OptimHashJoin).limits(strict),
    );
    assert_eq!(
        r,
        Err("XQRG0004".to_string()),
        "with spilling disabled the byte budget is a hard limit again"
    );
}

#[test]
fn disk_budget_exhaustion_is_xqrg0006() {
    let _l = lock();
    let e = xmark_engine(60_000);
    // Spilling is required (tiny memory budget) but allowed only 64 bytes
    // of disk: the very first frame trips the disk budget.
    let limits = Limits::none().with_max_bytes(TINY).with_spill(Some(64));
    let r = outcome(
        &e,
        query(8),
        &CompileOptions::mode(ExecutionMode::OptimHashJoin).limits(limits),
    );
    assert_eq!(r, Err("XQRG0006".to_string()));
}

#[test]
fn spill_temp_dir_is_removed_on_success() {
    let _l = lock();
    let dir = scratch_dir("success");
    let mut e = Engine::new();
    e.bind_document("bib.xml", BIB).unwrap();
    let limits = spilled_limits().with_spill_dir(dir.clone());
    let expected = in_memory(&e, SPILL_JOIN);
    let before = e.metrics_snapshot().queries_spilled;
    let r = outcome(
        &e,
        SPILL_JOIN,
        &CompileOptions::mode(ExecutionMode::OptimHashJoin).limits(limits),
    );
    assert_eq!(r, expected);
    assert!(
        e.metrics_snapshot().queries_spilled > before,
        "the canary must actually spill for this test to mean anything"
    );
    assert_eq!(
        entries(&dir),
        0,
        "per-query spill dirs must be removed after a successful run"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn unwritable_spill_parent_fails_with_xqrg0005_then_falls_back() {
    let _l = lock();
    // The configured parent is a regular *file*: creating the per-query
    // dir under it fails deterministically (even when running as root,
    // unlike a permission-bit test).
    let file = std::env::temp_dir().join(format!("xqr-spill-test-{}-notadir", std::process::id()));
    std::fs::write(&file, b"x").unwrap();
    let mut e = Engine::new();
    e.bind_document("bib.xml", BIB).unwrap();
    // A ~10 KB watermark forces the spill attempt while the 1 MB hard
    // budget still holds the whole query in memory on the fallback rerun.
    let limits = || {
        Limits::none()
            .with_max_bytes(1024 * 1024)
            .with_spill_watermark(1)
            .with_spill_dir(file.join("sub"))
    };

    let hard = outcome(
        &e,
        COUNT_JOIN,
        &CompileOptions::materialized(ExecutionMode::OptimHashJoin).limits(limits()),
    );
    assert_eq!(
        hard,
        Err("XQRG0005".to_string()),
        "an unusable spill dir exhausts the I/O retries"
    );

    // With the fallback enabled the engine retries once with spilling
    // disabled; the hard budget then holds the query in memory.
    let p = e
        .prepare(
            COUNT_JOIN,
            &CompileOptions::materialized(ExecutionMode::OptimHashJoin)
                .limits(limits())
                .with_fallback(),
        )
        .unwrap();
    let soft = p.run_to_string(&e).map_err(err_code);
    assert_eq!(soft, Ok("800".to_string()));
    assert!(
        p.explain().contains("spilling failed"),
        "the fallback must be surfaced by explain(): {}",
        p.explain()
    );
    let _ = std::fs::remove_file(&file);
}

// ===== observability =======================================================

#[test]
fn explain_analyze_reports_spilled_bytes() {
    let _l = lock();
    let e = xmark_engine(60_000);
    let p = e
        .prepare(
            query(8),
            &CompileOptions::mode(ExecutionMode::OptimHashJoin)
                .limits(spilled_limits())
                .with_profiling(),
        )
        .unwrap();
    p.run_to_string(&e).expect("spilled run succeeds");
    let analyze = p.explain_analyze();
    assert!(
        analyze.contains("spilled="),
        "EXPLAIN ANALYZE must carry the per-operator spill annotation:\n{analyze}"
    );
}

// ===== randomized cross-limit property =====================================

/// Small total FLWOR queries (no division, so no value errors): joins,
/// group-by-shaped unnesting, and order-by over enough integers that the
/// tiny budget makes every shape spill.
fn flwor_query() -> impl Strategy<Value = String> {
    (
        prop::collection::vec(0i64..12, 1..40),
        prop::collection::vec(0i64..12, 1..40),
        0i64..12,
        0usize..4,
    )
        .prop_map(|(xs, ys, k, shape)| {
            let xs = xs
                .iter()
                .map(|v| v.to_string())
                .collect::<Vec<_>>()
                .join(",");
            let ys = ys
                .iter()
                .map(|v| v.to_string())
                .collect::<Vec<_>>()
                .join(",");
            match shape {
                0 => format!("for $x in ({xs}), $y in ({ys}) where $x = $y return $x + 10 * $y"),
                1 => format!(
                    "for $x in ({xs}) let $m := (for $y in ({ys}) where $y = $x return $y) \
                     return ($x, count($m))"
                ),
                2 => format!(
                    "for $x at $i in ({xs}) where $x >= {k} order by $x, $i descending \
                     return ($i, $x)"
                ),
                _ => format!(
                    "for $x in ({xs}), $y in ({ys}) where $x = $y \
                     order by $y descending return $y"
                ),
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn random_flwor_spilled_matches_in_memory(q in flwor_query()) {
        let _l = lock();
        let e = Engine::new();
        for mode in [ExecutionMode::OptimHashJoin, ExecutionMode::OptimSortJoin] {
            for materialized in [false, true] {
                let in_mem = outcome(&e, &q, &opts(mode, materialized).limits(Limits::none()));
                let spilled = outcome(&e, &q, &opts(mode, materialized).limits(spilled_limits()));
                prop_assert_eq!(
                    &in_mem, &spilled,
                    "mode {:?} materialized {} query {}", mode, materialized, q
                );
            }
        }
    }
}

// ===== fault injection (requires --features failpoints) ====================

#[cfg(feature = "failpoints")]
mod failpoints {
    use super::*;
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use xqr_xml::failpoint::{self, FailGuard};

    fn bib_engine() -> Engine {
        let mut e = Engine::new();
        e.bind_document("bib.xml", BIB).unwrap();
        e
    }

    #[test]
    fn transient_spill_write_errors_are_retried() {
        let _l = lock();
        failpoint::clear();
        let e = bib_engine();
        let expected = in_memory(&e, SPILL_JOIN);
        let before = e.metrics_snapshot().spill_io_retries;
        let _g = FailGuard::new("spill::write", "err(2)").unwrap();
        let r = outcome(
            &e,
            SPILL_JOIN,
            &CompileOptions::mode(ExecutionMode::OptimHashJoin).limits(spilled_limits()),
        );
        assert_eq!(
            r, expected,
            "two transient write failures must be absorbed by the retry loop"
        );
        let after = e.metrics_snapshot().spill_io_retries;
        assert!(after >= before + 2, "both retries must be counted");
    }

    #[test]
    fn persistent_spill_write_failure_exhausts_retries_to_xqrg0005() {
        let _l = lock();
        failpoint::clear();
        let e = bib_engine();
        let before = e.metrics_snapshot().failpoint_trips;
        let _g = FailGuard::new("spill::write", "err(1000)").unwrap();
        let r = outcome(
            &e,
            SPILL_JOIN,
            &CompileOptions::mode(ExecutionMode::OptimHashJoin).limits(spilled_limits()),
        );
        assert_eq!(r, Err("XQRG0005".to_string()));
        let after = e.metrics_snapshot().failpoint_trips;
        assert!(after >= before + 3, "each failed attempt trips the site");
    }

    #[test]
    fn spill_failure_falls_back_to_strict_in_memory_run() {
        let _l = lock();
        failpoint::clear();
        let e = bib_engine();
        let _g = FailGuard::new("spill::write", "err(1000)").unwrap();
        // Low watermark over a roomy budget: run 1 tries to spill and the
        // injected fault kills it; the fallback rerun with spilling
        // disabled stays under the 1 MB hard budget and succeeds.
        let limits = Limits::none()
            .with_max_bytes(1024 * 1024)
            .with_spill_watermark(1);
        let p = e
            .prepare(
                COUNT_JOIN,
                &CompileOptions::materialized(ExecutionMode::OptimHashJoin)
                    .limits(limits)
                    .with_fallback(),
            )
            .unwrap();
        let r = p.run_to_string(&e).map_err(err_code);
        assert_eq!(r, Ok("800".to_string()));
        assert!(
            p.explain().contains("spilling failed"),
            "explain() must report the spill fallback: {}",
            p.explain()
        );
    }

    #[test]
    fn injected_panic_leaves_no_temp_files_behind() {
        let _l = lock();
        failpoint::clear();
        let dir = scratch_dir("panic");
        let e = bib_engine();
        let limits = spilled_limits().with_spill_dir(dir.clone());
        let _g = FailGuard::new("spill::write", "panic").unwrap();
        let r = catch_unwind(AssertUnwindSafe(|| {
            outcome(
                &e,
                SPILL_JOIN,
                &CompileOptions::mode(ExecutionMode::OptimHashJoin).limits(limits),
            )
        }));
        // The engine's isolation boundary usually converts the panic into
        // an Internal error; either way the run must not succeed and the
        // scoped spill dir must be gone.
        assert!(
            !matches!(r, Ok(Ok(_))),
            "a spill-site panic cannot produce a result"
        );
        assert_eq!(
            entries(&dir),
            0,
            "spill temp files leaked past a panic unwind"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn phase_boundary_failpoint_surfaces_the_injected_code() {
        let _l = lock();
        failpoint::clear();
        let e = bib_engine();
        let _g = FailGuard::new("phase::execute", "err(1)").unwrap();
        let r = outcome(
            &e,
            "1 + 1",
            &CompileOptions::mode(ExecutionMode::OptimHashJoin),
        );
        assert_eq!(
            r,
            Err(failpoint::ERR_INJECTED.to_string()),
            "an execute-phase failpoint must surface its injected code"
        );
    }

    /// Opt-in chaos sweep: `XQR_CHAOS_SEED=<n> cargo test --features
    /// failpoints` derives a schedule of *transient* faults (at most two
    /// injected errors per retryable site, always absorbed by the 3-attempt
    /// retry loop) and asserts the differential still holds under them.
    #[test]
    fn chaos_seeded_transient_faults_are_absorbed() {
        let Ok(seed) = std::env::var("XQR_CHAOS_SEED") else {
            return;
        };
        let seed: u64 = seed.parse().unwrap_or(0xC0FFEE);
        eprintln!("chaos sweep with XQR_CHAOS_SEED={seed}");
        let _l = lock();
        failpoint::clear();
        let sites = ["spill::write", "spill::read", "spill::open"];
        // A tiny deterministic LCG picks the schedule from the seed.
        let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        let mut next = |m: u64| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) % m
        };
        let e = bib_engine();
        let corpus = [
            SPILL_JOIN,
            "for $x in (for $i in (1 to 200) return $i mod 10) \
             let $m := (for $y in (1 to 50) where $y = $x return $y) \
             return ($x, count($m))",
            "for $x in (1 to 250) order by $x mod 5, $x descending return $x",
        ];
        for q in corpus {
            let site = sites[next(sites.len() as u64) as usize];
            let errs = 1 + next(2);
            failpoint::configure(site, &format!("err({errs})")).unwrap();
            let in_mem = outcome(
                &e,
                q,
                &CompileOptions::mode(ExecutionMode::OptimHashJoin).limits(Limits::none()),
            );
            let spilled = outcome(
                &e,
                q,
                &CompileOptions::mode(ExecutionMode::OptimHashJoin).limits(spilled_limits()),
            );
            failpoint::clear();
            assert_eq!(
                in_mem, spilled,
                "seed {seed}: transient {site}=err({errs}) changed the result of {q}"
            );
        }
    }
}
