//! Schema + validation end-to-end: the machinery behind the paper's
//! `Validate`, `TypeAssert` and `element(*, T)` operators, exercised
//! through the public API in every execution mode.

use xqr::engine::{CompileOptions, Engine, ExecutionMode};
use xqr::types::Schema;
use xqr::xml::AtomicType;

fn engine() -> Engine {
    let mut e = Engine::new();
    let mut s = Schema::new();
    s.complex_type("Auction", None)
        .complex_type("USAuction", Some("Auction"))
        .complex_type("EUAuction", Some("Auction"))
        .simple_type("Money", AtomicType::Decimal, None)
        .simple_type("Count", AtomicType::Integer, None)
        .element("us", "USAuction")
        .element("eu", "EUAuction")
        .element("price", "Money")
        .element("qty", "Count")
        .attribute("income", "Money");
    e.set_schema(s);
    e.bind_document(
        "sales.xml",
        r#"<sales>
             <us><price>10.50</price><qty>2</qty></us>
             <us><price>8.25</price><qty>1</qty></us>
             <eu><price>20.00</price><qty>3</qty></eu>
           </sales>"#,
    )
    .unwrap();
    e
}

fn check(q: &str, expected: &str) {
    let e = engine();
    for mode in ExecutionMode::ALL {
        let out = e
            .prepare(q, &CompileOptions::mode(mode))
            .unwrap()
            .run_to_string(&e)
            .unwrap_or_else(|err| panic!("{mode:?} {q:?}: {err}"));
        assert_eq!(out, expected, "{mode:?}");
    }
}

#[test]
fn typed_values_flow_into_arithmetic() {
    // After validation, price atomizes as xs:decimal and qty as xs:integer:
    // revenue sums without explicit casts.
    check(
        "sum(for $s in validate { doc('sales.xml') }//us \
         return data($s/price) * data($s/qty))",
        "29.25",
    );
}

#[test]
fn kind_tests_with_derivation() {
    // element(*, Auction) matches both us (USAuction) and eu (EUAuction)
    // through derivation; element(*, USAuction) only the us elements.
    check(
        "count(validate { doc('sales.xml') }//element(*, Auction))",
        "3",
    );
    check(
        "count(validate { doc('sales.xml') }//element(*, USAuction))",
        "2",
    );
    check(
        "count(doc('sales.xml')//element(*, Auction))",
        "0", // unvalidated elements are untyped
    );
}

#[test]
fn typeswitch_on_schema_types() {
    check(
        "for $a in validate { doc('sales.xml') }/sales/* \
         return typeswitch ($a) \
                case element(*, USAuction) return 'US' \
                case element(*, EUAuction) return 'EU' \
                default return '?'",
        "US US EU",
    );
}

#[test]
fn instance_of_with_schema_types() {
    check(
        "validate { doc('sales.xml') }//us instance of element(*, Auction)+",
        "true",
    );
    check(
        "doc('sales.xml')//us instance of element(*, Auction)+",
        "false",
    );
}

#[test]
fn treat_as_schema_type_gates_results() {
    let e = engine();
    // treat as element(*,EUAuction)+ over us elements must fail everywhere.
    let q = "validate { doc('sales.xml') }//us treat as element(*, EUAuction)+";
    for mode in ExecutionMode::ALL {
        let r = e.prepare(q, &CompileOptions::mode(mode)).unwrap().run(&e);
        assert!(r.is_err(), "{mode:?}");
    }
}

#[test]
fn validation_failure_surfaces() {
    let mut e = engine();
    e.bind_document("bad.xml", "<price>not-money</price>")
        .unwrap();
    for mode in ExecutionMode::ALL {
        let r = e
            .prepare("validate { doc('bad.xml') }", &CompileOptions::mode(mode))
            .unwrap()
            .run(&e);
        assert!(
            r.is_err(),
            "{mode:?}: invalid simple content must fail validation"
        );
    }
}

#[test]
fn typed_join_keys_via_validation() {
    // Join on validated decimal content against integer-typed literals:
    // promotion through the typed hash join.
    let mut e = engine();
    e.bind_document("k.xml", "<ks><k>2</k><k>3</k></ks>")
        .unwrap();
    let q = "let $s := validate { doc('sales.xml') } return \
             for $k in validate { doc('k.xml') }//qty \
             return count(for $u in $s//us where data($u/qty) = data($k) return $u)";
    // k.xml has no qty elements — empty outer loop.
    check_with(&e, q, "");
    let q2 = "let $s := validate { doc('sales.xml') } return \
              for $u in $s//us \
              let $m := for $q in (1, 2.0) where data($u/qty) = $q return $q \
              return count($m)";
    check_with(&e, q2, "1 1");
}

fn check_with(e: &Engine, q: &str, expected: &str) {
    for mode in ExecutionMode::ALL {
        let out = e
            .prepare(q, &CompileOptions::mode(mode))
            .unwrap()
            .run_to_string(e)
            .unwrap_or_else(|err| panic!("{mode:?} {q:?}: {err}"));
        assert_eq!(out, expected, "{mode:?}");
    }
}
