//! The resource-governor suite: deadlines, cancellation, cardinality and
//! memory budgets, depth guards, fault isolation, and graceful
//! degradation — across both execution strategies (pipelined and
//! materialized) and both engines (algebra and the Core interpreter).

use std::time::{Duration, Instant};

use xqr::engine::{
    BudgetKind, CancellationToken, CompileOptions, Engine, EngineError, ExecutionMode, Limits,
    Phase,
};

/// A Product-heavy query that would run for a very long time ungoverned.
const EXPLOSIVE: &str = "count(for $x in 1 to 100000, $y in 1 to 100000 \
                         where $x + $y = 0 return 1)";

fn limit_code(e: &EngineError) -> Option<&str> {
    match e {
        EngineError::LimitExceeded { code, .. } => Some(code),
        _ => None,
    }
}

/// (a) A wall-clock deadline cancels a long-running query well within 2×
/// the configured deadline, in every execution mode.
#[test]
fn deadline_cancels_explosive_query() {
    for mode in ExecutionMode::ALL {
        let e = Engine::new();
        let deadline = Duration::from_millis(300);
        let opts = CompileOptions::mode(mode).limits(Limits::none().with_deadline(deadline));
        let p = e.prepare(EXPLOSIVE, &opts).unwrap();
        let started = Instant::now();
        let err = p.run(&e).expect_err("deadline must trip");
        let elapsed = started.elapsed();
        assert_eq!(limit_code(&err), Some("XQRG0001"), "{mode:?}: {err}");
        assert!(
            elapsed < 2 * deadline,
            "{mode:?}: cancelled after {elapsed:?}, deadline {deadline:?}"
        );
        match err {
            EngineError::LimitExceeded { phase, budget, .. } => {
                assert_eq!(phase, Phase::Execute);
                assert_eq!(budget, BudgetKind::Deadline);
            }
            other => panic!("unexpected error shape: {other}"),
        }
    }
}

/// Cancellation from another thread stops the query cooperatively.
#[test]
fn cross_thread_cancellation() {
    let e = Engine::new();
    let p = e.prepare(EXPLOSIVE, &CompileOptions::default()).unwrap();
    let token = CancellationToken::new();
    let handle = token.clone();
    let canceller = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(100));
        handle.cancel();
    });
    let started = Instant::now();
    let err = p.run_cancellable(&e, token).expect_err("must be cancelled");
    let elapsed = started.elapsed();
    canceller.join().unwrap();
    assert_eq!(limit_code(&err), Some("XQRG0002"), "{err}");
    assert!(elapsed < Duration::from_secs(5), "took {elapsed:?}");
}

/// (b) The tuple-cardinality budget trips deterministically, with the same
/// error code under the pipelined and the materialized strategy.
#[test]
fn tuple_budget_identical_across_strategies() {
    for mode in [
        ExecutionMode::AlgebraNoOptim,
        ExecutionMode::OptimNestedLoop,
        ExecutionMode::OptimHashJoin,
        ExecutionMode::OptimSortJoin,
    ] {
        let e = Engine::new();
        let limits = Limits::none().with_max_tuples(10_000);
        let pipelined = e
            .prepare(
                EXPLOSIVE,
                &CompileOptions::mode(mode).limits(limits.clone()),
            )
            .unwrap()
            .run(&e);
        let materialized = e
            .prepare(
                EXPLOSIVE,
                &CompileOptions::materialized(mode).limits(limits),
            )
            .unwrap()
            .run(&e);
        let pc = pipelined.as_ref().expect_err("pipelined must trip");
        let mc = materialized.as_ref().expect_err("materialized must trip");
        assert_eq!(limit_code(pc), Some("XQRG0003"), "{mode:?}: {pc}");
        assert_eq!(
            limit_code(pc),
            limit_code(mc),
            "{mode:?}: strategies disagree: {pc} vs {mc}"
        );
    }
}

/// The interpreter honors the same tuple budget and code.
#[test]
fn tuple_budget_no_algebra() {
    let e = Engine::new();
    let err = e
        .prepare(
            EXPLOSIVE,
            &CompileOptions::mode(ExecutionMode::NoAlgebra)
                .limits(Limits::none().with_max_tuples(10_000)),
        )
        .unwrap()
        .run(&e)
        .expect_err("interpreter must trip");
    assert_eq!(limit_code(&err), Some("XQRG0003"), "{err}");
}

/// (b) The byte budget trips with identical codes under both strategies.
/// The query carries an `order by` pipeline breaker, so even the pipelined
/// strategy must materialize the sorted table and charge for it. Spilling
/// is disabled: with it on (the default), crossing the budget degrades to
/// out-of-core execution instead of erroring — see `spill_differential.rs`.
#[test]
fn byte_budget_identical_across_strategies() {
    let q = "count(for $x in 1 to 50000 \
             order by -$x return string($x))";
    let mode = ExecutionMode::OptimHashJoin;
    let e = Engine::new();
    let limits = Limits::none().with_max_bytes(64 * 1024).with_spill(None);
    let pipelined = e
        .prepare(q, &CompileOptions::mode(mode).limits(limits.clone()))
        .unwrap()
        .run(&e);
    let materialized = e
        .prepare(q, &CompileOptions::materialized(mode).limits(limits))
        .unwrap()
        .run(&e);
    let pc = pipelined.as_ref().expect_err("pipelined must trip");
    let mc = materialized.as_ref().expect_err("materialized must trip");
    assert_eq!(limit_code(pc), Some("XQRG0004"), "{pc}");
    assert_eq!(limit_code(pc), limit_code(mc), "{pc} vs {mc}");
}

/// Budgets do not fire below the threshold: a governed run that fits the
/// budget returns exactly the ungoverned result (differential check).
#[test]
fn governed_run_agrees_with_ungoverned() {
    let queries = [
        "for $x in (1,2,3), $y in (10,20) where $x > 1 return $x + $y",
        "count(for $x in 1 to 200 order by -$x return $x)",
        "for $x in (1,1,3) let $a := avg(for $y in (1,2) where $x <= $y \
         return $y * 10) return ($x, $a)",
    ];
    for mode in ExecutionMode::ALL {
        for q in queries {
            let e = Engine::new();
            let free = e
                .prepare(q, &CompileOptions::mode(mode))
                .unwrap()
                .run_to_string(&e)
                .unwrap();
            let governed = e
                .prepare(
                    q,
                    &CompileOptions::mode(mode).limits(
                        Limits::none()
                            .with_max_tuples(1_000_000)
                            .with_max_bytes(64 * 1024 * 1024)
                            .with_deadline(Duration::from_secs(30)),
                    ),
                )
                .unwrap()
                .run_to_string(&e)
                .unwrap();
            assert_eq!(free, governed, "{mode:?} {q:?}");
        }
    }
}

/// The recursion-depth guard is configurable and keeps its historical
/// XQRT0005 code in both engines.
#[test]
fn recursion_depth_is_configurable() {
    // Big-stack thread: 60 levels of user recursion is many native frames
    // per level in a debug build, more than a test thread's default stack.
    std::thread::Builder::new()
        .stack_size(64 * 1024 * 1024)
        .spawn(recursion_depth_body)
        .unwrap()
        .join()
        .unwrap();
}

fn recursion_depth_body() {
    let q = "declare function local:down($n as xs:integer) as xs:integer \
             { if ($n = 0) then 0 else local:down($n - 1) }; \
             local:down(50)";
    for mode in ExecutionMode::ALL {
        let e = Engine::new();
        // Depth 10 < 50 recursive calls: trips.
        let err = e
            .prepare(
                q,
                &CompileOptions::mode(mode).limits(Limits::none().with_max_recursion_depth(10)),
            )
            .unwrap()
            .run(&e)
            .expect_err("shallow limit must trip");
        assert_eq!(limit_code(&err), Some("XQRT0005"), "{mode:?}: {err}");
        // A roomier limit lets the same query complete.
        let ok = e
            .prepare(
                q,
                &CompileOptions::mode(mode).limits(Limits::none().with_max_recursion_depth(60)),
            )
            .unwrap()
            .run_to_string(&e)
            .unwrap();
        assert_eq!(ok, "0", "{mode:?}");
    }
}

/// The query parser's nesting guard is configurable through the same
/// Limits and fails structurally (a syntax error, never a stack overflow).
#[test]
fn parse_depth_is_configurable() {
    let deep = format!("{}1{}", "(".repeat(40), ")".repeat(40));
    let e = Engine::new();
    let err = e.prepare(
        &deep,
        &CompileOptions::default().limits(Limits::none().with_max_parse_depth(20)),
    );
    assert!(
        matches!(err, Err(EngineError::Syntax(_))),
        "nesting past the limit must be a structured syntax error"
    );
    // The same query compiles under the default ceiling. (Big-stack
    // thread: debug-build frames are large, and test threads get a small
    // stack; the guards are sized for the 8 MB main-thread stack.)
    std::thread::Builder::new()
        .stack_size(64 * 1024 * 1024)
        .spawn(move || {
            let e = Engine::new();
            assert!(e.prepare(&deep, &CompileOptions::default()).is_ok());
        })
        .unwrap()
        .join()
        .unwrap();
}

/// Engine-wide limits apply to document parsing: element nesting beyond
/// `max_document_depth` is a structured error.
#[test]
fn document_depth_is_governed() {
    let deep_doc = format!("{}x{}", "<e>".repeat(40), "</e>".repeat(40));
    let mut e = Engine::new();
    e.set_limits(Limits::none().with_max_document_depth(20));
    let err = e.bind_document("deep.xml", &deep_doc).unwrap_err();
    match err {
        EngineError::Dynamic(x) => {
            assert!(x.message.contains("deep"), "{x}");
        }
        other => panic!("expected a dynamic parse error, got {other}"),
    }
    // Roomier engine accepts it.
    let mut e2 = Engine::new();
    e2.set_limits(Limits::none().with_max_document_depth(64));
    e2.bind_document("deep.xml", &deep_doc).unwrap();
}

/// Fault isolation: an injected panic inside execution surfaces as a
/// structured `EngineError::Internal`, not an unwind through the caller.
#[test]
fn injected_panic_is_isolated() {
    let e = Engine::new();
    let mut limits = Limits::none();
    limits.panic_after_ticks = Some(5);
    let err = e
        .prepare(
            "for $x in 1 to 1000 return $x",
            &CompileOptions::default().limits(limits),
        )
        .unwrap()
        .run(&e)
        .expect_err("injected fault must surface as an error");
    match err {
        EngineError::Internal {
            phase,
            plan_context,
            message,
        } => {
            assert_eq!(phase, Phase::Execute);
            assert!(message.contains("fault injection"), "{message}");
            assert!(!plan_context.is_empty());
        }
        other => panic!("expected Internal, got {other}"),
    }
}

/// Graceful degradation: with fallback enabled, the injected pipelined
/// panic is caught, the query retries materialized (fault injection
/// disarmed), succeeds, and explain() records the fallback.
#[test]
fn fallback_retries_materialized_and_is_reported() {
    let e = Engine::new();
    let mut limits = Limits::none();
    limits.panic_after_ticks = Some(5);
    let p = e
        .prepare(
            "for $x in 1 to 1000 return $x",
            &CompileOptions::default().limits(limits).with_fallback(),
        )
        .unwrap();
    let out = p.run_to_string(&e).expect("fallback must recover");
    assert!(out.starts_with("1 2 3"));
    assert!(
        p.explain().contains("fallback"),
        "explain must record the degradation:\n{}",
        p.explain()
    );
    // Without fallback the same fault is an error (isolated, not unwound).
    let mut limits = Limits::none();
    limits.panic_after_ticks = Some(5);
    let p2 = e
        .prepare(
            "for $x in 1 to 1000 return $x",
            &CompileOptions::default().limits(limits),
        )
        .unwrap();
    assert!(matches!(p2.run(&e), Err(EngineError::Internal { .. })));
}

/// Engine-wide limits installed with set_limits govern prepared queries
/// that carry no per-query limits.
#[test]
fn engine_wide_limits_apply() {
    let mut e = Engine::new();
    e.set_limits(Limits::none().with_max_tuples(10_000));
    let err = e
        .prepare(EXPLOSIVE, &CompileOptions::default())
        .unwrap()
        .run(&e)
        .expect_err("engine-wide budget must trip");
    assert_eq!(limit_code(&err), Some("XQRG0003"), "{err}");
    // Per-query limits override the engine-wide ones.
    let ok = e
        .prepare(
            "count(for $x in 1 to 200, $y in 1 to 200 return 1)",
            &CompileOptions::default().limits(Limits::none().with_max_tuples(10_000_000)),
        )
        .unwrap()
        .run_to_string(&e)
        .unwrap();
    assert_eq!(ok, "40000");
}
