//! Integration tests for the `xqr` command-line runner (process level).

use std::process::Command;

fn xqr() -> Command {
    Command::new(env!("CARGO_BIN_EXE_xqr"))
}

fn run(args: &[&str]) -> (String, String, i32) {
    let out = xqr().args(args).output().expect("spawn xqr");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.code().unwrap_or(-1),
    )
}

#[test]
fn inline_query() {
    let (stdout, _, code) = run(&["-q", "sum(1 to 10)"]);
    assert_eq!(code, 0);
    assert_eq!(stdout.trim(), "55");
}

#[test]
fn document_binding_and_query_file() {
    let dir = std::env::temp_dir().join(format!("xqr-cli-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let doc = dir.join("d.xml");
    std::fs::write(&doc, "<r><v>1</v><v>2</v></r>").unwrap();
    let qf = dir.join("q.xq");
    std::fs::write(&qf, "for $v in doc('d.xml')//v return $v/text()").unwrap();
    let (stdout, _, code) = run(&[
        "-d",
        &format!("d.xml={}", doc.display()),
        qf.to_str().unwrap(),
    ]);
    assert_eq!(code, 0);
    assert_eq!(stdout.trim(), "12");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn explain_prints_plan() {
    let (stdout, _, code) = run(&[
        "--explain",
        "-q",
        "for $x in (1,2) let $m := for $y in (1,2) where $y = $x return $y return count($m)",
    ]);
    assert_eq!(code, 0);
    assert!(stdout.contains("GroupBy"), "{stdout}");
    assert!(stdout.contains("LOuterJoin"), "{stdout}");
}

#[test]
fn stats_go_to_stderr() {
    let (stdout, stderr, code) = run(&[
        "--stats",
        "-q",
        "for $x in (1,2) let $m := for $y in (1,2) where $y = $x return $y return count($m)",
    ]);
    assert_eq!(code, 0);
    assert_eq!(stdout.trim(), "1 1");
    assert!(stderr.contains("insert group-by"), "{stderr}");
}

#[test]
fn modes_selectable() {
    for mode in ["no-algebra", "no-optim", "nl", "hash", "sort"] {
        let (stdout, _, code) = run(&["--mode", mode, "-q", "1 + 1"]);
        assert_eq!(code, 0, "{mode}");
        assert_eq!(stdout.trim(), "2", "{mode}");
    }
}

#[test]
fn error_exit_codes() {
    let (_, stderr, code) = run(&[]);
    assert_eq!(code, 2);
    assert!(stderr.contains("usage:"));
    let (_, stderr, code) = run(&["--mode", "warp", "-q", "1"]);
    assert_eq!(code, 2, "{stderr}");
    let (_, stderr, code) = run(&["-q", "1 +"]);
    assert_eq!(code, 1);
    assert!(stderr.contains("syntax error"), "{stderr}");
    let (_, stderr, code) = run(&["-q", "doc('missing.xml')"]);
    assert_eq!(code, 1);
    assert!(stderr.contains("FODC0002"), "{stderr}");
}

#[test]
fn external_variables() {
    let (stdout, _, code) = run(&[
        "--var",
        "who=world",
        "-q",
        "declare variable $who external; concat('hello ', $who)",
    ]);
    assert_eq!(code, 0);
    assert_eq!(stdout.trim(), "hello world");
}

#[test]
fn pretty_output() {
    let (stdout, _, code) = run(&["--pretty", "-q", "<a><b/><c/></a>"]);
    assert_eq!(code, 0);
    assert_eq!(stdout, "<a>\n  <b/>\n  <c/>\n</a>\n");
}
