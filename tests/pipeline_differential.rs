//! Cross-strategy differential suite: pipelined (cursor) execution must
//! agree with full materialization — same serialized results, and the same
//! error codes where evaluation fails — on the XMark queries, the Clio
//! mapping queries, a fixed corpus of use-case-style queries (including
//! error-raising ones), and randomly generated FLWOR queries, under every
//! algebra execution mode (nested-loop, hash, and sort joins included).
//!
//! One caveat, by design (see DESIGN.md §4b): when a query contains an
//! expression whose error is unreachable under lazy evaluation (e.g. a
//! failing `where` clause past the first witness of `some`), XQuery
//! permits either outcome, and the strategies may legitimately differ.
//! The corpora here avoid that construction; everything else must match
//! exactly.

use proptest::prelude::*;
use xqr::engine::{CompileOptions, Engine, EngineError, ExecutionMode};
use xqr_clio::{generate_dblp, mapping_query, DblpOptions};
use xqr_xmark::{generate, query, GenOptions, QUERY_COUNT};

/// Every mode that runs the algebra (NoAlgebra has no tuple pipeline).
const ALGEBRA_MODES: [ExecutionMode; 4] = [
    ExecutionMode::AlgebraNoOptim,
    ExecutionMode::OptimNestedLoop,
    ExecutionMode::OptimHashJoin,
    ExecutionMode::OptimSortJoin,
];

fn err_code(e: EngineError) -> String {
    match e {
        EngineError::Dynamic(x) => x.code.to_string(),
        EngineError::Syntax(_) => "SYNTAX".to_string(),
        EngineError::LimitExceeded { code, .. } => code.to_string(),
        EngineError::Internal { .. } => "INTERNAL".to_string(),
    }
}

/// Runs to either the serialized result or the error code.
fn outcome(e: &Engine, q: &str, opts: &CompileOptions) -> Result<String, String> {
    match e.prepare(q, opts) {
        Ok(p) => p.run_to_string(e).map_err(err_code),
        Err(err) => Err(err_code(err)),
    }
}

fn assert_strategies_agree(e: &Engine, q: &str, label: &str) {
    for mode in ALGEBRA_MODES {
        let pipelined = outcome(e, q, &CompileOptions::mode(mode));
        let materialized = outcome(e, q, &CompileOptions::materialized(mode));
        assert_eq!(
            pipelined, materialized,
            "{label}: pipelined and materialized disagree under {mode:?}\nquery: {q}"
        );
    }
}

#[test]
fn xmark_q1_to_q20() {
    let xml = generate(&GenOptions::for_bytes(60_000));
    let mut e = Engine::new();
    e.bind_document("auction.xml", &xml)
        .expect("auction document parses");
    for n in 1..=QUERY_COUNT {
        assert_strategies_agree(&e, query(n), &format!("XMark Q{n}"));
    }
}

#[test]
fn clio_n2_n3_n4() {
    let xml = generate_dblp(&DblpOptions::for_bytes(2_500));
    let mut e = Engine::new();
    e.bind_document("dblp.xml", &xml).expect("dblp parses");
    for levels in [2, 3, 4] {
        assert_strategies_agree(&e, &mapping_query(levels), &format!("Clio N{levels}"));
    }
}

const BIB: &str = r#"<bib>
  <book year="1994"><title>TCP/IP Illustrated</title>
    <author><last>Stevens</last><first>W.</first></author>
    <publisher>Addison-Wesley</publisher><price>65.95</price></book>
  <book year="2000"><title>Data on the Web</title>
    <author><last>Abiteboul</last><first>Serge</first></author>
    <author><last>Buneman</last><first>Peter</first></author>
    <publisher>Morgan Kaufmann Publishers</publisher><price>39.95</price></book>
  <book year="1999"><title>The Economics of Technology</title>
    <author><last>Gerbarg</last><first>Darcy</first></author>
    <publisher>Kluwer Academic Publishers</publisher><price>129.95</price></book>
</bib>"#;

#[test]
fn fixed_corpus() {
    let mut e = Engine::new();
    e.bind_document("bib.xml", BIB).unwrap();
    let queries: &[&str] = &[
        // Plain FLWOR pipelines (Select / MapConcat / MapIndex chains).
        "for $x in (1,2,3,4) where $x mod 2 = 0 return $x * 10",
        "for $x at $i in ('a','b','c') where $i >= 2 return concat($i, $x)",
        "for $x in (1,2), $y in (10,20) where $x * 10 <= $y return $x + $y",
        // Joins (hash/sort-eligible equality, plus residual conjunct).
        "for $b in doc('bib.xml')/bib/book, $a in $b/author \
         where $a/last = 'Stevens' return $b/title",
        "for $x in (1,2,3), $y in (2,3,4) where $x = $y and $x > 1 return $x",
        // Outer-join / group-by unnesting (OMapConcat, GroupBy breakers).
        "for $b in doc('bib.xml')/bib/book \
         let $cheap := for $p in $b/price where number($p) < 100 return $p \
         return count($cheap)",
        // Order-by breaker downstream of a streaming chain.
        "for $b in doc('bib.xml')/bib/book order by string($b/title) descending \
         return $b/title/text()",
        // Quantifiers (MapSome / MapEvery short-circuits).
        "some $b in doc('bib.xml')/bib/book satisfies $b/@year = 2000",
        "every $b in doc('bib.xml')/bib/book satisfies count($b/author) >= 1",
        // Conditionals in table position and nested FLWOR.
        "if (count(doc('bib.xml')//book) > 2) \
         then for $x in (1,2) return $x else for $x in (8,9) return $x",
        "for $b in doc('bib.xml')/bib/book \
         return <entry>{ $b/title, for $a in $b/author return $a/last }</entry>",
        // Positional predicates and element construction.
        "doc('bib.xml')/bib/book[2]/author[last()]/last/text()",
        "<out>{ for $b in doc('bib.xml')/bib/book[price > 50] return $b/@year }</out>",
        // Error-raising queries: both strategies must produce the code.
        "exactly-one(())",
        "for $x in (1,2) return exactly-one(())",
        "for $x in (1,2,3) where $x idiv 0 = 1 return $x",
        "for $b in doc('bib.xml')/bib/book return $b/title + 1",
        "zero-or-one((1,2))",
        "for $x in ('a','b') order by $x return error:undefined($x)",
    ];
    for q in queries {
        assert_strategies_agree(&e, q, "fixed corpus");
    }
}

// ===== randomized cross-strategy property ===================================

/// A small total-FLWOR generator: integer data, comparison/arithmetic
/// predicates that cannot raise (no division), optional second generator
/// variable (exercising joins/products), optional order-by (a breaker).
fn flwor_query() -> impl Strategy<Value = String> {
    (
        prop::collection::vec(0i64..8, 1..6),
        prop::collection::vec(0i64..8, 1..6),
        0i64..8,
        0usize..4,
    )
        .prop_map(|(xs, ys, k, shape)| {
            let xs = xs
                .iter()
                .map(|v| v.to_string())
                .collect::<Vec<_>>()
                .join(",");
            let ys = ys
                .iter()
                .map(|v| v.to_string())
                .collect::<Vec<_>>()
                .join(",");
            match shape {
                0 => format!("for $x in ({xs}) where $x >= {k} return $x * 2"),
                1 => format!("for $x in ({xs}), $y in ({ys}) where $x = $y return $x + 10 * $y"),
                2 => format!(
                    "for $x in ({xs}) let $m := (for $y in ({ys}) where $y = $x return $y) \
                     return ($x, count($m))"
                ),
                _ => format!(
                    "for $x at $i in ({xs}) where $x > {k} order by $x, $i descending \
                     return ($i, $x)"
                ),
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn random_flwor_strategies_agree(q in flwor_query()) {
        let e = Engine::new();
        for mode in ALGEBRA_MODES {
            let pipelined = outcome(&e, &q, &CompileOptions::mode(mode));
            let materialized = outcome(&e, &q, &CompileOptions::materialized(mode));
            prop_assert_eq!(&pipelined, &materialized, "mode {:?} query {}", mode, q);
        }
    }
}
