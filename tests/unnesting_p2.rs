//! End-to-end reproduction of Section 2's running example: the XMark Q8
//! variant (P1 → P2), with the schema/validation machinery the paper's
//! version exercises (type assertion `element(*,Auction)*`, `validate`,
//! and the `element(*,USSeller)` kind test).

use xqr::engine::{CompileOptions, Engine, ExecutionMode};
use xqr::types::Schema;
use xqr::xml::AtomicType;

const QUERY: &str = "for $p in $auction//person \
     let $a as element(*,Auction)* := \
        for $t in $auction//closed_auction \
        where $t/buyer/@person = $p/@id \
        return validate { $t } \
     return <item person=\"{$p/name/text()}\">{ count($a//element(*,USSeller)) }</item>";

fn engine() -> Engine {
    let mut e = Engine::new();
    let mut schema = Schema::new();
    schema
        .complex_type("Auction", None)
        .complex_type("Seller", None)
        .complex_type("USSeller", Some("Seller"))
        .element("closed_auction", "Auction")
        .element("seller", "USSeller")
        .simple_type("Price", AtomicType::Decimal, None)
        .element("price", "Price");
    e.set_schema(schema);
    let doc = r#"<auction>
        <person id="p1"><name>Ann</name></person>
        <person id="p2"><name>Bob</name></person>
        <person id="p3"><name>Cid</name></person>
        <closed_auction><buyer person="p1"/><seller/><price>10.5</price></closed_auction>
        <closed_auction><buyer person="p1"/><seller/><price>20.0</price></closed_auction>
        <closed_auction><buyer person="p2"/><seller/><price>30.0</price></closed_auction>
    </auction>"#;
    e.bind_document("auction.xml", doc).unwrap();
    e
}

fn bound_query() -> String {
    format!("let $auction := doc('auction.xml') return {QUERY}")
}

#[test]
fn p2_results_agree_across_modes() {
    let e = engine();
    let mut results = Vec::new();
    for mode in ExecutionMode::ALL {
        let out = e
            .prepare(&bound_query(), &CompileOptions::mode(mode))
            .unwrap()
            .run_to_string(&e)
            .unwrap_or_else(|err| panic!("{mode:?}: {err}"));
        results.push(out);
    }
    for w in results.windows(2) {
        assert_eq!(w[0], w[1]);
    }
    // Ann bought two auctions (two validated USSellers), Bob one, Cid none.
    assert_eq!(
        results[0],
        "<item person=\"Ann\">2</item><item person=\"Bob\">1</item><item person=\"Cid\">0</item>"
    );
}

#[test]
fn p2_plan_contains_papers_operators() {
    let e = engine();
    let p = e
        .prepare(
            &bound_query(),
            &CompileOptions::mode(ExecutionMode::OptimHashJoin),
        )
        .unwrap();
    let plan = p.explain();
    for op in [
        "GroupBy",
        "LOuterJoin",
        "MapIndexStep",
        "TypeAssert",
        "Validate",
    ] {
        assert!(plan.contains(op), "P2 must contain {op}:\n{plan}");
    }
    let stats = p.rewrite_stats().unwrap();
    for rule in [
        "insert group-by",
        "map through group-by",
        "remove duplicate null",
        "insert outer-join",
    ] {
        assert!(stats.count(rule) >= 1, "rule {rule} must fire: {stats:?}");
    }
}

#[test]
fn type_assertion_fails_without_validation() {
    // Without `validate`, the nested block yields untyped elements that do
    // not satisfy `element(*,Auction)*` — the TypeAssert must raise XPDY0050
    // in every mode.
    let e = engine();
    let q = "let $auction := doc('auction.xml') return \
             for $p in $auction//person \
             let $a as element(*,Auction)* := \
                for $t in $auction//closed_auction \
                where $t/buyer/@person = $p/@id return $t \
             return count($a)";
    for mode in ExecutionMode::ALL {
        let r = e.prepare(q, &CompileOptions::mode(mode)).unwrap().run(&e);
        assert!(r.is_err(), "{mode:?} must fail the type assertion");
    }
}

#[test]
fn validation_provides_typed_values() {
    // After validation, price atomizes to xs:decimal: arithmetic works
    // without explicit casts.
    let e = engine();
    let q = "let $auction := doc('auction.xml') return \
             sum(for $t in $auction//closed_auction return \
                 data(validate { $t }/price))";
    let out = e.execute_to_string(q).unwrap();
    assert_eq!(out, "60.5");
}
