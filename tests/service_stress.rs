//! Concurrent query-service suite: N-thread XMark runs must be
//! result-identical to single-threaded execution; overload must shed with
//! `XQRG0007` instead of deadlocking; randomized cancellation under tight
//! budgets must only ever surface the stable `XQRG*` codes; and cancelled
//! mid-spill queries must leave no orphan spill directories behind.
//!
//! The second half (`mod failpoints`, compiled with
//! `--features failpoints`) drives the deterministic fault paths: the
//! `service::admit` / `service::dispatch` injection sites, transient
//! `doc::load` failures absorbed by the retry policy, the circuit breaker
//! tripping and half-opening on schedule, and a seeded chaos run at 2x
//! capacity.

use std::path::PathBuf;
use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::Duration;

use xqr::engine::{
    CompileOptions, Engine, EngineError, Limits, QueryRequest, QueryService, ServiceConfig,
};
use xqr_xmark::{generate, query, GenOptions, QUERY_COUNT};

/// Every test serializes on one lock: the failpoint registry and the
/// process metrics are global, and a fault injected by one test must not
/// leak into another test's service.
fn lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

fn err_code(e: &EngineError) -> String {
    match e {
        EngineError::Dynamic(x) => x.code.to_string(),
        EngineError::Syntax(_) => "SYNTAX".to_string(),
        EngineError::LimitExceeded { code, .. } => code.to_string(),
        EngineError::Internal { .. } => "INTERNAL".to_string(),
    }
}

/// Deterministic rng for the randomized-cancellation schedules.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn scratch_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("xqr-service-test-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

fn entries(dir: &PathBuf) -> usize {
    match std::fs::read_dir(dir) {
        Ok(rd) => rd.count(),
        Err(_) => 0,
    }
}

/// Single-threaded reference answers for all twenty XMark queries.
fn reference_answers(xml: &str) -> Vec<String> {
    let mut e = Engine::new();
    e.bind_document("auction.xml", xml).expect("auction parses");
    (1..=QUERY_COUNT)
        .map(|n| {
            e.prepare(query(n), &CompileOptions::default())
                .unwrap_or_else(|err| panic!("Q{n} prepare: {err}"))
                .run_to_string(&e)
                .unwrap_or_else(|err| panic!("Q{n} run: {err}"))
        })
        .collect()
}

/// The spilling canary from the spill differential suite: the join build
/// crosses the tiny watermark, and the trailing sort genuinely goes to
/// disk. Needs no document.
const SPILL_JOIN: &str = "for $x in (1 to 800), $y in (1 to 800) \
                          where $x = $y order by $y descending return $y";

#[test]
fn concurrent_xmark_matches_single_threaded() {
    let _l = lock();
    let xml = generate(&GenOptions::for_bytes(80_000));
    let expected = reference_answers(&xml);
    let svc = QueryService::new(ServiceConfig {
        workers: 4,
        queue_capacity: 64,
        ..ServiceConfig::default()
    });
    svc.bind_document("auction.xml", xml);
    std::thread::scope(|s| {
        for t in 0..4 {
            let svc = &svc;
            let expected = &expected;
            s.spawn(move || {
                // Each thread walks the queries at a different offset so
                // all shapes are in flight together.
                for i in 0..QUERY_COUNT {
                    let n = 1 + (i + t * 5) % QUERY_COUNT;
                    let out = svc
                        .run(QueryRequest::new(query(n)))
                        .unwrap_or_else(|err| panic!("thread {t} Q{n}: {err}"));
                    assert_eq!(out.xml, expected[n - 1], "thread {t} Q{n} diverged");
                }
            });
        }
    });
}

#[test]
fn randomized_cancellation_yields_only_stable_codes() {
    let _l = lock();
    let xml = generate(&GenOptions::for_bytes(60_000));
    let expected = reference_answers(&xml);
    let svc = QueryService::new(ServiceConfig {
        workers: 3,
        queue_capacity: 64,
        ..ServiceConfig::default()
    });
    svc.bind_document("auction.xml", xml);
    std::thread::scope(|s| {
        for t in 0..3u64 {
            let svc = &svc;
            let expected = &expected;
            s.spawn(move || {
                let mut rng = 0xC0FF_EE00 + t;
                for i in 0..QUERY_COUNT {
                    let n = 1 + (i + t as usize * 7) % QUERY_COUNT;
                    // Tight-ish budgets: random low tuple caps and short
                    // deadlines mix budget trips into the run.
                    let mut limits = Limits::none();
                    match splitmix(&mut rng) % 4 {
                        0 => limits = limits.with_max_tuples(1 + splitmix(&mut rng) % 5_000),
                        1 => {
                            limits = limits.with_deadline(Duration::from_micros(
                                1 + splitmix(&mut rng) % 3_000,
                            ))
                        }
                        _ => {}
                    }
                    let req = QueryRequest::new(query(n))
                        .with_options(CompileOptions::default().limits(limits));
                    let ticket = match svc.submit(req) {
                        Ok(tk) => tk,
                        Err(e) => {
                            assert_eq!(err_code(&e), "XQRG0007", "unexpected submit error {e}");
                            continue;
                        }
                    };
                    // Randomized cancellation: some immediately, some
                    // after a short delay, some never.
                    match splitmix(&mut rng) % 3 {
                        0 => ticket.cancel(),
                        1 => {
                            let token = ticket.token();
                            let delay = splitmix(&mut rng) % 2_000;
                            s.spawn(move || {
                                std::thread::sleep(Duration::from_micros(delay));
                                token.cancel();
                            });
                        }
                        _ => {}
                    }
                    match ticket.wait() {
                        Ok(out) => {
                            assert_eq!(out.xml, expected[n - 1], "thread {t} Q{n} diverged")
                        }
                        Err(e) => {
                            let code = err_code(&e);
                            assert!(
                                matches!(
                                    code.as_str(),
                                    "XQRG0001" | "XQRG0002" | "XQRG0003" | "XQRG0007"
                                ),
                                "thread {t} Q{n}: unstable error {code}: {e}"
                            );
                        }
                    }
                }
            });
        }
    });
}

#[test]
fn overload_sheds_queue_overflow_and_recovers() {
    let _l = lock();
    let before = Engine::new().metrics_snapshot();
    let svc = QueryService::new(ServiceConfig {
        workers: 1,
        queue_capacity: 2,
        ..ServiceConfig::default()
    });
    // Stall the single worker in its document sync until released.
    let (permit_tx, permit_rx) = std::sync::mpsc::channel::<()>();
    let permit_rx = Mutex::new(permit_rx);
    svc.register_document("gate.xml");
    svc.set_loader(move |_| {
        let _ = permit_rx.lock().unwrap().recv();
        Ok("<gate/>".to_string())
    });
    let first = svc.submit(QueryRequest::new("1")).unwrap();
    // Wait until the worker holds `first`, then fill the queue exactly.
    while svc.queue_depth() > 0 {
        std::thread::yield_now();
    }
    let queued: Vec<_> = (0..2)
        .map(|i| svc.submit(QueryRequest::new(format!("{i} + 10"))).unwrap())
        .collect();
    // 2x the sustainable load: every further submission is shed, fast.
    let mut sheds = 0;
    for _ in 0..6 {
        match svc.submit(QueryRequest::new("2")) {
            Err(e) => {
                assert_eq!(err_code(&e), "XQRG0007");
                sheds += 1;
            }
            Ok(t) => drop(t.wait()),
        }
    }
    assert_eq!(sheds, 6, "queue was full: every overflow submission sheds");
    permit_tx.send(()).unwrap();
    // The shed submissions did not wedge anything: the admitted ones all
    // complete once the gate opens.
    assert_eq!(first.wait().unwrap().xml, "1");
    for (i, t) in queued.into_iter().enumerate() {
        assert_eq!(t.wait().unwrap().xml, (i + 10).to_string());
    }
    // Satellite: the service counters surface through the engine metrics
    // facade, and deltas account for this test's traffic.
    let after = Engine::new().metrics_snapshot();
    assert!(after.service_admitted >= before.service_admitted + 3);
    assert!(after.service_shed >= before.service_shed + 6);
    let text = Engine::new().metrics_text();
    assert!(text.contains("service_admitted"), "{text}");
    assert!(text.contains("service_shed"), "{text}");
    assert!(text.contains("breaker_trips"), "{text}");
    let json = Engine::new().metrics_json();
    assert!(json.contains("\"service_shed\""), "{json}");
}

#[test]
fn cancelled_spilling_queries_leave_no_orphan_dirs() {
    let _l = lock();
    let dir = scratch_dir("cancel-spill");
    let before = Engine::new().metrics_snapshot().queries_spilled;
    let limits = Limits::none()
        .with_max_bytes(4 * 1024)
        .with_spill_dir(dir.clone());
    {
        let svc = QueryService::new(ServiceConfig {
            workers: 3,
            queue_capacity: 32,
            ..ServiceConfig::default()
        });
        let mut rng = 0xDEAD_BEEF_u64;
        let mut tickets = Vec::new();
        for _ in 0..12 {
            let req = QueryRequest::new(SPILL_JOIN)
                .with_options(CompileOptions::default().limits(limits.clone()));
            tickets.push(svc.submit(req).unwrap());
        }
        for ticket in tickets {
            // Cancel roughly half of the queries at random points — some
            // mid-spill, some queued, some already done. Every outcome
            // must still remove the per-query spill directory.
            if splitmix(&mut rng).is_multiple_of(2) {
                std::thread::sleep(Duration::from_micros(splitmix(&mut rng) % 4_000));
                ticket.cancel();
            }
            match ticket.wait() {
                Ok(out) => assert!(out.xml.starts_with("800 799"), "{}", out.xml),
                Err(e) => {
                    let code = err_code(&e);
                    assert!(
                        matches!(code.as_str(), "XQRG0002"),
                        "unexpected error {code}: {e}"
                    );
                }
            }
        }
    } // drop: workers joined, every in-flight SpillManager dropped
    assert!(
        Engine::new().metrics_snapshot().queries_spilled > before,
        "the canary must actually spill for this test to mean anything"
    );
    assert_eq!(
        entries(&dir),
        0,
        "cancelled spilling queries must not orphan spill directories"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[cfg(feature = "failpoints")]
mod failpoints {
    use super::*;
    use xqr::engine::BreakerConfig;
    use xqr_xml::failpoint::{self, FailGuard};

    #[test]
    fn admit_failpoint_rejects_at_submission() {
        let _l = lock();
        failpoint::clear();
        let svc = QueryService::new(ServiceConfig::default());
        {
            let _g = FailGuard::new("service::admit", "err(1)").unwrap();
            let err = svc.submit(QueryRequest::new("1")).unwrap_err();
            assert_eq!(err_code(&err), "XQRFP01");
        }
        assert_eq!(svc.run(QueryRequest::new("1")).unwrap().xml, "1");
    }

    #[test]
    fn dispatch_failpoint_fails_one_query_worker_survives() {
        let _l = lock();
        failpoint::clear();
        let svc = QueryService::new(ServiceConfig {
            workers: 1,
            ..ServiceConfig::default()
        });
        {
            let _g = FailGuard::new("service::dispatch", "err(1)").unwrap();
            let err = svc.run(QueryRequest::new("1")).unwrap_err();
            assert_eq!(err_code(&err), "XQRFP01");
        }
        assert_eq!(svc.run(QueryRequest::new("2")).unwrap().xml, "2");
    }

    #[test]
    fn transient_doc_load_failures_are_retried() {
        let _l = lock();
        failpoint::clear();
        let before = Engine::new().metrics_snapshot().transient_retries;
        let svc = QueryService::new(ServiceConfig {
            workers: 1,
            ..ServiceConfig::default()
        });
        svc.register_document("flaky.xml");
        svc.set_loader(|_| Ok("<r><a/><a/></r>".to_string()));
        let _g = FailGuard::new("doc::load", "err(2)").unwrap();
        let out = svc
            .run(QueryRequest::new("count(doc('flaky.xml')//a)"))
            .unwrap();
        assert_eq!(out.xml, "2");
        let after = Engine::new().metrics_snapshot().transient_retries;
        assert!(
            after >= before + 2,
            "two injected failures must be metered as retries"
        );
    }

    #[test]
    fn exhausted_doc_load_surfaces_fodc0002() {
        let _l = lock();
        failpoint::clear();
        let svc = QueryService::new(ServiceConfig {
            workers: 1,
            ..ServiceConfig::default()
        });
        svc.register_document("down.xml");
        svc.set_loader(|_| Ok("<r/>".to_string()));
        let _g = FailGuard::new("doc::load", "err(1000)").unwrap();
        let err = svc.run(QueryRequest::new("doc('down.xml')")).unwrap_err();
        assert_eq!(err_code(&err), "FODC0002");
    }

    #[test]
    fn breaker_trips_then_half_opens_then_closes() {
        let _l = lock();
        failpoint::clear();
        let before = Engine::new().metrics_snapshot();
        let svc = QueryService::new(ServiceConfig {
            workers: 1,
            breaker: BreakerConfig {
                failure_threshold: 2,
                cooldown: Duration::from_millis(50),
                enabled: true,
            },
            ..ServiceConfig::default()
        });
        let q = "sum(1 to 10)";
        {
            // Two executions panic at the execute phase: both are caught
            // at the worker's isolation boundary as internal errors, and
            // the second trips the breaker for this query shape.
            let _g = FailGuard::new("phase::execute", "panic").unwrap();
            for _ in 0..2 {
                let err = svc.run(QueryRequest::new(q)).unwrap_err();
                assert!(matches!(err, EngineError::Internal { .. }), "{err}");
            }
        }
        // Open: fast-fails without executing (the failpoint is gone, so
        // an execution would succeed — the breaker refuses anyway).
        let err = svc.run(QueryRequest::new(q)).unwrap_err();
        assert_eq!(err_code(&err), "XQRG0008");
        assert_eq!(svc.open_breakers(), 1);
        // Other shapes are unaffected while this one cools down.
        assert_eq!(svc.run(QueryRequest::new("1 + 1")).unwrap().xml, "2");
        // After the cooldown the half-open probe runs for real and its
        // success closes the breaker.
        std::thread::sleep(Duration::from_millis(60));
        assert_eq!(svc.run(QueryRequest::new(q)).unwrap().xml, "55");
        assert_eq!(svc.open_breakers(), 0);
        assert_eq!(svc.run(QueryRequest::new(q)).unwrap().xml, "55");
        let after = Engine::new().metrics_snapshot();
        assert!(after.breaker_trips > before.breaker_trips);
        assert!(after.breaker_fast_fails > before.breaker_fast_fails);
    }

    #[test]
    fn failed_probe_reopens_the_breaker() {
        let _l = lock();
        failpoint::clear();
        let svc = QueryService::new(ServiceConfig {
            workers: 1,
            breaker: BreakerConfig {
                failure_threshold: 1,
                cooldown: Duration::from_millis(40),
                enabled: true,
            },
            ..ServiceConfig::default()
        });
        let q = "count((1, 2, 3))";
        let _g = FailGuard::new("phase::execute", "panic").unwrap();
        // Threshold 1: the first internal failure trips the breaker.
        assert!(svc.run(QueryRequest::new(q)).is_err());
        assert_eq!(
            err_code(&svc.run(QueryRequest::new(q)).unwrap_err()),
            "XQRG0008"
        );
        std::thread::sleep(Duration::from_millis(50));
        // The probe still panics: re-opened for another full cooldown.
        let err = svc.run(QueryRequest::new(q)).unwrap_err();
        assert!(matches!(err, EngineError::Internal { .. }), "{err}");
        assert_eq!(
            err_code(&svc.run(QueryRequest::new(q)).unwrap_err()),
            "XQRG0008"
        );
    }

    /// Seeded chaos at 2x capacity: slow dispatches, random cancels, and
    /// injected faults. The service must keep shedding `XQRG0007` (never
    /// deadlock) and every reply must carry a stable code.
    #[test]
    fn chaos_at_double_capacity_sheds_instead_of_deadlocking() {
        let _l = lock();
        failpoint::clear();
        let before = Engine::new().metrics_snapshot();
        let svc = QueryService::new(ServiceConfig {
            workers: 2,
            queue_capacity: 4,
            ..ServiceConfig::default()
        });
        // Every dispatch stalls 5 ms: 2 workers drain ~400 qps; the
        // submission loop below offers far more than 2x that.
        let _slow = FailGuard::new("service::dispatch", "delay(5)").unwrap();
        let mut rng = 0x5EED_5EED_u64;
        let mut shed = 0u32;
        let mut completed = 0u32;
        let mut tickets = Vec::new();
        for i in 0..60 {
            match svc.submit(QueryRequest::new(format!("{i} * 2"))) {
                Ok(t) => {
                    if splitmix(&mut rng).is_multiple_of(5) {
                        t.cancel();
                    }
                    tickets.push((i, t));
                }
                Err(e) => {
                    assert_eq!(err_code(&e), "XQRG0007", "{e}");
                    shed += 1;
                }
            }
            // Drain finished tickets opportunistically so the submission
            // rate stays ahead of the workers without unbounded waiting.
            if splitmix(&mut rng).is_multiple_of(4) {
                std::thread::sleep(Duration::from_micros(500));
            }
        }
        for (i, t) in tickets {
            match t.wait() {
                Ok(out) => {
                    assert_eq!(out.xml, (i * 2).to_string());
                    completed += 1;
                }
                Err(e) => {
                    let code = err_code(&e);
                    assert!(
                        matches!(code.as_str(), "XQRG0002" | "XQRG0007"),
                        "unstable chaos outcome {code}: {e}"
                    );
                }
            }
        }
        assert!(shed > 0, "2x overload must shed at least once");
        assert!(completed > 0, "the service must still make progress");
        let after = Engine::new().metrics_snapshot();
        assert!(after.service_shed >= before.service_shed + shed as u64);
    }
}
