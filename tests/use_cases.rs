//! A selection of the W3C *XML Query Use Cases* (the suite the paper's
//! regression tests include), adapted to this engine, each checked across
//! all execution modes.

use xqr::engine::{CompileOptions, Engine, ExecutionMode};

const BIB: &str = r#"<bib>
  <book year="1994"><title>TCP/IP Illustrated</title>
    <author><last>Stevens</last><first>W.</first></author>
    <publisher>Addison-Wesley</publisher><price>65.95</price></book>
  <book year="1992"><title>Advanced Programming in the Unix environment</title>
    <author><last>Stevens</last><first>W.</first></author>
    <publisher>Addison-Wesley</publisher><price>65.95</price></book>
  <book year="2000"><title>Data on the Web</title>
    <author><last>Abiteboul</last><first>Serge</first></author>
    <author><last>Buneman</last><first>Peter</first></author>
    <author><last>Suciu</last><first>Dan</first></author>
    <publisher>Morgan Kaufmann Publishers</publisher><price>39.95</price></book>
  <book year="1999"><title>The Economics of Technology and Content for Digital TV</title>
    <author><last>Gerbarg</last><first>Darcy</first></author>
    <publisher>Kluwer Academic Publishers</publisher><price>129.95</price></book>
</bib>"#;

const REVIEWS: &str = r#"<reviews>
  <entry><title>Data on the Web</title><price>34.95</price>
    <review>A very good discussion of semi-structured database systems and XML.</review></entry>
  <entry><title>Advanced Programming in the Unix environment</title><price>65.95</price>
    <review>A clear and detailed discussion of UNIX programming.</review></entry>
  <entry><title>TCP/IP Illustrated</title><price>65.95</price>
    <review>One of the best books on TCP/IP.</review></entry>
</reviews>"#;

fn engine() -> Engine {
    let mut e = Engine::new();
    e.bind_document("bib.xml", BIB).unwrap();
    e.bind_document("reviews.xml", REVIEWS).unwrap();
    e
}

fn check(q: &str, expected: &str) {
    let e = engine();
    for mode in ExecutionMode::ALL {
        let out = e
            .prepare(q, &CompileOptions::mode(mode))
            .unwrap_or_else(|err| panic!("{mode:?} prepare {q:?}: {err}"))
            .run_to_string(&e)
            .unwrap_or_else(|err| panic!("{mode:?} run {q:?}: {err}"));
        assert_eq!(out, expected, "{mode:?}: {q}");
    }
}

/// XMP Q1: books published by Addison-Wesley after 1991.
#[test]
fn xmp_q1() {
    check(
        "<bib>{ for $b in doc('bib.xml')/bib/book \
                where $b/publisher = 'Addison-Wesley' and $b/@year > 1991 \
                return <book year=\"{ $b/@year }\">{ $b/title }</book> }</bib>",
        "<bib><book year=\"1994\"><title>TCP/IP Illustrated</title></book>\
         <book year=\"1992\"><title>Advanced Programming in the Unix environment</title></book></bib>",
    );
}

/// XMP Q2: flat title/author pairs.
#[test]
fn xmp_q2() {
    let e = engine();
    let out = e
        .execute(
            "for $b in doc('bib.xml')/bib/book, $t in $b/title, $a in $b/author \
             return <result>{ $t }{ $a }</result>",
        )
        .unwrap();
    assert_eq!(out.len(), 6, "one result per (title, author) pair");
}

/// XMP Q3: title + all authors, per book.
#[test]
fn xmp_q3() {
    let e = engine();
    let out = e
        .execute(
            "for $b in doc('bib.xml')/bib/book return <result>{ $b/title }{ $b/author }</result>",
        )
        .unwrap();
    assert_eq!(out.len(), 4);
}

/// XMP Q4: group books by author (join on nested structure).
#[test]
fn xmp_q4_author_grouping() {
    let e = engine();
    let q = "<results>{ \
               for $last in distinct-values(doc('bib.xml')//author/last/text()) \
               order by $last \
               return <result><author>{ $last }</author>\
                 { for $b in doc('bib.xml')/bib/book \
                   where $b/author/last = $last \
                   return $b/title }</result> }</results>";
    let out = e.execute_to_string(q).unwrap();
    assert!(out.contains("<author>Stevens</author><title>TCP/IP Illustrated</title>"));
    // Stevens has two books in one group.
    let stevens = out.split("Stevens").nth(1).unwrap();
    assert!(stevens.contains("Advanced Programming"));
    // Agreement across modes.
    for mode in ExecutionMode::ALL {
        let o2 = e
            .prepare(q, &CompileOptions::mode(mode))
            .unwrap()
            .run_to_string(&e)
            .unwrap();
        assert_eq!(o2, out, "{mode:?}");
    }
}

/// XMP Q5: join between bib and reviews on title.
#[test]
fn xmp_q5_two_document_join() {
    let q = "for $b in doc('bib.xml')/bib/book, \
                 $e in doc('reviews.xml')/reviews/entry \
             where $b/title/text() = $e/title/text() \
             order by $b/title/text() \
             return <book-with-prices>{ $b/title }\
                    <price-review>{ $e/price/text() }</price-review>\
                    <price>{ $b/price/text() }</price></book-with-prices>";
    check(
        q,
        "<book-with-prices><title>Advanced Programming in the Unix environment</title>\
         <price-review>65.95</price-review><price>65.95</price></book-with-prices>\
         <book-with-prices><title>Data on the Web</title>\
         <price-review>34.95</price-review><price>39.95</price></book-with-prices>\
         <book-with-prices><title>TCP/IP Illustrated</title>\
         <price-review>65.95</price-review><price>65.95</price></book-with-prices>",
    );
}

/// XMP Q6: books with more than one author use positional/filter logic.
#[test]
fn xmp_q6_multi_author_books() {
    check(
        "for $b in doc('bib.xml')//book where count($b/author) > 1 \
         return <multi>{ $b/title/text() }</multi>",
        "<multi>Data on the Web</multi>",
    );
}

/// XMP Q12 (adapted): books priced between bounds, arithmetic on decimals.
#[test]
fn price_arithmetic() {
    check(
        "round(sum(for $b in doc('bib.xml')//book return $b/price))",
        "302",
    );
    check(
        "for $b in doc('bib.xml')//book where $b/price < 40 return $b/title/text()",
        "Data on the Web",
    );
}

/// Conditional + typeswitch over heterogeneous content.
#[test]
fn typeswitch_use_case() {
    check(
        "for $x in (1, 'two', 3.5) \
         return typeswitch ($x) \
                case $i as xs:integer return <int>{ $i }</int> \
                case $s as xs:string return <str>{ $s }</str> \
                default $d return <other>{ $d }</other>",
        "<int>1</int><str>two</str><other>3.5</other>",
    );
}

/// Quantifiers over document content.
#[test]
fn quantifier_use_case() {
    check(
        "if (some $b in doc('bib.xml')//book satisfies $b/price > 100) \
         then 'expensive exists' else 'all cheap'",
        "expensive exists",
    );
    check(
        "every $b in doc('bib.xml')//book satisfies exists($b/author)",
        "true",
    );
}

/// Sequence/aggregate functions over node content.
#[test]
fn aggregates_use_case() {
    check("count(doc('bib.xml')//author)", "6");
    check(
        "count(distinct-values(doc('bib.xml')//author/last/text()))",
        "5",
    );
    check(
        "min(for $b in doc('bib.xml')//book return xs:decimal($b/price))",
        "39.95",
    );
}

/// Computed constructors + dynamic names.
#[test]
fn computed_constructor_use_case() {
    check(
        "for $b in doc('bib.xml')/bib/book[1] \
         return element { concat('book-', $b/@year) } { $b/title/text() }",
        "<book-1994>TCP/IP Illustrated</book-1994>",
    );
}

/// Node identity and order comparisons.
#[test]
fn node_comparisons() {
    check(
        "let $first := doc('bib.xml')//book[1] \
         let $again := doc('bib.xml')//book[@year = '1994'] \
         return ($first is $again, $first << doc('bib.xml')//book[2])",
        "true true",
    );
}
