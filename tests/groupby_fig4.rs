//! End-to-end reproduction of the paper's **Figure 4** through the public
//! API: the Section 5 example query compiles into the GroupBy/LOuterJoin
//! plan and produces exactly the outputs the figure lists.

use xqr::engine::{CompileOptions, Engine, ExecutionMode};

const QUERY: &str = "for $x in (1,1,3) \
                     let $a := avg(for $y in (1,2) where $x <= $y return $y * 10) \
                     return ($x, $a)";

#[test]
fn figure4_outputs() {
    let e = Engine::new();
    for mode in ExecutionMode::ALL {
        let out = e
            .prepare(QUERY, &CompileOptions::mode(mode))
            .unwrap()
            .run_to_string(&e)
            .unwrap();
        // Output rows of Fig. 4: (x=1, a=15), (x=1, a=15), (x=3, a=()).
        assert_eq!(out, "1 15 1 15 3", "{mode:?}");
    }
}

#[test]
fn figure4_plan_shape() {
    let e = Engine::new();
    let p = e
        .prepare(QUERY, &CompileOptions::mode(ExecutionMode::OptimHashJoin))
        .unwrap();
    let plan = p.explain();
    for op in ["GroupBy", "LOuterJoin", "MapIndexStep", "avg"] {
        assert!(plan.contains(op), "expected {op} in:\n{plan}");
    }
    // The fully unnested plan has no dependent joins left.
    assert!(
        !plan.contains("MapConcat"),
        "no dependent joins left:\n{plan}"
    );
}

#[test]
fn index_field_distinguishes_duplicate_values() {
    // The two occurrences of x=1 must yield two output rows — the index
    // field, not the value of x, drives the partitioning.
    let e = Engine::new();
    let out = e
        .execute(
            "for $x in (5,5,5) let $a := count(for $y in (1) where $x = 5 return $y) return $a",
        )
        .unwrap();
    assert_eq!(out.len(), 3);
}
