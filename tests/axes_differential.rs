//! Differential suite for the structural path kernels (DESIGN.md §4d).
//!
//! The indexed `tree_join` must agree with the naive per-node reference
//! walk (`axes::naive`, the pre-index implementation kept behind the
//! `naive-axes` feature) on every axis and node-test combination, over
//! random documents and random step chains. At the engine level, pipelined
//! (streaming `TreeJoin` cursor) and materialized execution must produce
//! identical results on random path queries, and under tight governor
//! budgets may differ only in *where* a resource limit fires — any
//! divergence must be a governor limit code on both sides (or a limit on
//! one side where the other completed within budget).

use proptest::prelude::*;
use xqr::engine::{CompileOptions, Engine, EngineError, ExecutionMode};
use xqr::xml::axes::{self, Axis, KindTest, NameTest, NodeTest};
use xqr::xml::node::TrivialHierarchy;
use xqr::xml::{parse_document, Limits, ParseOptions, Sequence};

const ALL_AXES: [Axis; 12] = [
    Axis::Child,
    Axis::Descendant,
    Axis::DescendantOrSelf,
    Axis::Attribute,
    Axis::SelfAxis,
    Axis::Parent,
    Axis::Ancestor,
    Axis::AncestorOrSelf,
    Axis::FollowingSibling,
    Axis::PrecedingSibling,
    Axis::Following,
    Axis::Preceding,
];

/// Node tests exercising every compiled-test shape: kind-only, interned
/// name (present and absent), wildcard, generic, and attribute kind tests.
fn test_pool(i: usize) -> NodeTest {
    match i {
        0 => NodeTest::Kind(KindTest::AnyKind),
        1 => NodeTest::Name(NameTest::local("a")),
        2 => NodeTest::Name(NameTest::local("b")),
        3 => NodeTest::Name(NameTest::any()),
        4 => NodeTest::Kind(KindTest::Text),
        5 => NodeTest::Kind(KindTest::Attribute(Some(NameTest::local("i")), None)),
        _ => NodeTest::Name(NameTest::local("nosuchname")),
    }
}

/// Random tree over a small tag alphabet (so name tests actually match),
/// with attributes, text, and comments mixed in.
fn arb_xml_tree() -> impl Strategy<Value = String> {
    let leaf = prop_oneof![
        "[a-z]{1,6}".prop_map(|t| t),
        Just("<b/>".to_string()),
        "[a-z]{1,4}".prop_map(|v| format!("<c i=\"{v}\"/>")),
        Just("<!--note-->".to_string()),
    ];
    leaf.prop_recursive(4, 32, 4, |inner| {
        (prop::collection::vec(inner, 0..4), 0usize..4, 0u8..3).prop_map(
            |(children, name, nattr)| {
                let name = ["a", "b", "c", "d"][name];
                let attrs = match nattr {
                    0 => "",
                    1 => " i=\"1\"",
                    _ => " i=\"1\" j=\"2\"",
                };
                format!("<{name}{attrs}>{}</{name}>", children.join(""))
            },
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Library level: the indexed kernels equal the naive reference after
    /// every step of a random chain (so intermediate results — which feed
    /// the next step's context set — agree too, on all 12 axes).
    #[test]
    fn indexed_equals_naive_on_random_chains(
        tree in arb_xml_tree(),
        chain in prop::collection::vec((0usize..12, 0usize..7), 1..4),
    ) {
        let doc = format!("<r>{tree}</r>");
        let parsed = parse_document(&doc, &ParseOptions::default()).unwrap();
        let mut cur = Sequence::singleton(parsed.root());
        for (ai, ti) in chain {
            let axis = ALL_AXES[ai];
            let test = test_pool(ti);
            let indexed = axes::tree_join(&cur, axis, &test, &TrivialHierarchy).unwrap();
            let naive = axes::naive::tree_join(&cur, axis, &test, &TrivialHierarchy).unwrap();
            prop_assert_eq!(
                indexed.len(),
                naive.len(),
                "axis {:?} test {:?} on {}",
                axis,
                &test,
                &doc
            );
            for (x, y) in indexed.iter().zip(naive.iter()) {
                prop_assert!(
                    x.as_node().unwrap().same_node(y.as_node().unwrap()),
                    "axis {:?} test {:?}: node mismatch on {}",
                    axis,
                    &test,
                    &doc
                );
            }
            cur = indexed;
        }
    }

    /// Library level: every single node of a random document as a lone
    /// context, all axes — catches per-context edge cases (attribute
    /// contexts, root contexts) that chained steps rarely produce.
    #[test]
    fn indexed_equals_naive_per_node(tree in arb_xml_tree(), ti in 0usize..7) {
        let doc = format!("<r>{tree}</r>");
        let parsed = parse_document(&doc, &ParseOptions::default()).unwrap();
        let root = parsed.root();
        let test = test_pool(ti);
        // All nodes including attributes, via the naive walk.
        let mut contexts = vec![root.clone()];
        let mut stack = vec![root];
        while let Some(n) = stack.pop() {
            for a in n.attributes() {
                contexts.push(a);
            }
            for c in n.children() {
                contexts.push(c.clone());
                stack.push(c);
            }
        }
        for axis in ALL_AXES {
            for ctx in &contexts {
                let s = Sequence::singleton(ctx.clone());
                let indexed = axes::tree_join(&s, axis, &test, &TrivialHierarchy).unwrap();
                let naive = axes::naive::tree_join(&s, axis, &test, &TrivialHierarchy).unwrap();
                prop_assert_eq!(indexed.len(), naive.len(), "axis {:?} ctx {:?}", axis, ctx);
                for (x, y) in indexed.iter().zip(naive.iter()) {
                    prop_assert!(
                        x.as_node().unwrap().same_node(y.as_node().unwrap()),
                        "axis {:?} ctx {:?}",
                        axis,
                        ctx
                    );
                }
            }
        }
    }
}

// ===== engine level ========================================================

/// Node-test syntax valid on every axis.
const TEST_SYNTAX: [&str; 6] = ["node()", "a", "b", "*", "text()", "comment()"];

fn path_query(chain: &[(usize, usize)]) -> String {
    let mut q = String::from("doc(\"t.xml\")");
    for (ai, ti) in chain {
        q.push('/');
        q.push_str(ALL_AXES[*ai].name());
        q.push_str("::");
        q.push_str(TEST_SYNTAX[*ti]);
    }
    q
}

fn err_code(e: EngineError) -> String {
    match e {
        EngineError::Dynamic(x) => x.code.to_string(),
        EngineError::Syntax(_) => "SYNTAX".to_string(),
        EngineError::LimitExceeded { code, .. } => code.to_string(),
        EngineError::Internal { .. } => "INTERNAL".to_string(),
    }
}

fn outcome(e: &Engine, q: &str, opts: &CompileOptions) -> Result<String, String> {
    match e.prepare(q, opts) {
        Ok(p) => p.run_to_string(e).map_err(err_code),
        Err(err) => Err(err_code(err)),
    }
}

fn is_limit(code: &str) -> bool {
    xqr::xml::limits::is_limit_code(code)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Engine level: pipelined (streaming TreeJoin cursors) and fully
    /// materialized execution agree exactly on random path queries, both as
    /// bare paths and through the tuple pipeline (`for ... return`).
    #[test]
    fn strategies_agree_on_random_paths(
        tree in arb_xml_tree(),
        chain in prop::collection::vec((0usize..12, 0usize..6), 1..4),
    ) {
        let xml = format!("<r>{tree}</r>");
        let mut e = Engine::new();
        e.bind_document("t.xml", &xml).unwrap();
        let path = path_query(&chain);
        for q in [path.clone(), format!("for $x in {path} return $x")] {
            for mode in [ExecutionMode::AlgebraNoOptim, ExecutionMode::OptimHashJoin] {
                let p = outcome(&e, &q, &CompileOptions::mode(mode));
                let m = outcome(&e, &q, &CompileOptions::materialized(mode));
                prop_assert_eq!(&p, &m, "strategies disagree on {}", &q);
            }
        }
    }

    /// Engine level, tight budgets: the strategies interleave governor
    /// charges differently (streaming charges as nodes flow; set-at-a-time
    /// charges per context batch), so a limit may fire at different points
    /// — but any divergence must be a governor limit, never a wrong result
    /// or a non-limit error on one side only.
    #[test]
    fn budget_classes_agree_on_random_paths(
        tree in arb_xml_tree(),
        chain in prop::collection::vec((0usize..12, 0usize..6), 1..4),
        budget in 1u64..300,
    ) {
        let xml = format!("<r>{tree}</r>");
        let mut e = Engine::new();
        e.bind_document("t.xml", &xml).unwrap();
        let q = path_query(&chain);
        let limits = Limits::none().with_max_tuples(budget);
        let mode = ExecutionMode::OptimHashJoin;
        let p = outcome(&e, &q, &CompileOptions::mode(mode).limits(limits.clone()));
        let m = outcome(&e, &q, &CompileOptions::materialized(mode).limits(limits));
        match (&p, &m) {
            (Ok(a), Ok(b)) => prop_assert_eq!(a, b, "within budget, results differ: {}", &q),
            (Err(a), Err(b)) => prop_assert!(
                a == b || (is_limit(a) && is_limit(b)),
                "errors disagree beyond limit class on {}: {} vs {}",
                &q,
                a,
                b
            ),
            (Ok(_), Err(x)) | (Err(x), Ok(_)) => prop_assert!(
                is_limit(x),
                "one-sided non-limit error on {}: {}",
                &q,
                x
            ),
        }
    }
}

/// The `naive-axes` escape hatch is genuinely wired up: the reference
/// module is reachable from outside the crate (this test compiles only
/// because the root crate enables the feature for its tests).
#[test]
fn naive_reference_is_exposed() {
    let parsed = parse_document("<r><a/><b/></r>", &ParseOptions::default()).unwrap();
    let out = axes::naive::tree_join(
        &Sequence::singleton(parsed.root()),
        Axis::Descendant,
        &NodeTest::Name(NameTest::any()),
        &TrivialHierarchy,
    )
    .unwrap();
    assert_eq!(out.len(), 3);
}
