//! Breadth tests over the expression language: every construct the
//! compiler claims to cover, checked for agreement across all execution
//! modes (completeness is the paper's first requirement).

use xqr::engine::{CompileOptions, Engine, ExecutionMode};
use xqr::xml::Sequence;

fn check(q: &str, expected: &str) {
    check_with(Engine::new(), q, expected)
}

fn check_with(engine: Engine, q: &str, expected: &str) {
    for mode in ExecutionMode::ALL {
        let out = engine
            .prepare(q, &CompileOptions::mode(mode))
            .unwrap_or_else(|err| panic!("{mode:?} prepare {q:?}: {err}"))
            .run_to_string(&engine)
            .unwrap_or_else(|err| panic!("{mode:?} run {q:?}: {err}"));
        assert_eq!(out, expected, "{mode:?}: {q}");
    }
}

#[test]
fn sequences_and_ranges() {
    check("()", "");
    check("(1, (2, 3), ())", "1 2 3");
    check("1 to 4", "1 2 3 4");
    check("reverse(1 to 3)", "3 2 1");
    check("(5 to 4)", "");
    check("count((1 to 100)[. mod 7 = 0])", "14");
}

#[test]
fn arithmetic_corners() {
    check("-3 + 1", "-2");
    check("- -3", "3");
    check("2 + 3.5", "5.5");
    check("10 div 4", "2.5");
    check("10 idiv 4", "2");
    check("10 mod 4", "2");
    check("1.5 * 2", "3");
    check("1e1 * 2", "20");
    check("() + 1", "");
}

#[test]
fn comparison_corners() {
    check("1 = 1.0", "true");
    check("'abc' < 'abd'", "true");
    check("(1, 2) = (2, 3)", "true");
    check("() = ()", "false");
    check("(1, 2) != (1, 2)", "true"); // existential over distinct pairs
    check("1 eq 1", "true");
    check("'a' eq 'a'", "true");
}

#[test]
fn logic_and_ebv() {
    check("1 and 'x'", "true");
    check("0 or ''", "false");
    check("not(())", "true");
    check("boolean((<a/>))", "true");
    check("if ('') then 1 else 2", "2");
}

#[test]
fn flwor_shapes() {
    check(
        "for $x in (1, 2), $y in ($x, $x * 10) return $y",
        "1 10 2 20",
    );
    check(
        "for $x at $i in ('a', 'b', 'c') where $i mod 2 = 1 return $x",
        "a c",
    );
    check("let $x := 1, $y := $x + 1 return $y", "2");
    check(
        "for $x in (3, 1, 2) let $y := $x * 2 order by $y return $y",
        "2 4 6",
    );
    // Multi-key ordering, mixed directions.
    check(
        "for $p in ((1,9), (1,3), (0,5)) return () , \
         (for $x in (3, 1, 3, 2) order by $x descending, $x ascending return $x)",
        "3 3 2 1",
    );
    // where before let (clause order preserved).
    check(
        "for $x in (1, 2, 3) where $x > 1 \
         let $y := $x * $x where $y < 9 return $y",
        "4",
    );
}

#[test]
fn order_by_empty_handling() {
    // `for` flattens: () contributes no binding — bind via let instead.
    check(
        "for $p in (1, 2, 3) \
         let $k := (()[$p = 1], 5[$p = 2], 3[$p = 3]) \
         order by $k return string(count($k))",
        "0 1 1",
    );
    check(
        "for $p in (1, 2, 3) \
         let $k := (()[$p = 1], 5[$p = 2], 3[$p = 3]) \
         order by $k empty greatest return ($p, ':')",
        "3 : 2 : 1 :",
    );
}

#[test]
fn nested_quantifiers() {
    check(
        "some $x in (1, 2, 3) satisfies every $y in (1, 2) satisfies $x >= $y * $y - 1",
        "true",
    );
    check("every $x in () satisfies false()", "true");
    check("some $x in () satisfies true()", "false");
}

#[test]
fn recursion_and_functions() {
    check(
        "declare function local:fib($n as xs:integer) as xs:integer \
         { if ($n < 2) then $n else local:fib($n - 1) + local:fib($n - 2) }; \
         local:fib(12)",
        "144",
    );
    check(
        "declare function local:rev($s) \
         { if (empty($s)) then () else (local:rev(subsequence($s, 2)), $s[1]) }; \
         local:rev((1, 2, 3, 4))",
        "4 3 2 1",
    );
    // Mutual recursion.
    check(
        "declare function local:even($n as xs:integer) as xs:boolean \
         { if ($n = 0) then true() else local:odd($n - 1) }; \
         declare function local:odd($n as xs:integer) as xs:boolean \
         { if ($n = 0) then false() else local:even($n - 1) }; \
         local:even(10)",
        "true",
    );
}

#[test]
fn constructors_nested() {
    check(
        "<a>{ for $i in 1 to 3 return <b n=\"{$i}\">{$i * $i}</b> }</a>",
        "<a><b n=\"1\">1</b><b n=\"2\">4</b><b n=\"3\">9</b></a>",
    );
    check("<a>{ 1, 2 }{ 3 }</a>", "<a>1 2 3</a>"); // content seq concatenated, then spaced
    check("<a b=\"x{1+1}y\"/>", "<a b=\"x2y\"/>");
    check("comment { 'note' }", "<!--note-->");
    check("processing-instruction tgt { 'data' }", "<?tgt data?>");
    check("document { <r><c/></r> }/r/c instance of element()", "true");
}

#[test]
fn node_set_operators() {
    let mut e = Engine::new();
    e.bind_document("d.xml", "<r><a/><b/><c/></r>").unwrap();
    check_with(
        e,
        "let $r := doc('d.xml')/r \
         return (count($r/a | $r/b), count(($r/a, $r/b) intersect $r/a), \
                 count($r/* except $r/b))",
        "2 1 2",
    );
}

#[test]
fn type_operators() {
    check("5 instance of xs:integer", "true");
    check("5 instance of xs:decimal", "true"); // derivation
    check("5.0 instance of xs:integer", "false");
    check("(1, 2) instance of xs:integer+", "true");
    check("() instance of empty-sequence()", "true");
    check("'5' cast as xs:integer", "5");
    check("5 castable as xs:date", "false");
    check("'2001-01-01' castable as xs:date", "true");
    check("(3.7 treat as xs:decimal) + 1", "4.7");
}

#[test]
fn typeswitch_defaults() {
    check(
        "typeswitch (<e/>) case xs:integer return 'int' \
         case element() return 'elem' default return 'other'",
        "elem",
    );
    check(
        "typeswitch ((1, 2)) case xs:integer return 'one' \
         case xs:integer+ return 'many' default return 'other'",
        "many",
    );
}

#[test]
fn string_functions_via_modes() {
    check("upper-case('mIxEd')", "MIXED");
    check("concat('a', 1, 'b', ())", "a1b");
    check(
        "string-join(for $i in 1 to 3 return string($i), '-')",
        "1-2-3",
    );
    check("substring('hello world', 7)", "world");
    check("normalize-space('  a  b  ')", "a b");
    check("translate('bare', 'ae', 'or')", "borr"); // a→o, e→r
}

#[test]
fn positional_tricks() {
    check("(11 to 20)[last()]", "20");
    check("(11 to 20)[last() - 1]", "19");
    check("(11 to 20)[position() > 8]", "19 20");
    check("(11 to 20)[. > 18]", "19 20");
    check("((11 to 20)[2])[1]", "12");
}

#[test]
fn path_over_constructed_tree() {
    check(
        "count(<r>{ for $i in 1 to 4 return <x v=\"{$i}\"/> }</r>/x[@v >= 3])",
        "2",
    );
    // Predicates apply per context node: each <a> has a first <b>; the
    // two text nodes serialize adjacently (no space between nodes).
    check("<r><a><b>1</b></a><a><b>2</b></a></r>//b[1]/text()", "12");
}

#[test]
fn variables_shadowing() {
    check(
        "for $x in (1, 2) return (for $x in (10) return $x + 1)",
        "11 11",
    );
    check("let $x := 1 return (let $x := $x + 1 return $x)", "2");
}

#[test]
fn external_sequences() {
    let mut e = Engine::new();
    e.bind_variable("nums", Sequence::integers([4, 5, 6]));
    check_with(
        e,
        "declare variable $nums external; sum($nums) * count($nums)",
        "45",
    );
}

#[test]
fn deep_nesting_stress() {
    // Four levels of correlated nesting: exercises the full unnesting
    // cascade on plain sequences.
    check(
        "for $a in (1, 2) \
         let $x := for $b in (1, 2, 3) where $b >= $a \
                   let $y := for $c in (1, 2) where $c = $b return $c \
                   return count($y) \
         return sum($x)",
        "2 1",
    );
}
