//! Batched-vs-scalar differential suite: the vectorized kernels (fused,
//! type-specialized comparison evaluation — the pipelined default) must be
//! observationally identical to the row-at-a-time scalar path
//! (`CompileOptions::with_scalar_kernels`) — same serialized results, and
//! the same error codes where evaluation fails — on the XMark queries, a
//! fixed corpus stressing every kernel shape (fused predicates,
//! heterogeneous data that forces the per-row fallback, dynamic errors in
//! operand chains), randomly generated comparison-heavy FLWORs, and
//! governed runs (budget charging is per-tuple in both modes, so limit
//! codes must also agree).

use proptest::prelude::*;
use std::time::Duration;
use xqr::engine::{CompileOptions, Engine, EngineError, ExecutionMode, Limits};
use xqr_xmark::{generate, query, GenOptions, QUERY_COUNT};

/// Every mode that runs the algebra (NoAlgebra has no tuple pipeline, so
/// there is nothing to batch).
const ALGEBRA_MODES: [ExecutionMode; 4] = [
    ExecutionMode::AlgebraNoOptim,
    ExecutionMode::OptimNestedLoop,
    ExecutionMode::OptimHashJoin,
    ExecutionMode::OptimSortJoin,
];

fn err_code(e: EngineError) -> String {
    match e {
        EngineError::Dynamic(x) => x.code.to_string(),
        EngineError::Syntax(_) => "SYNTAX".to_string(),
        EngineError::LimitExceeded { code, .. } => code.to_string(),
        EngineError::Internal { .. } => "INTERNAL".to_string(),
    }
}

/// Runs to either the serialized result or the error code.
fn outcome(e: &Engine, q: &str, opts: &CompileOptions) -> Result<String, String> {
    match e.prepare(q, opts) {
        Ok(p) => p.run_to_string(e).map_err(err_code),
        Err(err) => Err(err_code(err)),
    }
}

fn assert_kernels_agree(e: &Engine, q: &str, label: &str) {
    for mode in ALGEBRA_MODES {
        let batched = outcome(e, q, &CompileOptions::mode(mode));
        let scalar = outcome(e, q, &CompileOptions::mode(mode).with_scalar_kernels());
        assert_eq!(
            batched, scalar,
            "{label}: batched and scalar kernels disagree under {mode:?}\nquery: {q}"
        );
    }
}

#[test]
fn xmark_q1_to_q20() {
    let xml = generate(&GenOptions::for_bytes(60_000));
    let mut e = Engine::new();
    e.bind_document("auction.xml", &xml)
        .expect("auction document parses");
    for n in 1..=QUERY_COUNT {
        assert_kernels_agree(&e, query(n), &format!("XMark Q{n}"));
    }
}

/// Mixed-type element content: numeric strings, plain strings, doubles,
/// empty elements. General comparisons over these exercise every branch of
/// the kernels — the typed fast lanes, the promotion rules, the
/// error-swallowing conversion semantics, and the per-row fallback.
const MIXED: &str = r#"<data>
  <row><a>1</a><b>10</b></row>
  <row><a>2.5</a><b>2</b></row>
  <row><a>abc</a><b>3</b></row>
  <row><a></a><b>4</b></row>
  <row><a>NaN</a><b>5</b></row>
  <row><b>6</b></row>
  <row><a>-0</a><b>0</b></row>
  <row><a>7</a><a>8</a><b>7.5</b></row>
</data>"#;

#[test]
fn fixed_corpus() {
    let mut e = Engine::new();
    e.bind_document("mixed.xml", MIXED).unwrap();
    let queries: &[&str] = &[
        // The exact fused join shape (Q11/Q12's predicate): a general
        // comparison whose inner operand is const-times-field arithmetic.
        "for $x in (1,2,3,4), $y in (10,20,30) \
         where $x * 10 >= $y return ($x, $y)",
        "for $x in (1.5, 2.5), $y in (1,2,3) where $x > $y return $x + $y",
        // Select-over-Call: predicate over one generator (SelectKernel).
        "for $x in (1,2,3,4,5) where $x * 3 > 7 return $x",
        "for $x in (0.5, 1.5, 2.5) where $x >= 1.5 return $x * 2",
        // Heterogeneous atomization: numeric strings vs numbers. The typed
        // lane must reject (or swallow) exactly what the scalar path does.
        "for $r in doc('mixed.xml')/data/row where $r/a > 3 return count($r/b)",
        "for $r in doc('mixed.xml')/data/row where $r/a = $r/b return $r/b/text()",
        "for $r in doc('mixed.xml')/data/row where number($r/a) <= 2.5 return $r/b/text()",
        // NaN never compares (except ne); negative zero equals zero.
        "for $x in (number('NaN'), 1) where $x = $x return $x",
        "for $x in (number('NaN'), 2) where $x != $x return 'nan'",
        "for $x in (-0.0, 1.0) where $x = 0 return 'zero'",
        // Empty sequences: general comparison is existential (empty is
        // never true), value comparison returns empty.
        "for $r in doc('mixed.xml')/data/row where $r/missing > 1 return $r",
        "for $r in doc('mixed.xml')/data/row where $r/a eq '1' return 1",
        // Multi-item operands: general comparison quantifies over both
        // sides; value comparison must raise the same code per row.
        "for $r in doc('mixed.xml')/data/row where $r/a = 8 return count($r/a)",
        "for $x in (1,2) where (1,2,3) = (3,4) return $x",
        // Dynamic errors inside fused operand chains must surface
        // identically (same code, same first-error semantics).
        "for $x in (1,2,3) where $x idiv 0 = 1 return $x",
        "for $x in (1,2) where exactly-one(()) = 1 return $x",
        "for $r in doc('mixed.xml')/data/row where exactly-one($r/a) = 7 return $r",
        "for $x in (1, 'two', 3) where $x lt 5 return $x",
        // Value comparisons (strict, never a typed lane) beside general.
        "for $x in (1,2,3) where $x eq 2 return $x",
        "for $x in ('a','b') where $x le 'a' return $x",
        // Comparison feeding construction (batch boundary at MapToItem).
        "<out>{ for $x in (1,2,3,4), $y in (2,4) where $x >= $y \
         return <p x='{$x}' y='{$y}'/> }</out>",
    ];
    for q in queries {
        assert_kernels_agree(&e, q, "fixed corpus");
    }
}

/// Budget charging is per-tuple in both kernel modes, so a governed run
/// must trip (or not trip) identically: same code when over budget, same
/// result when under.
#[test]
fn governed_budgets_agree() {
    let queries = [
        // Over a tight tuple budget: the cross product explodes.
        (
            "count(for $x in 1 to 200, $y in 1 to 200 where $x * 2 >= $y return 1)",
            Limits::none().with_max_tuples(500),
        ),
        // Under a roomy budget: results must match the ungoverned run too.
        (
            "count(for $x in 1 to 50, $y in 1 to 50 where $x >= $y return 1)",
            Limits::none()
                .with_max_tuples(1_000_000)
                .with_deadline(Duration::from_secs(30)),
        ),
    ];
    for mode in ALGEBRA_MODES {
        for (q, limits) in &queries {
            let e = Engine::new();
            let batched = outcome(&e, q, &CompileOptions::mode(mode).limits(limits.clone()));
            let scalar = outcome(
                &e,
                q,
                &CompileOptions::mode(mode)
                    .with_scalar_kernels()
                    .limits(limits.clone()),
            );
            assert_eq!(batched, scalar, "{mode:?} {q:?}");
        }
    }
}

// ===== randomized batched-vs-scalar property ================================

/// Comparison-heavy FLWOR generator: integer and decimal-string data so
/// batches land in the typed lanes and mixed data forces fallback; all six
/// operators; fused const-arithmetic operand chains.
fn comparison_flwor() -> impl Strategy<Value = String> {
    (
        prop::collection::vec(0i64..8, 1..6),
        prop::collection::vec(0i64..8, 1..6),
        0i64..8,
        0usize..6,
        0usize..4,
    )
        .prop_map(|(xs, ys, k, op_idx, shape)| {
            let op = ["=", "!=", "<", "<=", ">", ">="][op_idx];
            let xs = xs
                .iter()
                .map(|v| v.to_string())
                .collect::<Vec<_>>()
                .join(",");
            let ys = ys
                .iter()
                .map(|v| v.to_string())
                .collect::<Vec<_>>()
                .join(",");
            match shape {
                // Select kernel: single generator, const on one side.
                0 => format!("for $x in ({xs}) where $x * 2 {op} {k} return $x"),
                // Join kernel: comparison split across generators.
                1 => format!("for $x in ({xs}), $y in ({ys}) where $x {op} $y return $x + 10 * $y"),
                // Fused arithmetic on the inner operand (the Q11 shape).
                2 => format!("for $x in ({xs}), $y in ({ys}) where $x {op} 2 * $y return ($x, $y)"),
                // Mixed double/integer promotion in the predicate.
                _ => format!("for $x in ({xs}) where ($x * 0.5) {op} {k} return $x"),
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn random_comparisons_agree(q in comparison_flwor()) {
        let e = Engine::new();
        for mode in ALGEBRA_MODES {
            let batched = outcome(&e, &q, &CompileOptions::mode(mode));
            let scalar = outcome(&e, &q, &CompileOptions::mode(mode).with_scalar_kernels());
            prop_assert_eq!(&batched, &scalar, "mode {:?} query {}", mode, q);
        }
    }
}
