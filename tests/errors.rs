//! Error behavior: static and dynamic errors are raised with stable codes,
//! consistently across execution modes (completeness includes failing
//! correctly).

use xqr::engine::{CompileOptions, Engine, EngineError, ExecutionMode};

fn error_code(engine: &Engine, q: &str, mode: ExecutionMode) -> Option<String> {
    fn classify(e: EngineError) -> String {
        match e {
            EngineError::Syntax(_) => "XPST0003".into(),
            EngineError::Dynamic(e) => e.code.to_string(),
            EngineError::LimitExceeded { code, .. } => code.to_string(),
            EngineError::Internal { .. } => "INTERNAL".into(),
        }
    }
    match engine.prepare(q, &CompileOptions::mode(mode)) {
        Err(e) => Some(classify(e)),
        Ok(p) => p.run(engine).err().map(classify),
    }
}

/// Asserts every mode raises an error with the given code.
fn check_error(q: &str, code: &str) {
    let e = Engine::new();
    for mode in ExecutionMode::ALL {
        assert_eq!(
            error_code(&e, q, mode).as_deref(),
            Some(code),
            "{mode:?}: {q}"
        );
    }
}

#[test]
fn syntax_errors() {
    let e = Engine::new();
    for q in [
        "for $x in",
        "1 +",
        "<a><b></a></b>",
        "let $x 1 return $x",
        "typeswitch (1) default return",
        "some $x satisfies 1",
        "'unterminated",
        "(: unclosed comment",
    ] {
        assert!(
            matches!(
                e.prepare(q, &CompileOptions::default()),
                Err(EngineError::Syntax(_))
            ),
            "{q:?} should be a syntax error"
        );
    }
}

#[test]
fn unbound_variable() {
    check_error("$nowhere", "XPDY0002");
    check_error("declare variable $x external; $x", "XPDY0002");
}

#[test]
fn unknown_function() {
    check_error("no-such-function(1)", "XPST0017");
    check_error("local:ghost()", "XPST0017");
}

#[test]
fn cardinality_violations() {
    check_error("exactly-one(())", "FORG0005");
    check_error("exactly-one((1, 2))", "FORG0005");
    check_error("one-or-more(())", "FORG0004");
    check_error("zero-or-one((1, 2))", "FORG0003");
}

#[test]
fn arithmetic_errors() {
    check_error("1 div 0", "FOAR0001");
    check_error("1 idiv 0", "FOAR0001");
    check_error("1 mod 0", "FOAR0001");
    check_error("'x' + 1", "XPTY0004");
}

#[test]
fn cast_errors() {
    check_error("'abc' cast as xs:integer", "FORG0001");
    check_error("() cast as xs:integer", "XPTY0004");
    check_error("'2001-13-01' cast as xs:date", "FORG0001");
}

#[test]
fn type_assertion_errors() {
    check_error("('a', 'b') treat as xs:string", "XPDY0050");
    check_error("for $x as xs:integer in ('a') return $x", "XPDY0050");
    check_error("let $x as xs:string := 5 return $x", "XPDY0050");
}

#[test]
fn ebv_errors() {
    check_error("if ((1, 2)) then 1 else 2", "FORG0006");
    check_error("not((1, 2))", "FORG0006");
}

#[test]
fn path_type_errors() {
    check_error("(1)/a", "XPTY0020");
    check_error("('x')//b", "XPTY0020");
}

#[test]
fn missing_document() {
    check_error("doc('nope.xml')", "FODC0002");
}

#[test]
fn value_comparison_stays_strict() {
    // Deviation boundary check: general comparisons tolerate incomparable
    // pairs (non-match), value comparisons do not.
    check_error("1 eq 'x'", "XPTY0004");
    let e = Engine::new();
    for mode in ExecutionMode::ALL {
        assert_eq!(error_code(&e, "1 = 'x'", mode), None, "{mode:?}");
    }
}

#[test]
fn recursion_guard() {
    // Debug-build native frames are large; give the evaluator headroom to
    // reach its own logical-depth limit before the OS stack runs out.
    std::thread::Builder::new()
        .stack_size(64 * 1024 * 1024)
        .spawn(|| {
            check_error(
                "declare function local:loop($n) { local:loop($n + 1) }; local:loop(0)",
                "XQRT0005",
            );
        })
        .unwrap()
        .join()
        .unwrap();
}

#[test]
fn conditional_lets_are_not_lifted() {
    // Regression (code review): constant lifting must not hoist a `let`
    // out of a conditional branch — doc('missing.xml') would be resolved
    // even though the branch is never taken.
    let e = Engine::new();
    let q = "if (false()) then (let $d := doc('missing.xml') return $d) else 0";
    for mode in ExecutionMode::ALL {
        assert_eq!(error_code(&e, q, mode), None, "{mode:?}");
    }
}

#[test]
fn pathological_nesting_errors_cleanly() {
    // Regression: deeply nested inputs must produce errors, not stack
    // overflows. (Big-stack thread: debug-build frames are large, and the
    // guards are sized for the 8 MB main-thread stack.)
    std::thread::Builder::new()
        .stack_size(64 * 1024 * 1024)
        .spawn(|| {
            let deep_query = format!("{}1{}", "(".repeat(20_000), ")".repeat(20_000));
            assert!(xqr::frontend::parse_query(&deep_query).is_err());
            let deep_ctor = format!("{}1{}", "<a>".repeat(5_000), "</a>".repeat(5_000));
            assert!(xqr::frontend::parse_query(&deep_ctor).is_err());
            let deep_xml = format!("{}x{}", "<a>".repeat(50_000), "</a>".repeat(50_000));
            assert!(
                xqr::xml::parse_document(&deep_xml, &xqr::xml::ParseOptions::default()).is_err()
            );
        })
        .unwrap()
        .join()
        .unwrap();
}
