//! Hostile-client chaos suite for the network query frontend.
//!
//! Every scenario throws a different kind of malice at a live
//! [`QueryServer`] — torn frames, garbage bytes, header floods,
//! mid-result disconnects, stalled readers, slow-loris dribbles,
//! overload — and then asserts the same three invariants:
//!
//! 1. **zero worker/listener deaths**: the service still answers
//!    queries and `/healthz` still answers 200;
//! 2. **only mapped outcomes**: every response the client managed to
//!    read is a mapped HTTP status whose JSON body carries a stable
//!    code (a torn connection may legitimately read nothing at all);
//! 3. **no orphan state**: in-flight memory reservations return to
//!    zero and connection threads unwind once the abuse stops.
//!
//! The `failpoints` half (compiled with `--features failpoints`) drives
//! the injected `server::accept` / `server::read` / `server::write`
//! faults and proves the stuck-query watchdog escalates — and can be
//! suppressed — deterministically.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};
use std::time::{Duration, Instant};

use xqr::engine::{
    QueryRequest, QueryServer, QueryService, ServerConfig, ServiceConfig, SessionConfig,
    TenantQuotas,
};
use xqr::xml::metrics::metrics;

/// Serializes tests: the process metrics registry and (in the
/// failpoints half) the failpoint registry are global.
fn lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

fn start(service: ServiceConfig, server: ServerConfig) -> (Arc<QueryService>, QueryServer) {
    let svc = Arc::new(QueryService::new(service));
    let server = QueryServer::start(Arc::clone(&svc), "127.0.0.1:0", server).unwrap();
    (svc, server)
}

fn default_start() -> (Arc<QueryService>, QueryServer) {
    start(
        ServiceConfig {
            workers: 2,
            queue_capacity: 8,
            ..ServiceConfig::default()
        },
        ServerConfig::default(),
    )
}

/// One raw exchange; tolerates resets (returns whatever arrived).
fn roundtrip(addr: SocketAddr, request: &[u8]) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).unwrap();
    let _ = stream.write_all(request);
    let mut raw = Vec::new();
    let _ = stream.read_to_end(&mut raw);
    let text = String::from_utf8_lossy(&raw).into_owned();
    let (head, body) = text.split_once("\r\n\r\n").unwrap_or((text.as_str(), ""));
    let status = head
        .lines()
        .next()
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    (status, body.to_string())
}

fn post(addr: SocketAddr, query: &str, extra: &str) -> (u16, String) {
    roundtrip(
        addr,
        format!(
            "POST /query HTTP/1.1\r\nHost: x\r\nContent-Length: {}\r\n{extra}\r\n{query}",
            query.len()
        )
        .as_bytes(),
    )
}

fn get(addr: SocketAddr, path: &str) -> (u16, String) {
    roundtrip(
        addr,
        format!("GET {path} HTTP/1.1\r\nHost: x\r\n\r\n").as_bytes(),
    )
}

fn spin_until(deadline: Duration, what: &str, mut cond: impl FnMut() -> bool) {
    let t0 = Instant::now();
    while !cond() {
        assert!(t0.elapsed() < deadline, "never converged: {what}");
        std::thread::sleep(Duration::from_millis(5));
    }
}

/// The post-scenario invariant bundle: listener alive, workers alive,
/// reservations drained, connection threads unwound.
fn assert_healthy(svc: &QueryService, server: &QueryServer) {
    let addr = server.addr();
    assert_eq!(get(addr, "/healthz").0, 200, "listener died");
    let (status, body) = post(addr, "1 + 1", "");
    assert_eq!(status, 200, "workers died: {body}");
    assert_eq!(body, "2");
    spin_until(Duration::from_secs(10), "reservations", || {
        svc.reserved_bytes() == 0
    });
    spin_until(Duration::from_secs(10), "connection threads", || {
        server.active_connections() == 0
    });
}

#[test]
fn garbage_bytes_are_refused_not_fatal() {
    let _l = lock();
    let (svc, server) = default_start();
    let addr = server.addr();
    for garbage in [
        &b"\x00\xff\xfe\x01binary trash\r\n\r\n"[..],
        &b"COMPLETELY NOT HTTP\r\n\r\n"[..],
        &b"\r\n\r\n"[..],
        &b"GET\r\n\r\n"[..], // request line with no path
    ] {
        let (status, body) = roundtrip(addr, garbage);
        // A mapped refusal (400 malformed, 405 for bytes that happen to
        // parse as an unknown method), or nothing at all for a
        // connection the server killed — never a hang, never an
        // unmapped status.
        assert!(
            status == 400 || status == 405 || status == 0,
            "garbage got {status}: {body}"
        );
    }
    // An immediate close with zero bytes is a clean non-event.
    drop(TcpStream::connect(addr).unwrap());
    assert_healthy(&svc, &server);
}

#[test]
fn torn_frame_mid_body_leaves_no_orphans() {
    let _l = lock();
    let (svc, server) = default_start();
    let addr = server.addr();
    for _ in 0..4 {
        let mut stream = TcpStream::connect(addr).unwrap();
        // Promise 1000 body bytes, deliver 10, vanish.
        stream
            .write_all(b"POST /query HTTP/1.1\r\nHost: x\r\nContent-Length: 1000\r\n\r\n1 et 10 b")
            .unwrap();
        drop(stream);
    }
    assert_healthy(&svc, &server);
}

#[test]
fn header_floods_are_bounded() {
    let _l = lock();
    let (svc, server) = start(
        ServiceConfig::default(),
        ServerConfig {
            max_header_bytes: 1024,
            ..ServerConfig::default()
        },
    );
    let addr = server.addr();
    let kills_before = metrics().snapshot().server_conn_kills;
    let flood = format!(
        "POST /query HTTP/1.1\r\nHost: x\r\n{}\r\n\r\n",
        (0..64)
            .map(|i| format!("X-Flood-{i}: {}", "a".repeat(1024)))
            .collect::<Vec<_>>()
            .join("\r\n")
    );
    let (status, _) = roundtrip(addr, flood.as_bytes());
    // 431 if the refusal outran the RST, else a torn read; both bounded.
    assert!(status == 431 || status == 0, "flood got {status}");
    assert!(metrics().snapshot().server_conn_kills > kills_before);
    assert_healthy(&svc, &server);
}

#[test]
fn mid_result_disconnects_are_survived() {
    let _l = lock();
    let (svc, server) = default_start();
    let addr = server.addr();
    for _ in 0..8 {
        let mut stream = TcpStream::connect(addr).unwrap();
        let q = "string-join(for $i in 1 to 20000 return 'x', '')";
        stream
            .write_all(
                format!(
                    "POST /query HTTP/1.1\r\nHost: x\r\nContent-Length: {}\r\n\r\n{q}",
                    q.len()
                )
                .as_bytes(),
            )
            .unwrap();
        // Gone before the result is ready: the worker still finishes,
        // the write fails or lands in a dead buffer, nothing leaks.
        drop(stream);
    }
    assert_healthy(&svc, &server);
}

#[test]
fn stalled_readers_cannot_pin_connection_threads() {
    let _l = lock();
    let (svc, server) = start(
        ServiceConfig::default(),
        ServerConfig {
            write_timeout: Duration::from_millis(300),
            ..ServerConfig::default()
        },
    );
    let addr = server.addr();
    // A ~6 MB result against a reader that never reads: the response
    // write must hit the write timeout instead of pinning the thread.
    let q = "string-join(for $i in 1 to 400000 return 'abcdefghijklmnop', '')";
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .write_all(
            format!(
                "POST /query HTTP/1.1\r\nHost: x\r\nContent-Length: {}\r\n\r\n{q}",
                q.len()
            )
            .as_bytes(),
        )
        .unwrap();
    // Do not read. The connection thread must still unwind promptly.
    spin_until(Duration::from_secs(20), "stalled-reader thread", || {
        server.active_connections() == 0
    });
    drop(stream);
    assert_healthy(&svc, &server);
}

#[test]
fn slow_loris_dribble_is_killed_by_the_head_deadline() {
    let _l = lock();
    let (svc, server) = start(
        ServiceConfig::default(),
        ServerConfig {
            header_deadline: Duration::from_millis(300),
            ..ServerConfig::default()
        },
    );
    let addr = server.addr();
    let t0 = Instant::now();
    let mut stream = TcpStream::connect(addr).unwrap();
    // One byte at a time, forever under the per-read horizon — only the
    // whole-head deadline can stop this.
    let head = b"GET /healthz HTTP/1.1\r\n";
    let mut alive = true;
    for b in head.iter().cycle().take(60) {
        if stream.write_all(&[*b]).is_err() {
            alive = false;
            break;
        }
        std::thread::sleep(Duration::from_millis(25));
    }
    if alive {
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        let mut sink = Vec::new();
        let _ = stream.read_to_end(&mut sink); // EOF or 408, either way closed
    }
    assert!(
        t0.elapsed() < Duration::from_secs(10),
        "dribble was not cut off"
    );
    assert_healthy(&svc, &server);
}

/// Stalls the (single) worker deterministically: every fresh document
/// load blocks until the returned sender fires.
fn gate_worker(svc: &QueryService) -> std::sync::mpsc::Sender<()> {
    let (tx, rx) = std::sync::mpsc::channel::<()>();
    let rx = Mutex::new(rx);
    svc.register_document("gate.xml");
    svc.set_loader(move |_| {
        let _ = rx.lock().unwrap().recv();
        Ok("<gate/>".to_string())
    });
    tx
}

#[test]
fn overload_maps_to_429_with_retry_after_and_stable_code() {
    let _l = lock();
    let (svc, server) = start(
        ServiceConfig {
            workers: 1,
            queue_capacity: 1,
            ..ServiceConfig::default()
        },
        ServerConfig::default(),
    );
    let addr = server.addr();
    let release = gate_worker(&svc);
    // t1 occupies the worker (stalled in the gated loader)...
    let t1 = std::thread::spawn(move || post(addr, "1", ""));
    spin_until(Duration::from_secs(10), "worker busy", || {
        !svc.inflight().is_empty()
    });
    // ...t2 fills the single queue slot...
    let t2 = svc.submit(QueryRequest::new("2")).unwrap();
    // ...and the next network submission is shed with everything a
    // client needs to back off correctly.
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .write_all(b"POST /query HTTP/1.1\r\nHost: x\r\nContent-Length: 1\r\n\r\n3")
        .unwrap();
    let mut raw = Vec::new();
    let _ = stream.read_to_end(&mut raw);
    let text = String::from_utf8_lossy(&raw);
    assert!(text.starts_with("HTTP/1.1 429"), "{text}");
    assert!(text.contains("Retry-After:"), "{text}");
    assert!(text.contains("XQRG0007"), "{text}");
    release.send(()).unwrap();
    assert_eq!(t1.join().unwrap().0, 200);
    assert_eq!(t2.wait().unwrap().xml, "2");
    assert_healthy(&svc, &server);
}

#[test]
fn tenant_isolation_under_a_greedy_client() {
    let _l = lock();
    let (svc, server) = start(
        ServiceConfig {
            workers: 2,
            queue_capacity: 32,
            ..ServiceConfig::default()
        },
        ServerConfig {
            sessions: SessionConfig::default()
                .with_tenant("greedy", TenantQuotas::default().with_max_concurrent(1)),
            ..ServerConfig::default()
        },
    );
    let addr = server.addr();
    let release = gate_worker(&svc);
    // The greedy tenant's first query holds its one concurrency slot
    // (stalled in the loader); its second is refused with XQRG0009
    // while an unnamed tenant still gets served... once the gate opens
    // (both workers funnel through the same gated document load).
    let g1 = std::thread::spawn(move || post(addr, "1", "X-Tenant: greedy\r\n"));
    spin_until(Duration::from_secs(10), "greedy in flight", || {
        !svc.inflight().is_empty()
    });
    let (status, body) = post(addr, "2", "X-Tenant: greedy\r\n");
    assert_eq!(status, 429, "{body}");
    assert!(body.contains("XQRG0009"), "{body}");
    release.send(()).unwrap();
    assert_eq!(g1.join().unwrap().0, 200);
    let (status, body) = post(addr, "3", "X-Tenant: modest\r\n");
    assert_eq!(status, 200, "{body}");
    assert_healthy(&svc, &server);
}

#[test]
fn hostile_mix_under_concurrency_keeps_every_invariant() {
    let _l = lock();
    let (svc, server) = default_start();
    let addr = server.addr();
    let threads: Vec<_> = (0..6)
        .map(|t| {
            std::thread::spawn(move || {
                for i in 0..10 {
                    match (t + i) % 5 {
                        0 => {
                            let (status, body) = post(addr, "1 + 1", "");
                            assert_eq!(status, 200, "{body}");
                            assert_eq!(body, "2");
                        }
                        1 => {
                            let (status, _) = roundtrip(addr, b"garbage\r\n\r\n");
                            assert!(status == 400 || status == 0);
                        }
                        2 => {
                            let mut s = TcpStream::connect(addr).unwrap();
                            let _ = s.write_all(
                                b"POST /query HTTP/1.1\r\nHost: x\r\nContent-Length: 999\r\n\r\nhalf",
                            );
                            drop(s); // torn frame
                        }
                        3 => {
                            let (status, _) = get(addr, "/metrics");
                            assert_eq!(status, 200);
                        }
                        _ => {
                            // Errors still map: syntax → 400 with a body.
                            let (status, body) = post(addr, "for $x in", "");
                            assert_eq!(status, 400, "{body}");
                            assert!(body.contains("\"code\""), "{body}");
                        }
                    }
                }
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }
    assert_healthy(&svc, &server);
}

#[test]
fn graceful_drain_sheds_cancels_and_accounts_exactly() {
    let _l = lock();
    let (svc, mut server) = start(
        ServiceConfig {
            workers: 1,
            queue_capacity: 8,
            ..ServiceConfig::default()
        },
        ServerConfig::default(),
    );
    let addr = server.addr();
    let release = gate_worker(&svc);
    let shed_before = svc.observe().shed_shutdown;
    // One query wedged on the worker (network side), one queued behind
    // it (direct), then drain under a deadline far shorter than the
    // wedge.
    let wedged = std::thread::spawn(move || post(addr, "1", ""));
    spin_until(Duration::from_secs(10), "wedged in flight", || {
        !svc.inflight().is_empty()
    });
    let queued = svc.submit(QueryRequest::new("2")).unwrap();
    let report = server.stop(Some(Duration::from_millis(300)));
    assert_eq!(report.service.drained_queued, 1);
    assert_eq!(report.service.cancelled, 1);
    assert!(!report.service.completed_in_time);
    // The queued query was shed with the shutdown reason and code.
    let err = queued.wait().unwrap_err();
    assert_eq!(err.code(), Some("XQRG0007"), "{err}");
    assert_eq!(svc.observe().shed_shutdown, shed_before + 1);
    // New submissions are refused outright.
    assert!(svc.submit(QueryRequest::new("3")).is_err());
    // Release the wedge: the cancelled survivor unwinds, the client
    // gets a mapped reply (408 cancel) or a torn connection — not a hang.
    release.send(()).unwrap();
    let (status, _) = wedged.join().unwrap();
    assert!(
        status == 408 || status == 200 || status == 0,
        "wedged client saw {status}"
    );
    spin_until(Duration::from_secs(10), "drain reservations", || {
        svc.reserved_bytes() == 0
    });
}

#[cfg(feature = "failpoints")]
mod failpoints {
    use super::*;
    use xqr::engine::WatchdogConfig;
    use xqr::xml::failpoint::{self, FailGuard};

    #[test]
    fn injected_accept_fault_drops_one_connection_only() {
        let _l = lock();
        failpoint::clear();
        let (svc, server) = default_start();
        let addr = server.addr();
        {
            let _g = FailGuard::new("server::accept", "err(1)").unwrap();
            // The faulted connection is dropped on the floor; the
            // client reads EOF, not a hang.
            let (status, _) = get(addr, "/healthz");
            assert_eq!(status, 0);
        }
        assert_healthy(&svc, &server);
    }

    #[test]
    fn injected_read_fault_maps_to_500_with_injected_code() {
        let _l = lock();
        failpoint::clear();
        let (svc, server) = default_start();
        let addr = server.addr();
        {
            let _g = FailGuard::new("server::read", "err(1)").unwrap();
            let (status, body) = get(addr, "/healthz");
            assert_eq!(status, 500, "{body}");
            assert!(body.contains("XQRFP01"), "{body}");
        }
        assert_healthy(&svc, &server);
    }

    #[test]
    fn injected_write_fault_kills_the_reply_not_the_worker() {
        let _l = lock();
        failpoint::clear();
        let (svc, server) = default_start();
        let addr = server.addr();
        let kills_before = metrics().snapshot().server_conn_kills;
        {
            let _g = FailGuard::new("server::write", "err(1)").unwrap();
            // The query executes, then the response write is injected
            // away: the client sees a clean close with no bytes.
            let (status, body) = post(addr, "1 + 1", "");
            assert_eq!(status, 0, "{body}");
        }
        assert!(metrics().snapshot().server_conn_kills > kills_before);
        assert_healthy(&svc, &server);
    }

    #[test]
    fn watchdog_escalates_a_stalled_query_deterministically() {
        let _l = lock();
        failpoint::clear();
        let (svc, server) = start(
            ServiceConfig {
                workers: 1,
                ..ServiceConfig::default()
            },
            ServerConfig {
                watchdog: WatchdogConfig {
                    enabled: true,
                    period: Duration::from_millis(10),
                    grace: Duration::from_millis(25),
                },
                ..ServerConfig::default()
            },
        );
        let addr = server.addr();
        let escalations_before = metrics().snapshot().watchdog_escalations;
        // The dispatch failpoint wedges the query for 600 ms without a
        // single governor tick; its deadline is 50 ms. The watchdog
        // must cancel it long before the wedge clears.
        let _g = FailGuard::new("service::dispatch", "delay(600ms,1)").unwrap();
        let (status, body) = post(
            addr,
            "count(for $x in 1 to 1000000 where $x mod 7 = 0 return $x)",
            "X-Deadline-Ms: 50\r\n",
        );
        assert_eq!(status, 408, "{body}");
        assert!(
            body.contains("XQRG0002") || body.contains("XQRG0001"),
            "{body}"
        );
        assert!(metrics().snapshot().watchdog_escalations > escalations_before);
        let (total, by_shape) = server.escalations();
        assert!(total >= 1);
        assert_eq!(by_shape.values().sum::<u64>(), total);
        // /server.json exposes the same counters.
        let (s, js) = get(addr, "/server.json");
        assert_eq!(s, 200);
        assert!(js.contains("\"watchdog_escalations\":"), "{js}");
        assert_healthy(&svc, &server);
    }

    #[test]
    fn watchdog_escalation_can_be_suppressed_by_failpoint() {
        let _l = lock();
        failpoint::clear();
        let (svc, server) = start(
            ServiceConfig {
                workers: 1,
                ..ServiceConfig::default()
            },
            ServerConfig {
                watchdog: WatchdogConfig {
                    enabled: true,
                    period: Duration::from_millis(10),
                    grace: Duration::from_millis(25),
                },
                ..ServerConfig::default()
            },
        );
        let addr = server.addr();
        let escalations_before = metrics().snapshot().watchdog_escalations;
        let _wedge = FailGuard::new("service::dispatch", "delay(400ms,1)").unwrap();
        let _mute = FailGuard::new("watchdog::escalate", "err").unwrap();
        // With escalation suppressed, the wedge runs its course and the
        // query dies of its own (rebased) deadline instead.
        let (status, body) = post(
            addr,
            "count(for $x in 1 to 1000000 where $x mod 7 = 0 return $x)",
            "X-Deadline-Ms: 50\r\n",
        );
        assert_eq!(status, 408, "{body}");
        assert!(body.contains("XQRG0001"), "{body}");
        assert_eq!(
            metrics().snapshot().watchdog_escalations,
            escalations_before
        );
        assert_eq!(server.escalations().0, 0);
        assert_healthy(&svc, &server);
    }

    /// The CI env-schedule run (`XQR_FAILPOINTS=...` with accept/read
    /// faults armed) executes only this test: it hammers the server
    /// through the armed schedule and asserts the invariant bundle —
    /// the faults fire (trips counted), some connections die, and the
    /// frontend shrugs.
    #[test]
    fn env_schedule_faults_are_survived() {
        if std::env::var("XQR_FAILPOINTS").is_err() {
            return; // only meaningful under an env-armed schedule
        }
        let _l = lock();
        let (svc, server) = default_start();
        let addr = server.addr();
        let trips_before = metrics().snapshot().failpoint_trips;
        let mut served = 0;
        for _ in 0..20 {
            let (status, body) = post(addr, "1 + 1", "");
            match status {
                200 => {
                    assert_eq!(body, "2");
                    served += 1;
                }
                // Injected read fault → mapped 500; injected accept or
                // write fault → torn connection. Nothing else.
                500 => assert!(body.contains("XQRFP01"), "{body}"),
                0 => {}
                other => panic!("unmapped status {other}: {body}"),
            }
        }
        assert!(served > 0, "every request died under the schedule");
        assert!(metrics().snapshot().failpoint_trips > trips_before);
        assert_healthy(&svc, &server);
    }
}
