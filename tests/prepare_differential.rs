//! Differential tests for the prepared-query pipeline: external-variable
//! parameters, canonical plan normalization, and the keyed plan cache.
//!
//! The central claims checked here:
//!
//! * a query prepared once and run with **bound parameters** is
//!   byte-identical to an ad-hoc compile of the same query with the
//!   parameter values **inlined as literals** — across all XMark queries,
//!   a hand-written parameterized corpus, and property-tested random
//!   inputs;
//! * a **cache hit** returns a plan that produces identical results and
//!   an identical `EXPLAIN` rendering to the cold compile it shares;
//! * the **canonical hash** is stable under variable renaming and
//!   comparison flipping — syntactic variants share one cache entry;
//! * a **tiny cache budget** evicts correctly: results stay right after
//!   eviction and re-preparation, and the entry count never exceeds the
//!   budget;
//! * under an N-worker service hammered with a fixed set of query
//!   shapes, the shared plan registry records **O(shapes)** first-sighting
//!   misses, not O(shapes × submissions).

use xqr::engine::{
    CompileOptions, Engine, ExecutionMode, PlanCacheConfig, QueryRequest, QueryService,
    ServiceConfig,
};
use xqr::xml::metrics::metrics;
use xqr::xml::Sequence;
use xqr_xmark::{generate, query, GenOptions, QUERY_COUNT};

use proptest::prelude::*;

fn xmark_engine() -> Engine {
    let xml = generate(&GenOptions::for_bytes(120_000));
    let mut e = Engine::new();
    e.bind_document("auction.xml", &xml)
        .expect("auction document parses");
    e
}

// ===== prepared (cache hit) vs ad-hoc: XMark Q1–Q20 ========================

#[test]
fn xmark_cached_prepare_is_byte_identical_to_ad_hoc() {
    let e = xmark_engine();
    let opts = CompileOptions::mode(ExecutionMode::OptimHashJoin);
    for n in 1..=QUERY_COUNT {
        let q = query(n);
        let ad_hoc = e
            .prepare(q, &opts)
            .unwrap_or_else(|err| panic!("Q{n} prepare: {err}"))
            .run_to_string(&e)
            .unwrap_or_else(|err| panic!("Q{n} run: {err}"));
        let (cold, hit0) = e.prepare_cached_outcome(q, &opts).unwrap();
        assert!(!hit0, "Q{n}: first cached prepare must miss");
        let (hot, hit1) = e.prepare_cached_outcome(q, &opts).unwrap();
        assert!(hit1, "Q{n}: second cached prepare must hit");
        assert_eq!(
            cold.explain(),
            hot.explain(),
            "Q{n}: cache hit changes the explained plan"
        );
        assert_eq!(cold.canonical_hash(), hot.canonical_hash());
        assert_eq!(
            ad_hoc,
            cold.run_to_string(&e).unwrap(),
            "Q{n}: cold cached prepare diverges from ad-hoc"
        );
        assert_eq!(
            ad_hoc,
            hot.run_to_string(&e).unwrap(),
            "Q{n}: cache hit diverges from ad-hoc"
        );
    }
    assert_eq!(e.plan_cache_len(), QUERY_COUNT);
}

// ===== bound parameters vs literal inlining ================================

/// A parameterized query template: `{}` marks where the parameter value
/// goes in the literal-inlined variant; the prepared variant declares it
/// as a typed external.
struct Template {
    /// Query with a `declare variable $p ... external;` prolog.
    prepared: &'static str,
    /// The same query with `%P%` where the literal belongs.
    inlined: &'static str,
}

const INT_TEMPLATES: [Template; 3] = [
    Template {
        prepared: "declare variable $p as xs:integer external; \
                   for $x in (1 to 20) where $x >= $p return $x * 2",
        inlined: "for $x in (1 to 20) where $x >= %P% return $x * 2",
    },
    Template {
        prepared: "declare variable $p as xs:integer external; \
                   for $x in (1,1,3,5,8) \
                   let $m := for $y in (1 to 8) where $y = $x and $y < $p return $y \
                   return count($m)",
        inlined: "for $x in (1,1,3,5,8) \
                  let $m := for $y in (1 to 8) where $y = $x and $y < %P% return $y \
                  return count($m)",
    },
    Template {
        prepared: "declare variable $p as xs:integer external; \
                   sum(for $x in (1 to 30) where $x mod $p = 0 return $x)",
        inlined: "sum(for $x in (1 to 30) where $x mod %P% = 0 return $x)",
    },
];

#[test]
fn bound_params_match_literal_inlining_across_modes() {
    let e = Engine::new();
    for t in &INT_TEMPLATES {
        for mode in ExecutionMode::ALL {
            let opts = CompileOptions::mode(mode);
            // One prepared plan, many argument sets: the whole point.
            let mut prepared = e.prepare_cached(t.prepared, &opts).unwrap();
            for v in [1i64, 2, 3, 7] {
                prepared.bind_param("p", Sequence::integers([v])).unwrap();
                let got = prepared.run_to_string(&e).unwrap();
                let inlined = t.inlined.replace("%P%", &v.to_string());
                let want = e
                    .prepare(&inlined, &opts)
                    .unwrap()
                    .run_to_string(&e)
                    .unwrap();
                assert_eq!(got, want, "{mode:?} param {v}: {}", t.prepared);
            }
        }
    }
}

#[test]
fn bound_string_param_over_xmark_document() {
    let e = xmark_engine();
    let opts = CompileOptions::mode(ExecutionMode::OptimHashJoin);
    let mut prepared = e
        .prepare_cached(
            "declare variable $id as xs:string external; \
             for $p in doc('auction.xml')/site/people/person \
             where $p/@id = $id return $p/name/text()",
            &opts,
        )
        .unwrap();
    for id in ["person0", "person1", "person42", "no-such-person"] {
        prepared
            .bind_param("id", Sequence::singleton(xqr::xml::AtomicValue::string(id)))
            .unwrap();
        let got = prepared.run_to_string(&e).unwrap();
        let want = e
            .execute_to_string(&format!(
                "for $p in doc('auction.xml')/site/people/person \
                 where $p/@id = '{id}' return $p/name/text()"
            ))
            .unwrap();
        assert_eq!(got, want, "param {id}");
    }
}

#[test]
fn external_default_matches_inlined_default() {
    let e = Engine::new();
    let with_default = "declare variable $p as xs:integer external := 4; \
                        sum(for $x in (1 to 10) where $x < $p return $x)";
    let inlined = "sum(for $x in (1 to 10) where $x < 4 return $x)";
    let mut prepared = e
        .prepare_cached(with_default, &CompileOptions::default())
        .unwrap();
    // Unbound: the declared default applies.
    assert_eq!(
        prepared.run_to_string(&e).unwrap(),
        e.execute_to_string(inlined).unwrap()
    );
    // Bound: the binding wins over the default.
    prepared.bind_param("p", Sequence::integers([8])).unwrap();
    assert_eq!(
        prepared.run_to_string(&e).unwrap(),
        e.execute_to_string("sum(for $x in (1 to 10) where $x < 8 return $x)")
            .unwrap()
    );
}

// ===== canonical hash stability ============================================

#[test]
fn canonical_hash_stable_under_renaming_and_flipping() {
    let e = Engine::new();
    let opts = CompileOptions::mode(ExecutionMode::OptimHashJoin);
    // Alpha-renaming and a flipped comparison normalize to one plan.
    let variants = [
        "for $x in (1,2,3) where $x < 2 return $x + 1",
        "for $y in (1,2,3) where $y < 2 return $y + 1",
        "for $q in (1,2,3) where 2 > $q return $q + 1",
    ];
    let hashes: Vec<_> = variants
        .iter()
        .map(|q| e.prepare(q, &opts).unwrap().canonical_hash().unwrap())
        .collect();
    assert_eq!(hashes[0], hashes[1], "renaming changes the hash");
    assert_eq!(hashes[0], hashes[2], "comparison flip changes the hash");

    // All three share one cache entry (three text keys, one plan).
    for q in variants {
        e.prepare_cached(q, &opts).unwrap();
    }
    assert_eq!(e.plan_cache_len(), 1);

    // A genuinely different query must not collide.
    let other = e
        .prepare("for $x in (1,2,3) where $x < 3 return $x + 1", &opts)
        .unwrap();
    assert_ne!(hashes[0], other.canonical_hash().unwrap());
}

#[test]
fn canonical_hash_distinguishes_literal_types() {
    // `1` and `'1'` render identically as strings; the canonical form
    // keys literals by type, so the plans must hash apart.
    let e = Engine::new();
    let opts = CompileOptions::mode(ExecutionMode::OptimHashJoin);
    let int = e.prepare("(1)", &opts).unwrap().canonical_hash().unwrap();
    let string = e.prepare("('1')", &opts).unwrap().canonical_hash().unwrap();
    assert_ne!(int, string);
}

// ===== tiny-budget eviction ================================================

#[test]
fn tiny_cache_budget_evicts_but_stays_correct() {
    let shapes: Vec<String> = (0..6)
        .map(|i| format!("{i} + sum(1 to {})", i + 2))
        .collect();
    let expected: Vec<String> = {
        let e = Engine::new();
        shapes
            .iter()
            .map(|q| e.execute_to_string(q).unwrap())
            .collect()
    };
    let mut e = Engine::new();
    e.set_plan_cache_config(PlanCacheConfig {
        max_entries: 2,
        max_bytes: 1 << 20,
        enabled: true,
    });
    let before = metrics().snapshot();
    // Three rounds over six shapes with room for two: every round evicts,
    // every answer must stay right.
    for _ in 0..3 {
        for (q, want) in shapes.iter().zip(&expected) {
            let p = e.prepare_cached(q, &CompileOptions::default()).unwrap();
            assert_eq!(&p.run_to_string(&e).unwrap(), want, "{q}");
            assert!(
                e.plan_cache_len() <= 2,
                "budget exceeded: {}",
                e.plan_cache_len()
            );
        }
    }
    let after = metrics().snapshot();
    assert!(
        after.plan_cache_evictions > before.plan_cache_evictions,
        "a 2-entry cache cycling 6 shapes must evict"
    );
    // Byte accounting survives the churn.
    assert!(e.plan_cache_bytes() > 0);
    e.clear_plan_cache();
    assert_eq!(e.plan_cache_len(), 0);
    assert_eq!(e.plan_cache_bytes(), 0);
}

// ===== service stress: misses are O(shapes) ================================

#[test]
fn service_stress_misses_are_o_shapes() {
    let shapes = [
        "for $x in (1,2,3) where $x > 1 return $x * 10",
        "sum(1 to 100)",
        "count(doc('cat.xml')//item)",
        "for $x in (3,1,2) order by $x descending return $x",
    ];
    let expected = ["20 30", "5050", "3", "3 2 1"];
    let svc = QueryService::new(ServiceConfig {
        workers: 4,
        queue_capacity: 64,
        ..ServiceConfig::default()
    });
    svc.bind_document("cat.xml", "<items><item/><item/><item/></items>");
    let before = metrics().snapshot();
    // Waves of 10 rounds (40 tickets) keep the 64-slot admission queue
    // from shedding while still overlapping all four workers.
    for wave in 0..5 {
        let mut tickets = Vec::new();
        for round in 0..10 {
            for (i, q) in shapes.iter().enumerate() {
                tickets.push((i, round, svc.submit(QueryRequest::new(*q)).unwrap()));
            }
        }
        for (i, round, t) in tickets {
            let out = t
                .wait()
                .unwrap_or_else(|e| panic!("shape {i} wave {wave} round {round}: {e}"));
            assert_eq!(out.xml, expected[i], "shape {i} wave {wave} round {round}");
        }
    }
    let after = metrics().snapshot();
    // The exact O(shapes) guarantee, race-free because the registry is
    // per-service: 200 submissions, 4 first sightings.
    assert_eq!(svc.known_plan_shapes(), shapes.len());
    // Directional checks on the process-wide counters (lower bounds only:
    // other tests in this binary also drive the cache).
    assert!(
        after.plan_cache_misses >= before.plan_cache_misses + shapes.len() as u64,
        "each shape misses once on first sighting"
    );
    assert!(
        after.plan_cache_hits > before.plan_cache_hits,
        "25 rounds over 4 workers must produce per-worker hits"
    );
}

// ===== property tests ======================================================

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Random integer corpus: a prepared query with a bound integer
    /// parameter equals the literal-inlined compile, on the optimized and
    /// the interpreter paths.
    #[test]
    fn prepared_params_match_inlining(
        keys in prop::collection::vec(0i64..9, 0..10),
        p in 0i64..9,
    ) {
        let list = keys
            .iter()
            .map(|k| k.to_string())
            .collect::<Vec<_>>()
            .join(", ");
        let list = if list.is_empty() { "()".to_string() } else { format!("({list})") };
        let prepared_q = format!(
            "declare variable $p as xs:integer external; \
             for $x in {list} where $x >= $p return $x + 1"
        );
        let inlined_q = format!("for $x in {list} where $x >= {p} return $x + 1");
        let e = Engine::new();
        for mode in [ExecutionMode::NoAlgebra, ExecutionMode::OptimHashJoin] {
            let opts = CompileOptions::mode(mode);
            let mut prepared = e.prepare_cached(&prepared_q, &opts).unwrap();
            prepared.bind_param("p", Sequence::integers([p])).unwrap();
            let got = prepared.run_to_string(&e).unwrap();
            let want = e.prepare(&inlined_q, &opts).unwrap().run_to_string(&e).unwrap();
            prop_assert_eq!(&got, &want, "{:?}: {}", mode, prepared_q);
        }
    }

    /// Re-preparing through the cache never changes a random query's
    /// result, and the canonical hash is deterministic.
    #[test]
    fn cache_hits_are_transparent(keys in prop::collection::vec(0i64..20, 1..8)) {
        let list = keys
            .iter()
            .map(|k| k.to_string())
            .collect::<Vec<_>>()
            .join(", ");
        let q = format!("for $x in ({list}) order by $x return $x * 3");
        let e = Engine::new();
        let opts = CompileOptions::mode(ExecutionMode::OptimHashJoin);
        let cold = e.prepare_cached(&q, &opts).unwrap();
        let hot = e.prepare_cached(&q, &opts).unwrap();
        prop_assert_eq!(cold.canonical_hash(), hot.canonical_hash());
        prop_assert_eq!(cold.explain(), hot.explain());
        prop_assert_eq!(
            cold.run_to_string(&e).unwrap(),
            hot.run_to_string(&e).unwrap()
        );
    }
}
