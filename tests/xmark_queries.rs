//! Integration: all twenty XMark queries run on a generated document and
//! every execution mode (Table 3's four configurations) produces the same
//! result.

use xqr::engine::{CompileOptions, Engine, ExecutionMode};
use xqr_xmark::{generate, query, GenOptions, QUERY_COUNT};

fn engine() -> Engine {
    let xml = generate(&GenOptions::for_bytes(120_000));
    let mut e = Engine::new();
    e.bind_document("auction.xml", &xml)
        .expect("auction document parses");
    e
}

#[test]
fn all_queries_agree_across_modes() {
    let e = engine();
    for n in 1..=QUERY_COUNT {
        let q = query(n);
        let mut results: Vec<(ExecutionMode, String)> = Vec::new();
        for mode in ExecutionMode::ALL {
            let prepared = e
                .prepare(q, &CompileOptions::mode(mode))
                .unwrap_or_else(|err| panic!("Q{n} {mode:?} prepare failed: {err}"));
            let out = prepared
                .run_to_string(&e)
                .unwrap_or_else(|err| panic!("Q{n} {mode:?} run failed: {err}"));
            results.push((mode, out));
        }
        for w in results.windows(2) {
            assert_eq!(
                w[0].1, w[1].1,
                "Q{n}: {:?} and {:?} disagree",
                w[0].0, w[1].0
            );
        }
    }
}

#[test]
fn sanity_of_selected_answers() {
    let e = engine();
    // Q1: person0 exists and has exactly one name.
    let r = e.execute_to_string(query(1)).unwrap();
    assert!(!r.is_empty(), "person0 name: {r:?}");
    // Q5: a count — single integer.
    let r = e.execute(query(5)).unwrap();
    assert_eq!(r.len(), 1);
    // Q6: one count over the regions subtree.
    let r = e.execute(query(6)).unwrap();
    assert_eq!(r.len(), 1);
    // Q8: one element per person.
    let r = e.execute(query(8)).unwrap();
    let people = e
        .execute("count(doc('auction.xml')/site/people/person)")
        .unwrap();
    assert_eq!(r.len().to_string(), people.get(0).unwrap().string_value());
    // Q20: four buckets summing to the number of people with profiles
    // (every person has a profile) — na counts people, others profiles.
    let out = e.execute_to_string(query(20)).unwrap();
    assert!(out.starts_with("<result>"), "{out}");
}

#[test]
fn q8_unnesting_produces_group_by_and_outer_join() {
    let e = engine();
    let prepared = e
        .prepare(
            query(8),
            &CompileOptions::mode(ExecutionMode::OptimHashJoin),
        )
        .unwrap();
    let stats = prepared.rewrite_stats().unwrap();
    assert!(stats.count("insert group-by") >= 1, "{stats:?}");
    assert!(stats.count("insert outer-join") >= 1, "{stats:?}");
    let plan = prepared.explain();
    assert!(plan.contains("GroupBy"), "{plan}");
    assert!(plan.contains("LOuterJoin"), "{plan}");
}

#[test]
fn q9_three_way_join_unnests() {
    let e = engine();
    let prepared = e
        .prepare(
            query(9),
            &CompileOptions::mode(ExecutionMode::OptimHashJoin),
        )
        .unwrap();
    let stats = prepared.rewrite_stats().unwrap();
    assert!(
        stats.count("insert outer-join") >= 2,
        "both nesting levels become outer joins: {stats:?}"
    );
}
