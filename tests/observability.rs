//! Integration: the observability layer — per-operator profiles
//! (`EXPLAIN ANALYZE`), phase/rule tracing, and the engine metrics
//! registry.
//!
//! Structural invariants checked here:
//!
//! * a profile tree mirrors the executed plan node-for-node, on every
//!   execution strategy (pipelined, materialized, Core interpreter);
//! * the root operator's recorded row count equals the query result's
//!   length (property-tested over random inputs);
//! * with profiling disabled nothing is recorded and `explain()` output is
//!   byte-identical before and after a run;
//! * profile JSON parses with an independent mini JSON parser and carries
//!   the tree through unchanged;
//! * a profile tagged with a query id and canonical plan hash joins to the
//!   service's lifecycle journal on exactly those keys;
//! * limit-code errors land in the metrics registry under their `XQRG*`
//!   codes (delta-checked: the registry is process-wide).

mod common;

use std::rc::Rc;

use common::json;
use proptest::prelude::*;
use xqr::core::algebra::plan_size;
use xqr::engine::{CollectingTracer, CompileOptions, Engine, ExecutionMode, Limits, TraceEvent};
use xqr::xml::metrics::metrics;
use xqr_xmark::{generate, query, GenOptions};

fn xmark_engine() -> Engine {
    let xml = generate(&GenOptions::for_bytes(120_000));
    let mut e = Engine::new();
    e.bind_document("auction.xml", &xml)
        .expect("auction document parses");
    e
}

// ===== profile tree shape ==================================================

const SHAPE_QUERIES: [&str; 4] = [
    "for $x in (1,2,3) where $x > 1 return $x * 10",
    "for $x in (1,1,3) \
     let $a := avg(for $y in (1,2) where $x <= $y return $y * 10) \
     return ($x, $a)",
    "for $x in (3,1,2) order by $x descending return $x",
    "some $x in (1,2,3) satisfies $x = 2",
];

#[test]
fn profile_tree_mirrors_plan_on_both_algebra_strategies() {
    let e = Engine::new();
    for q in SHAPE_QUERIES {
        for materialize in [false, true] {
            let mut opts = CompileOptions::mode(ExecutionMode::OptimHashJoin).with_profiling();
            opts.materialize_all = materialize;
            let prepared = e.prepare(q, &opts).unwrap();
            prepared.run(&e).unwrap();
            let profile = prepared.profile().expect("profile recorded");
            let expected = if materialize {
                "materialized"
            } else {
                "pipelined"
            };
            assert_eq!(profile.strategy, expected, "{q:?}");
            let root = profile.root.as_ref().expect("operator tree");
            let plan = &prepared.compiled().unwrap().body;
            assert_eq!(
                root.size(),
                plan_size(plan),
                "{q:?} ({expected}): profile tree and plan tree differ in shape"
            );
            assert!(root.touched, "{q:?} ({expected}): root never recorded");
            // The annotation vector covers every plan node in preorder.
            assert_eq!(profile.annotations().len(), plan_size(plan));
            let rendered = prepared.explain_analyze();
            assert!(rendered.contains("rows="), "{rendered}");
            assert!(rendered.contains(&format!("strategy: {expected}")));
        }
    }
}

#[test]
fn interp_profile_counts_expressions_and_clauses() {
    let e = Engine::new();
    let q = "for $x in (1,2,3) let $y := $x + 1 where $y > 2 return $y";
    let prepared = e
        .prepare(
            q,
            &CompileOptions::mode(ExecutionMode::NoAlgebra).with_profiling(),
        )
        .unwrap();
    prepared.run(&e).unwrap();
    let profile = prepared.profile().expect("profile recorded");
    assert_eq!(profile.strategy, "core-interp");
    assert!(profile.root.is_none(), "no plan tree on the interpreter");
    let counts = profile.interp.expect("interpreter counters");
    assert!(counts.get("clause:for").copied().unwrap_or(0) >= 1);
    assert!(counts.get("clause:let").copied().unwrap_or(0) >= 1);
    assert!(counts.get("clause:where").copied().unwrap_or(0) >= 1);
    assert!(counts.get("Flwor").copied().unwrap_or(0) >= 1);
    let rendered = prepared.explain_analyze();
    assert!(rendered.contains("clause:for"), "{rendered}");
}

// ===== row counts agree with results (property) ============================

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The root operator's recorded rows must equal the result length on
    /// both algebra strategies, for random integer inputs.
    #[test]
    fn root_rows_equal_result_length(vals in prop::collection::vec(0i64..20, 1..12), cut in 0i64..20) {
        let list = vals.iter().map(|v| v.to_string()).collect::<Vec<_>>().join(", ");
        let q = format!("for $x in ({list}) where $x >= {cut} return $x");
        let e = Engine::new();
        for materialize in [false, true] {
            let mut opts = CompileOptions::mode(ExecutionMode::OptimHashJoin).with_profiling();
            opts.materialize_all = materialize;
            let prepared = e.prepare(&q, &opts).unwrap();
            let result = prepared.run(&e).unwrap();
            let root = prepared.profile().unwrap().root.unwrap();
            prop_assert_eq!(
                root.rows,
                result.len() as u64,
                "{} (materialize={})", q, materialize
            );
        }
    }
}

// ===== disabled mode leaves no residue =====================================

#[test]
fn disabled_profiling_records_nothing_and_explain_is_stable() {
    let e = Engine::new();
    let q = "for $x in (1,2,3) where $x > 1 return $x";
    let prepared = e
        .prepare(q, &CompileOptions::mode(ExecutionMode::OptimHashJoin))
        .unwrap();
    let before = prepared.explain();
    prepared.run(&e).unwrap();
    assert!(prepared.profile().is_none(), "profiling was not requested");
    assert!(prepared.profile_json().is_none());
    assert_eq!(
        prepared.explain(),
        before,
        "explain() must be byte-identical across an unprofiled run"
    );
    assert!(prepared.explain_analyze().contains("no profile recorded"));
}

// ===== explain drift: rendered shape regression ============================

#[test]
fn explain_annotates_the_plan_tree_itself() {
    let e = Engine::new();
    let q = "for $x in (1,2) let $a := (for $y in (1,2) where $y = $x return $y) \
             return count($a)";
    let prepared = e
        .prepare(q, &CompileOptions::mode(ExecutionMode::OptimHashJoin))
        .unwrap();
    let text = prepared.explain();
    // Unnested plan shape survives (the PR 1 assertions)...
    assert!(text.contains("GroupBy"), "{text}");
    assert!(text.contains("LOuterJoin"), "{text}");
    assert!(text.contains("execution: pipelined"), "{text}");
    assert!(text.contains("pipelined (streaming):"), "{text}");
    // ...and the streams/materializes notes now ride on the plan nodes.
    assert!(
        text.contains("-- materializes (pipeline breaker)"),
        "{text}"
    );
    assert!(text.contains("-- streams"), "{text}");

    let materialized = e
        .prepare(
            q,
            &CompileOptions::materialized(ExecutionMode::OptimHashJoin),
        )
        .unwrap();
    let text = materialized.explain();
    assert!(text.contains("execution: materialized"), "{text}");
    assert!(text.contains("-- materializes"), "{text}");
}

// ===== phase tracing =======================================================

#[test]
fn tracer_sees_phases_and_rewrite_rules() {
    let tracer = Rc::new(CollectingTracer::new());
    let mut e = Engine::new();
    e.set_tracer(tracer.clone());
    let q = "for $x in (1,2) let $a := (for $y in (1,2) where $y = $x return $y) \
             return count($a)";
    let prepared = e
        .prepare(q, &CompileOptions::mode(ExecutionMode::OptimHashJoin))
        .unwrap();
    prepared.run(&e).unwrap();
    assert_eq!(
        tracer.phases(),
        vec!["parse", "normalize", "compile", "rewrite", "execute"]
    );
    let events = tracer.events();
    let rules: Vec<&TraceEvent> = events
        .iter()
        .filter(|ev| matches!(ev, TraceEvent::Rule { .. }))
        .collect();
    assert!(
        !rules.is_empty(),
        "an unnesting query must fire rewrite rules"
    );
    for ev in &rules {
        if let TraceEvent::Rule {
            rule,
            before_ops,
            after_ops,
            ..
        } = ev
        {
            assert!(!rule.is_empty() && *rule != "unknown");
            assert!(*before_ops > 0 && *after_ops > 0, "{rule}");
        }
    }
    // Clearing the tracer silences subsequent prepares.
    e.clear_tracer();
    let drained = tracer.take();
    assert!(!drained.is_empty());
    e.prepare(q, &CompileOptions::default()).unwrap();
    assert!(tracer.events().is_empty());
}

// ===== JSON round-trip =====================================================
// (The mini JSON parser lives in `tests/common/mod.rs`, shared with the
// observability stress suite.)
#[test]
fn profile_json_round_trips() {
    let e = Engine::new();
    let q = "for $x in (1,2,3) where $x > 1 return $x";
    let prepared = e
        .prepare(
            q,
            &CompileOptions::mode(ExecutionMode::OptimHashJoin).with_profiling(),
        )
        .unwrap();
    let result = prepared.run(&e).unwrap();
    let parsed = json::parse(&prepared.profile_json().unwrap()).expect("valid JSON");
    assert_eq!(parsed.get("strategy").unwrap().as_str(), Some("pipelined"));
    assert!(parsed.get("wall_nanos").unwrap().as_int().unwrap() > 0);
    let root = parsed.get("root").unwrap();
    assert_eq!(
        root.get("rows").unwrap().as_int().unwrap(),
        result.len() as i64
    );
    // The parsed tree's node count equals the in-memory profile tree's.
    fn count(v: &json::Value) -> usize {
        match v.get("children") {
            Some(json::Value::Arr(kids)) => 1 + kids.iter().map(count).sum::<usize>(),
            _ => 1,
        }
    }
    let profile = prepared.profile().unwrap();
    assert_eq!(count(root), profile.root.unwrap().size());
}

// ===== query-id / plan-hash join keys ======================================

/// A profile tagged with a query id and the canonical plan hash joins to
/// the service journal on exactly those two keys: `EXPLAIN ANALYZE` of a
/// service query can be correlated with its lifecycle timeline.
#[test]
fn profile_joins_to_service_journal_on_query_id_and_plan_hash() {
    use xqr::engine::{QueryRequest, QueryService, ServiceConfig};

    let q = "for $x in (1,2,3) where $x > 1 return $x";

    // Engine side: tag a prepared query the way a service worker does.
    let e = Engine::new();
    let prepared = e
        .prepare(
            q,
            &CompileOptions::mode(ExecutionMode::OptimHashJoin).with_profiling(),
        )
        .unwrap();
    prepared.set_query_id(42);
    prepared.run(&e).unwrap();
    assert_eq!(prepared.query_id(), Some(42));
    let hash = prepared.canonical_hash().expect("algebra plan hash");
    let parsed = json::parse(&prepared.profile_json().unwrap()).expect("valid JSON");
    assert_eq!(parsed.get("query_id").unwrap().as_int(), Some(42));
    assert_eq!(
        parsed.get("plan_hash").unwrap().as_str(),
        Some(format!("{hash:016x}").as_str())
    );
    let rendered = prepared.explain_analyze();
    assert!(rendered.contains("query: 42"), "{rendered}");
    assert!(
        rendered.contains(&format!("plan: {hash:016x}")),
        "{rendered}"
    );

    // Service side: the ticket id is the journal id, and the journal's
    // plan hash equals the out-of-band canonical hash of the same text.
    let svc = QueryService::new(ServiceConfig {
        workers: 1,
        ..ServiceConfig::default()
    });
    let ticket = svc.submit(QueryRequest::new(q)).unwrap();
    let id = ticket.id();
    let out = ticket.wait().unwrap();
    assert_eq!(out.id, id, "the ticket id rides on the output");
    let report = svc.observe();
    let tl = report
        .journal
        .iter()
        .find(|t| t.id == id)
        .expect("journal entry for the completed query");
    assert_eq!(tl.plan_hash, Some(hash), "journal joins on the plan hash");
    assert!(
        report.shapes.iter().any(|s| s.plan_hash == hash),
        "shape table joins on the plan hash"
    );
    // The journal JSON spells the hash the same way the profile does.
    let rj = json::parse(&svc.observe_json()).expect("valid observe JSON");
    let journal = rj.get("journal").unwrap().as_arr().unwrap();
    let entry = journal
        .iter()
        .find(|t| t.get("id").and_then(json::Value::as_int) == Some(id as i64))
        .expect("journal JSON entry");
    assert_eq!(
        entry.get("plan_hash").unwrap().as_str(),
        Some(format!("{hash:016x}").as_str())
    );
}

#[test]
fn metrics_json_parses() {
    let e = Engine::new();
    e.execute("1 + 1").unwrap();
    let parsed = json::parse(&e.metrics_json()).expect("valid JSON");
    assert!(parsed.get("queries_started").unwrap().as_int().unwrap() >= 1);
    assert!(e.metrics_text().contains("queries_started"));
}

// ===== metrics registry ====================================================

#[test]
fn limit_errors_are_counted_by_code() {
    let e = Engine::new();
    let before = metrics().snapshot();
    let q = "for $x in 1 to 100000 return $x";
    let err = e
        .prepare(
            q,
            &CompileOptions::default().limits(Limits::none().with_max_tuples(50)),
        )
        .unwrap()
        .run(&e)
        .unwrap_err();
    assert_eq!(err.code(), Some("XQRG0003"));
    let after = metrics().snapshot();
    // Deltas, not absolutes: the registry is process-wide and other tests
    // in this binary also run queries.
    assert!(after.queries_started > before.queries_started);
    assert!(after.queries_failed > before.queries_failed);
    assert!(after.error_count("XQRG0003") > before.error_count("XQRG0003"));

    let ok_before = metrics().snapshot();
    e.execute("1 + 1").unwrap();
    let ok_after = metrics().snapshot();
    assert!(ok_after.queries_ok > ok_before.queries_ok);
}

// ===== acceptance: XMark queries, time telescopes to wall ==================

#[test]
fn xmark_profiles_sum_to_wall_clock_on_both_strategies() {
    let e = xmark_engine();
    for n in [6, 7, 14] {
        for materialize in [false, true] {
            let mut opts = CompileOptions::mode(ExecutionMode::OptimHashJoin).with_profiling();
            opts.materialize_all = materialize;
            let prepared = e.prepare(query(n), &opts).unwrap();
            let result = prepared.run(&e).unwrap();
            let profile = prepared.profile().unwrap();
            let root = profile.root.as_ref().unwrap();
            assert_eq!(
                root.rows,
                result.len() as u64,
                "Q{n} materialize={materialize}"
            );
            assert!(root.touched, "Q{n}");
            // Per-operator self times telescope back to the root's
            // inclusive estimate, and the root estimate cannot wildly
            // exceed the measured wall clock (sampling error allowed: the
            // estimate extrapolates 1-in-64 samples).
            assert!(root.nanos > 0, "Q{n}: no time recorded");
            // Self times telescope: the sum over the tree reconstructs at
            // least the root's inclusive estimate (saturating subtraction
            // can only push individual self times up, never down).
            assert!(
                root.exclusive_sum() >= root.nanos,
                "Q{n}: exclusive times must telescope to the root inclusive"
            );
            assert!(
                root.nanos <= profile.wall_nanos.saturating_mul(4).max(1_000_000),
                "Q{n} materialize={materialize}: estimate {} vs wall {}",
                root.nanos,
                profile.wall_nanos
            );
            let rendered = prepared.explain_analyze();
            assert!(rendered.contains("rows="), "Q{n}: {rendered}");
        }
    }
}
