//! More W3C XML Query Use Cases: the TREE family (recursive document
//! structure), the SEQ family (document-order operations over a medical
//! report), and PARTS (recursive assembly construction) — the use-case
//! suite is part of the paper's regression tests. All checked across
//! execution modes.

use xqr::engine::{CompileOptions, Engine, ExecutionMode};

const BOOK: &str = r#"<book>
  <title>Data on the Web</title>
  <author>Serge Abiteboul</author>
  <section id="intro" difficulty="easy">
    <title>Introduction</title>
    <p>Audience of this book.</p>
    <section>
      <title>Web Data and the Two Cultures</title>
      <p>Diverse fields.</p>
      <figure height="400" width="400"><title>Traditional client/server</title><image source="csarch.gif"/></figure>
    </section>
  </section>
  <section id="syntax" difficulty="medium">
    <title>A Syntax For Data</title>
    <p>Base syntax.</p>
    <figure height="200" width="500"><title>Graph representations</title><image source="graphs.gif"/></figure>
    <section>
      <title>Base Types</title>
      <p>Basics.</p>
    </section>
    <section>
      <title>Representing Relational Databases</title>
      <p>Rows.</p>
      <figure height="250" width="400"><title>Relational data</title><image source="relational.gif"/></figure>
    </section>
  </section>
</book>"#;

const REPORT: &str = r#"<report>
  <section><section.title>Procedure</section.title>
    <procedure>
      <incision><instrument>scalpel</instrument><anesthesia>local</anesthesia></incision>
      <incision><instrument>electrocautery</instrument></incision>
      <action><instrument>curved scissors</instrument></action>
      <observation>normal appearance</observation>
    </procedure>
  </section>
</report>"#;

fn engine() -> Engine {
    let mut e = Engine::new();
    e.bind_document("book.xml", BOOK).unwrap();
    e.bind_document("report.xml", REPORT).unwrap();
    e
}

fn check(q: &str, expected: &str) {
    let e = engine();
    for mode in ExecutionMode::ALL {
        let out = e
            .prepare(q, &CompileOptions::mode(mode))
            .unwrap_or_else(|err| panic!("{mode:?} prepare {q:?}: {err}"))
            .run_to_string(&e)
            .unwrap_or_else(|err| panic!("{mode:?} run {q:?}: {err}"));
        assert_eq!(out, expected, "{mode:?}: {q}");
    }
}

/// TREE Q1: table of contents via a recursive function over sections.
#[test]
fn tree_q1_recursive_toc() {
    let q = "declare function local:toc($s) \
             { for $sec in $s/section \
               return <section>{ $sec/title }{ local:toc($sec) }</section> }; \
             <toc>{ local:toc(doc('book.xml')/book) }</toc>";
    let e = engine();
    let out = e.execute_to_string(q).unwrap();
    assert!(out.starts_with("<toc><section><title>Introduction</title>"));
    // Nested sections survive recursion.
    assert!(out.contains("<section><title>Base Types</title></section>"));
    // Modes agree on the recursive output.
    for mode in ExecutionMode::ALL {
        let o = e
            .prepare(q, &CompileOptions::mode(mode))
            .unwrap()
            .run_to_string(&e)
            .unwrap();
        assert_eq!(o, out, "{mode:?}");
    }
}

/// TREE Q2: count figures at any depth.
#[test]
fn tree_q2_count_figures() {
    check("count(doc('book.xml')//figure)", "3");
}

/// TREE Q3/Q4: top-level vs deep section counts.
#[test]
fn tree_section_depths() {
    check("count(doc('book.xml')/book/section)", "2");
    check("count(doc('book.xml')//section)", "5");
}

/// TREE Q5: titles of sections directly containing figures.
#[test]
fn tree_q5_figures_with_titles() {
    check(
        "for $s in doc('book.xml')//section \
         where exists($s/figure) \
         return ($s/title/text(), ';')",
        "Web Data and the Two Cultures;A Syntax For Data;Representing Relational Databases;",
    );
}

/// TREE Q6: one-level projection of top sections (title + figure count).
#[test]
fn tree_q6_section_summary() {
    check(
        "for $s in doc('book.xml')/book/section \
         return <summary title=\"{$s/title/text()}\" figures=\"{count($s//figure)}\"/>",
        "<summary title=\"Introduction\" figures=\"1\"/>\
         <summary title=\"A Syntax For Data\" figures=\"2\"/>",
    );
}

/// SEQ Q1: instruments of the first two incisions, in document order.
#[test]
fn seq_q1_first_two_incisions() {
    check(
        "for $i in (doc('report.xml')//incision)[position() <= 2] \
         return $i/instrument/text()",
        "scalpelelectrocautery",
    );
}

/// SEQ Q2: everything between the first and second incision (`<<`/`>>`).
#[test]
fn seq_q2_between_incisions() {
    check(
        "let $i1 := (doc('report.xml')//incision)[1] \
         let $i2 := (doc('report.xml')//incision)[2] \
         return count(for $n in doc('report.xml')//node() \
                      where $i1 << $n and $n << $i2 return $n)",
        "4", // instrument + its text + anesthesia + its text
    );
}

/// SEQ Q4: actions after the second incision.
#[test]
fn seq_q4_after_second_incision() {
    check(
        "let $i2 := (doc('report.xml')//incision)[2] \
         return count(for $a in doc('report.xml')//action \
                      where $i2 << $a return $a)",
        "1",
    );
}

/// PARTS-style recursive construction with accumulated depth.
#[test]
fn parts_recursive_depth() {
    let q = "declare function local:depth($n) as xs:integer \
             { if (empty($n/*)) then 1 \
               else 1 + max(for $c in $n/* return local:depth($c)) }; \
             local:depth(doc('book.xml')/book)";
    check(q, "5"); // book → section → section → figure → image
}

/// Mixed: conditional inside recursive construction.
#[test]
fn tree_conditional_rendering() {
    check(
        "for $s in doc('book.xml')/book/section \
         return if ($s/@difficulty = 'easy') \
                then <basic>{ $s/title/text() }</basic> \
                else <advanced>{ $s/title/text() }</advanced>",
        "<basic>Introduction</basic><advanced>A Syntax For Data</advanced>",
    );
}
