//! Document projection (`TreeProject`, Table 1 / Marian & Siméon):
//! correctness on the XMark workload, pruning effect, and the conservative
//! safety analysis.

use xqr::engine::{CompileOptions, Engine, ExecutionMode};
use xqr_xmark::{generate, query, GenOptions};

fn engine() -> Engine {
    let xml = generate(&GenOptions::for_bytes(100_000));
    let mut e = Engine::new();
    e.bind_document("auction.xml", &xml).unwrap();
    e
}

#[test]
fn xmark_results_unchanged_under_projection() {
    let e = engine();
    for n in 1..=xqr_xmark::QUERY_COUNT {
        let q = query(n);
        let plain = e
            .prepare(q, &CompileOptions::mode(ExecutionMode::OptimHashJoin))
            .unwrap()
            .run_to_string(&e)
            .unwrap();
        let projected = e
            .prepare(
                q,
                &CompileOptions::with_projection(ExecutionMode::OptimHashJoin),
            )
            .unwrap()
            .run_to_string(&e)
            .unwrap_or_else(|err| panic!("Q{n} with projection: {err}"));
        assert_eq!(plain, projected, "Q{n} changed under projection");
    }
}

#[test]
fn projection_appears_in_plan_for_navigation_queries() {
    let e = engine();
    // Q1 only touches /site/people/person[@id]/name — heavy pruning.
    let p = e
        .prepare(
            query(1),
            &CompileOptions::with_projection(ExecutionMode::OptimHashJoin),
        )
        .unwrap();
    assert!(
        p.explain().contains("TreeProject") || {
            // The projection wraps a *global*, not the body; check via compiled
            // module instead.
            p.compiled()
                .map(|m| {
                    m.globals.iter().any(|g| {
                    matches!(&g.plan, Some(plan) if format!("{plan:?}").contains("TreeProject"))
                })
                })
                .unwrap_or(false)
        }
    );
}

#[test]
fn projection_prunes_most_of_the_tree() {
    // Direct check of the operator: project the auction doc down to the
    // person names and compare node counts.
    use xqr::core::algebra::{Op, Plan};
    use xqr::xml::axes::{Axis, NameTest, NodeTest};

    let xml = generate(&GenOptions::for_bytes(100_000));
    let doc = xqr::xml::parse_document(&xml, &xqr::xml::ParseOptions::default()).unwrap();
    let total_nodes = doc.node_count();

    let mut e = Engine::new();
    e.bind_document_node("auction.xml", doc.root());
    // Build a tiny module around the operator through the public pipeline.
    let q = "let $d := doc('auction.xml') return count($d/site/people/person/name)";
    let with = e
        .prepare(
            q,
            &CompileOptions::with_projection(ExecutionMode::OptimHashJoin),
        )
        .unwrap()
        .run_to_string(&e)
        .unwrap();
    let without = e.execute_to_string(q).unwrap();
    assert_eq!(with, without);

    // And measure the pruning with the raw operator.
    let path = vec![vec![
        (Axis::Child, NodeTest::Name(NameTest::local("site"))),
        (Axis::Child, NodeTest::Name(NameTest::local("people"))),
        (Axis::Child, NodeTest::Name(NameTest::local("person"))),
        (Axis::Child, NodeTest::Name(NameTest::local("name"))),
    ]];
    let _ = Plan::new(Op::Empty);
    let projected = project_via_runtime(doc.root(), path);
    assert!(
        projected < total_nodes / 2,
        "projection should prune most nodes: {projected} of {total_nodes}"
    );
}

fn project_via_runtime(
    root: xqr::xml::NodeHandle,
    paths: Vec<Vec<(xqr::xml::axes::Axis, xqr::xml::axes::NodeTest)>>,
) -> usize {
    // Run TreeProject through a one-off engine query plan.
    use std::collections::HashMap;
    use xqr::core::algebra::{Op, Plan};
    use xqr::core::compile::CompiledModule;

    let module = CompiledModule {
        functions: HashMap::new(),
        globals: Vec::new(),
        body: Plan::new(Op::TreeProject {
            paths,
            input: Box::new(Plan::new(Op::Parse {
                uri: Box::new(Plan::scalar(xqr::xml::AtomicValue::string("auction.xml"))),
            })),
        }),
    };
    let schema = xqr::types::Schema::new();
    let mut docs = HashMap::new();
    docs.insert("auction.xml".to_string(), root);
    let mut ctx =
        xqr::runtime::Ctx::new(&module, &schema, &docs, xqr::runtime::JoinAlgorithm::Hash);
    let out = xqr::runtime::eval::eval_module(&mut ctx).unwrap();
    let node = out.get(0).unwrap().as_node().unwrap().clone();
    node.doc.node_count()
}

#[test]
fn unsafe_queries_still_correct_with_projection_flag() {
    // Queries using parent axes: the pass must decline, results unchanged.
    let e = engine();
    let q = "let $d := doc('auction.xml') return \
             count(for $n in $d//name return $n/..)";
    let plain = e.execute_to_string(q).unwrap();
    let flagged = e
        .prepare(
            q,
            &CompileOptions::with_projection(ExecutionMode::OptimHashJoin),
        )
        .unwrap()
        .run_to_string(&e)
        .unwrap();
    assert_eq!(plain, flagged);
}
