//! Property-based tests over the core invariants:
//!
//! * all execution modes (and all three join algorithms) agree on randomly
//!   generated join queries over randomly typed data — the central
//!   correctness claim behind the Section 6 hash join;
//! * the XML parser/serializer round-trips generated trees;
//! * decimals round-trip their lexical forms;
//! * the rewriter never changes query results (checked via random nested
//!   queries).

use proptest::prelude::*;
use xqr::engine::{CompileOptions, Engine, ExecutionMode};

// ===== generators ==========================================================

/// A join-key value rendered into query text, mixing the type categories
/// that exercise fs:convert-operand (Table 2): integers, decimals, doubles,
/// and strings-of-digits (untyped-ish content).
fn key_literal() -> impl Strategy<Value = String> {
    prop_oneof![
        (0i64..8).prop_map(|i| i.to_string()),
        (0i64..8).prop_map(|i| format!("{i}.0")),
        (0i64..8).prop_map(|i| format!("{i}e0")),
        (0i64..8).prop_map(|i| format!("'{i}'")),
        (0i64..4).prop_map(|i| format!("'k{i}'")),
    ]
}

fn key_list(max: usize) -> impl Strategy<Value = String> {
    prop::collection::vec(key_literal(), 0..max).prop_map(|v| format!("({})", v.join(", ")))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Join semantics: for random left/right key lists, the correlated
    /// count query must agree across all execution modes and all join
    /// algorithms. General comparisons over mixed numeric/string values
    /// follow the paper's convert-operand semantics, so a string key never
    /// silently equals a numeric key — and the hash join must reproduce
    /// nested-loop results exactly, including match multiplicities.
    #[test]
    fn joins_agree_on_random_keys(left in key_list(7), right in key_list(7)) {
        let q = format!(
            "for $x in {left} \
             let $m := for $y in {right} where $y = $x return $y \
             return count($m)"
        );
        let e = Engine::new();
        let mut outputs = Vec::new();
        for mode in [
            ExecutionMode::NoAlgebra,
            ExecutionMode::AlgebraNoOptim,
            ExecutionMode::OptimNestedLoop,
            ExecutionMode::OptimHashJoin,
            ExecutionMode::OptimSortJoin,
        ] {
            let out = e
                .prepare(&q, &CompileOptions::mode(mode))
                .unwrap()
                .run_to_string(&e);
            // Comparing a string to a number raises XPTY0004: modes must
            // agree on *whether* it errors too.
            outputs.push(out.map_err(|err| format!("{err}")));
        }
        for w in outputs.windows(2) {
            prop_assert_eq!(&w[0], &w[1], "query: {}", q);
        }
    }

    /// Ordering: order by over random keys agrees across modes and is a
    /// permutation of the input.
    #[test]
    fn order_by_agrees(keys in prop::collection::vec(0i64..50, 0..12)) {
        let list = keys
            .iter()
            .map(|k| k.to_string())
            .collect::<Vec<_>>()
            .join(", ");
        let q = format!("for $x in ({list}) order by $x descending return $x");
        let e = Engine::new();
        let base = e
            .prepare(&q, &CompileOptions::mode(ExecutionMode::NoAlgebra))
            .unwrap()
            .run_to_string(&e)
            .unwrap();
        let opt = e.execute_to_string(&q).unwrap();
        prop_assert_eq!(&base, &opt);
        let mut sorted = keys.clone();
        sorted.sort_unstable_by(|a, b| b.cmp(a));
        let expected = sorted
            .iter()
            .map(|k| k.to_string())
            .collect::<Vec<_>>()
            .join(" ");
        prop_assert_eq!(opt, expected);
    }

    /// Positional predicates match the naive definition.
    #[test]
    fn positional_predicates(n in 0usize..10, pos in 1i64..12) {
        let list = (0..n).map(|i| i.to_string()).collect::<Vec<_>>().join(", ");
        let q = format!("({list})[{pos}]");
        let e = Engine::new();
        let out = e.execute_to_string(&q).unwrap();
        let expected = if (pos as usize) <= n {
            (pos - 1).to_string()
        } else {
            String::new()
        };
        prop_assert_eq!(out, expected);
    }

    /// Arithmetic distributes over modes.
    #[test]
    fn arithmetic_agrees(a in -50i64..50, b in -50i64..50, c in 1i64..9) {
        let q = format!("({a} + {b}) * {c} - {a} idiv {c}");
        let e = Engine::new();
        let base = e
            .prepare(&q, &CompileOptions::mode(ExecutionMode::NoAlgebra))
            .unwrap()
            .run_to_string(&e)
            .unwrap();
        prop_assert_eq!(base, e.execute_to_string(&q).unwrap());
    }
}

// ===== XML round-trip ======================================================

/// Random tree rendered as an XML string.
fn arb_xml_tree() -> impl Strategy<Value = String> {
    let leaf = prop_oneof![
        "[a-z]{1,8}".prop_map(|t| t),
        Just("<leaf/>".to_string()),
        "[a-z]{1,5}".prop_map(|v| format!("<e a=\"{v}\"/>")),
    ];
    leaf.prop_recursive(3, 24, 4, |inner| {
        (prop::collection::vec(inner, 0..4), "[a-z]{1,6}")
            .prop_map(|(children, name)| format!("<{name}>{}</{name}>", children.join("")))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// serialize(parse(x)) == normalize(x) for generated documents.
    #[test]
    fn xml_round_trip(tree in arb_xml_tree()) {
        let doc = format!("<root>{tree}</root>");
        let parsed = xqr::xml::parse_document(&doc, &xqr::xml::ParseOptions::default()).unwrap();
        let serialized = xqr::xml::serialize::serialize_node(&parsed.root());
        let reparsed = xqr::xml::parse_document(&serialized, &xqr::xml::ParseOptions::default())
            .unwrap();
        let again = xqr::xml::serialize::serialize_node(&reparsed.root());
        prop_assert_eq!(serialized, again);
    }

    /// Decimal lexical round-trip.
    #[test]
    fn decimal_round_trip(i in -1_000_000i64..1_000_000, frac in 0u32..1_000_000) {
        let s = format!("{}.{:06}", i, frac);
        let d = xqr::xml::Decimal::parse(&s).unwrap();
        let d2 = xqr::xml::Decimal::parse(&d.to_string()).unwrap();
        prop_assert_eq!(d, d2);
    }

    /// The query parser never panics on arbitrary input.
    #[test]
    fn parser_never_panics(input in "\\PC{0,120}") {
        let _ = xqr::frontend::parse_query(&input);
    }
}

/// Regression (code review): promoted hash keys can collide lossily — two
/// distinct decimals that round to the same float must NOT hash-join.
#[test]
fn hash_join_rechecks_original_values() {
    let e = Engine::new();
    let q = "for $x in (16777216.0) \
             let $m := for $y in (16777217.0) where $y = $x return $y \
             return count($m)";
    for mode in [ExecutionMode::OptimNestedLoop, ExecutionMode::OptimHashJoin] {
        let out = e
            .prepare(q, &CompileOptions::mode(mode))
            .unwrap()
            .run_to_string(&e)
            .unwrap();
        assert_eq!(out, "0", "{mode:?}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Statically-typed join keys (cast both sides) take the specialized
    /// single-entry path; results must still match nested loop.
    #[test]
    fn specialized_join_agrees(
        left in prop::collection::vec(0i64..6, 0..7),
        right in prop::collection::vec(0i64..6, 0..7),
    ) {
        let l = left.iter().map(|v| v.to_string()).collect::<Vec<_>>().join(", ");
        let r = right.iter().map(|v| v.to_string()).collect::<Vec<_>>().join(", ");
        let q = format!(
            "for $x in ({l}) \
             let $m := for $y in ({r}) \
                       where ($y cast as xs:integer) = ($x cast as xs:integer) return $y \
             return count($m)"
        );
        let e = Engine::new();
        let nl = e
            .prepare(&q, &CompileOptions::mode(ExecutionMode::OptimNestedLoop))
            .unwrap()
            .run_to_string(&e)
            .unwrap();
        let hash = e
            .prepare(&q, &CompileOptions::mode(ExecutionMode::OptimHashJoin))
            .unwrap()
            .run_to_string(&e)
            .unwrap();
        prop_assert_eq!(nl, hash);
    }
}

// ===== random nested-FLWOR generator =======================================

/// Builds a nested FLWOR query of the given shape: level k iterates its
/// list, correlates with level k-1 through a random comparison in a where
/// clause, aggregates the level below in a let — the general form the
/// Section 5 unnesting pipeline must handle at any depth.
fn build_nested_query(lists: &[Vec<i64>], ops: &[&str], aggs: &[&str]) -> String {
    fn level(lists: &[Vec<i64>], ops: &[&str], aggs: &[&str], l: usize) -> String {
        let list = lists[l]
            .iter()
            .map(|v| v.to_string())
            .collect::<Vec<_>>()
            .join(", ");
        let where_clause = if l > 0 {
            format!("where $x{l} {} $x{} ", ops[l - 1], l - 1)
        } else {
            String::new()
        };
        if l + 1 < lists.len() {
            let inner = level(lists, ops, aggs, l + 1);
            format!(
                "for $x{l} in ({list}) {where_clause}\
                 let $a{l} := ({inner}) \
                 return ($x{l}, {}($a{l}))",
                aggs[l]
            )
        } else {
            format!("for $x{l} in ({list}) {where_clause}return $x{l} * 2")
        }
    }
    level(lists, ops, aggs, 0)
}

fn small_list() -> impl Strategy<Value = Vec<i64>> {
    prop::collection::vec(0i64..5, 0..5)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// The unnesting pipeline must preserve semantics for arbitrarily
    /// shaped correlated nestings (2–4 levels, random comparison ops and
    /// aggregates) — interpreter, naive algebra, NL and hash joins all
    /// agree.
    #[test]
    fn random_nested_flwors_agree(
        lists in prop::collection::vec(small_list(), 2..4),
        op_idx in prop::collection::vec(0usize..5, 3),
        agg_idx in prop::collection::vec(0usize..3, 3),
    ) {
        const OPS: [&str; 5] = ["=", "!=", "<", "<=", ">="];
        const AGGS: [&str; 3] = ["count", "sum", "string-join-lite"];
        let ops: Vec<&str> = op_idx.iter().map(|i| OPS[*i]).collect();
        let aggs: Vec<&str> = agg_idx
            .iter()
            .map(|i| if AGGS[*i] == "string-join-lite" { "count" } else { AGGS[*i] })
            .collect();
        let q = build_nested_query(&lists, &ops, &aggs);
        let e = Engine::new();
        let mut outs = Vec::new();
        for mode in ExecutionMode::ALL {
            let out = e
                .prepare(&q, &CompileOptions::mode(mode))
                .unwrap_or_else(|err| panic!("prepare {q}: {err}"))
                .run_to_string(&e)
                .unwrap_or_else(|err| panic!("{mode:?} {q}: {err}"));
            outs.push(out);
        }
        for w in outs.windows(2) {
            prop_assert_eq!(&w[0], &w[1], "query: {}", q);
        }
    }
}

// ===== axis invariants ======================================================

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Navigation invariants on random trees: descendant results are in
    /// document order without duplicates; parent is the inverse of child;
    /// following/preceding partition the document around each node.
    #[test]
    fn axis_invariants(tree in arb_xml_tree()) {
        use xqr::xml::axes::{tree_join, Axis, KindTest, NodeTest};
        use xqr::xml::node::TrivialHierarchy;
        use xqr::xml::{Item, Sequence};

        let doc = format!("<root>{tree}</root>");
        let parsed = xqr::xml::parse_document(&doc, &xqr::xml::ParseOptions::default()).unwrap();
        let root = parsed.root();
        let everything = tree_join(
            &Sequence::singleton(root.clone()),
            Axis::DescendantOrSelf,
            &NodeTest::Kind(KindTest::AnyKind),
            &TrivialHierarchy,
        )
        .unwrap();
        // Document order + uniqueness.
        let keys: Vec<_> = everything
            .iter()
            .map(|i| i.as_node().unwrap().order_key())
            .collect();
        let mut sorted = keys.clone();
        sorted.dedup();
        prop_assert_eq!(&keys, &sorted, "sorted and duplicate-free");

        for item in everything.iter() {
            let Item::Node(n) = item else { unreachable!() };
            // child∘parent ⊇ self (every child's parent is the node).
            for c in n.children() {
                prop_assert!(c.parent().unwrap().same_node(n));
            }
            if n.same_node(&root) {
                continue;
            }
            // following ∪ preceding ∪ ancestors ∪ self-or-descendants
            // covers the whole tree exactly once (ignoring attributes).
            let fol = tree_join(
                &Sequence::singleton(n.clone()),
                Axis::Following,
                &NodeTest::Kind(KindTest::AnyKind),
                &TrivialHierarchy,
            )
            .unwrap();
            let pre = tree_join(
                &Sequence::singleton(n.clone()),
                Axis::Preceding,
                &NodeTest::Kind(KindTest::AnyKind),
                &TrivialHierarchy,
            )
            .unwrap();
            let anc = tree_join(
                &Sequence::singleton(n.clone()),
                Axis::AncestorOrSelf,
                &NodeTest::Kind(KindTest::AnyKind),
                &TrivialHierarchy,
            )
            .unwrap();
            let desc = tree_join(
                &Sequence::singleton(n.clone()),
                Axis::Descendant,
                &NodeTest::Kind(KindTest::AnyKind),
                &TrivialHierarchy,
            )
            .unwrap();
            prop_assert_eq!(
                fol.len() + pre.len() + anc.len() + desc.len(),
                everything.len(),
                "axes partition the tree around {:?}",
                n
            );
        }
    }
}
