//! Physical join algorithms head-to-head: the nested-loop, hash (Fig. 6),
//! and B-tree sort joins must be interchangeable on real workloads, and the
//! hash join's type machinery must handle the Table 2 matrix end-to-end.

use xqr::engine::{CompileOptions, Engine, ExecutionMode};
use xqr_xmark::{generate, query, GenOptions};

const JOIN_MODES: [ExecutionMode; 3] = [
    ExecutionMode::OptimNestedLoop,
    ExecutionMode::OptimHashJoin,
    ExecutionMode::OptimSortJoin,
];

#[test]
fn xmark_join_queries_agree_across_algorithms() {
    let xml = generate(&GenOptions::for_bytes(100_000));
    let mut e = Engine::new();
    e.bind_document("auction.xml", &xml).unwrap();
    for qn in [8usize, 9, 10, 11, 12] {
        let mut outs = Vec::new();
        for mode in JOIN_MODES {
            outs.push(
                e.prepare(query(qn), &CompileOptions::mode(mode))
                    .unwrap()
                    .run_to_string(&e)
                    .unwrap_or_else(|err| panic!("Q{qn} {mode:?}: {err}")),
            );
        }
        assert_eq!(outs[0], outs[1], "Q{qn}: NL vs hash");
        assert_eq!(outs[1], outs[2], "Q{qn}: hash vs sort");
    }
}

fn join_counts(left: &str, right: &str) -> Vec<String> {
    let q = format!(
        "for $x in {left} \
         let $m := for $y in {right} where $y = $x return $y \
         return count($m)"
    );
    let e = Engine::new();
    JOIN_MODES
        .iter()
        .map(|m| {
            e.prepare(&q, &CompileOptions::mode(*m))
                .unwrap()
                .run_to_string(&e)
                .unwrap()
        })
        .collect()
}

#[test]
fn untyped_vs_typed_matrix() {
    // Table 2 end-to-end: numeric string content joins numerics as double,
    // strings as strings, and never across.
    for (l, r, expected) in [
        // integers vs decimals: promotion.
        ("(1, 2, 3)", "(2.0, 3.0, 9.0)", "0 1 1"),
        // doubles vs integers.
        ("(1e0, 4e0)", "(1, 2, 4)", "1 1"),
        // strings join strings.
        ("('a', 'b')", "('b', 'b', 'c')", "0 2"),
        // strings never join numbers (non-match, not error).
        ("('1', '2')", "(1, 2)", "0 0"),
        // duplicates on both sides multiply.
        ("(5, 5)", "(5, 5, 5)", "3 3"),
        // empty sides.
        ("()", "(1)", ""),
        ("(1)", "()", "0"),
    ] {
        let outs = join_counts(l, r);
        for (mode, out) in JOIN_MODES.iter().zip(&outs) {
            assert_eq!(out, expected, "{mode:?}: {l} ⋈ {r}");
        }
    }
}

#[test]
fn untyped_node_content_joins_numerically() {
    // Node content is untypedAtomic: per Table 2 it compares to numerics as
    // double — "07" matches 7 numerically but not the string "7".
    let mut e = Engine::new();
    e.bind_document("d.xml", "<r><v>07</v><v>7</v><v>x</v></r>")
        .unwrap();
    for (pred_side, expected) in [("(7)", "2"), ("('7')", "1"), ("('07')", "1")] {
        let q = format!(
            "count(for $v in doc('d.xml')//v \
             let $m := for $k in {pred_side} where $v/text() = $k return $k \
             where exists($m) return $v)"
        );
        for mode in JOIN_MODES {
            let out = e
                .prepare(&q, &CompileOptions::mode(mode))
                .unwrap()
                .run_to_string(&e)
                .unwrap();
            assert_eq!(out, expected, "{mode:?} key {pred_side}");
        }
    }
}

#[test]
fn order_preservation_under_all_algorithms() {
    // The join output must follow outer order, and per outer tuple the
    // inner sequence order (Fig. 6 stores/recovers ordinal positions).
    let q = "for $x in (3, 1, 2) \
             for $y in (10, 30, 20, 10) \
             where ($y idiv 10) = $x or ($y idiv 10) = $x \
             return ($x * 100) + $y";
    let e = Engine::new();
    let mut outs = Vec::new();
    for mode in JOIN_MODES {
        outs.push(
            e.prepare(q, &CompileOptions::mode(mode))
                .unwrap()
                .run_to_string(&e)
                .unwrap(),
        );
    }
    assert_eq!(outs[0], "330 110 110 220");
    assert_eq!(outs[0], outs[1]);
    assert_eq!(outs[1], outs[2]);
}

#[test]
fn multi_conjunct_predicates_use_residuals() {
    // One equality is hashed; the second conjunct must be applied as a
    // residual filter per candidate.
    let q = "for $x in (1, 2, 3, 4) \
             for $y in (1, 2, 3, 4) \
             where $x = $y and $y >= 3 \
             return $y";
    let e = Engine::new();
    for mode in JOIN_MODES {
        let out = e
            .prepare(q, &CompileOptions::mode(mode))
            .unwrap()
            .run_to_string(&e)
            .unwrap();
        assert_eq!(out, "3 4", "{mode:?}");
    }
}

#[test]
fn inequality_joins_fall_back_to_nested_loop() {
    // No hashable equality: the hash/sort modes must still compute the
    // right answer (via NL fallback).
    let q = "count(for $x in (1, 2, 3) for $y in (2, 3, 4) where $x < $y return 1)";
    let e = Engine::new();
    for mode in JOIN_MODES {
        let out = e
            .prepare(q, &CompileOptions::mode(mode))
            .unwrap()
            .run_to_string(&e)
            .unwrap();
        assert_eq!(out, "6", "{mode:?}");
    }
}
