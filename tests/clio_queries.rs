//! Integration: the Clio-style mapping queries N2/N3/N4 (Table 5) run on a
//! generated DBLP document, agree across execution modes, and get fully
//! unnested by the rewriter.

use xqr::engine::{CompileOptions, Engine, ExecutionMode};
use xqr_clio::{generate_dblp, mapping_query, DblpOptions};

fn engine(bytes: usize) -> Engine {
    let xml = generate_dblp(&DblpOptions::for_bytes(bytes));
    let mut e = Engine::new();
    e.bind_document("dblp.xml", &xml).expect("dblp parses");
    e
}

#[test]
fn n2_n3_agree_across_modes() {
    // Small document: the NoAlgebra and nested-loop modes are quadratic+.
    let e = engine(4_000);
    for levels in [2, 3] {
        let q = mapping_query(levels);
        let mut results = Vec::new();
        for mode in ExecutionMode::ALL {
            let out = e
                .prepare(&q, &CompileOptions::mode(mode))
                .unwrap_or_else(|err| panic!("N{levels} {mode:?} prepare: {err}"))
                .run_to_string(&e)
                .unwrap_or_else(|err| panic!("N{levels} {mode:?} run: {err}"));
            results.push(out);
        }
        for w in results.windows(2) {
            assert_eq!(w[0], w[1], "N{levels} modes disagree");
        }
        assert!(results[0].starts_with("<authorDB>"));
        assert!(results[0].contains("<entry1>"));
        assert!(results[0].contains("<entry2>"), "nesting materialized");
    }
}

#[test]
fn n4_runs_under_hash_join() {
    let e = engine(2_500);
    let q = mapping_query(4);
    let out = e
        .prepare(&q, &CompileOptions::mode(ExecutionMode::OptimHashJoin))
        .unwrap()
        .run_to_string(&e)
        .unwrap();
    assert!(out.contains("<entry4>"), "deepest nesting level reached");
}

#[test]
fn mapping_queries_unnest_fully() {
    let e = engine(2_500);
    for (levels, expected_joins) in [(2, 1), (3, 2), (4, 3)] {
        let q = mapping_query(levels);
        let prepared = e
            .prepare(&q, &CompileOptions::mode(ExecutionMode::OptimHashJoin))
            .unwrap();
        let stats = prepared.rewrite_stats().unwrap();
        assert!(
            stats.count("insert group-by") >= expected_joins,
            "N{levels}: one group-by per nesting level: {stats:?}"
        );
        assert!(
            stats.count("insert outer-join") >= expected_joins,
            "N{levels}: one outer-join per nesting level: {stats:?}"
        );
    }
}

#[test]
fn deep_distinct_deduplicates() {
    // Authors appear on several publications: entry1 elements repeat per
    // (publication, author) pair without dedup; clio:deep-distinct must
    // collapse identical entries.
    let e = engine(4_000);
    let with = e.execute(&mapping_query(2)).unwrap();
    let entry_count = {
        let s = xqr::xml::serialize_sequence(&with);
        s.matches("<entry1>").count()
    };
    let raw = e
        .execute(
            "let $doc0 := doc('dblp.xml') return \
             count(for $x1 in $doc0/dblp/inproceedings, $a in $x1/author return $x1)",
        )
        .unwrap();
    let raw_count: usize = raw.get(0).unwrap().string_value().parse().unwrap();
    assert!(entry_count <= raw_count, "{entry_count} vs {raw_count}");
}
