//! `xqr` — command-line XQuery runner.
//!
//! ```text
//! xqr [OPTIONS] (-q QUERY | QUERY_FILE)
//!
//!   -q, --query TEXT        inline query text
//!   -d, --doc URI=PATH      bind an XML file under a URI (repeatable)
//!       --var NAME=VALUE    bind an external variable to a string value
//!       --param NAME=VALUE  bind a declared external variable, cast to its
//!                           declared type (repeatable)
//!       --repeat N          run the query N times through the plan cache
//!       --mode MODE         no-algebra | no-optim | nl | hash | sort  [hash]
//!       --materialize       full intermediate tables instead of pipelined cursors
//!       --explain           print the compiled plan instead of running
//!       --stats             print rewrite-rule applications to stderr
//!       --pretty            indent element-only output
//!       --time              print evaluation time to stderr
//!       --metrics           print the engine metrics in Prometheus text
//!                           exposition format to stderr after the run
//!       --slow-query-ms N   emit a wide-event JSON line to stderr for any
//!                           run slower than N milliseconds
//!       --serve ADDR        serve queries over HTTP on ADDR (e.g.
//!                           127.0.0.1:7700; port 0 picks a free port)
//!                           instead of running one query
//!       --drain-ms N        graceful-drain budget on shutdown  [5000]
//! ```
//!
//! ## Serve mode
//!
//! `--serve ADDR` starts the hardened network frontend
//! ([`xqr::engine::QueryServer`]) over an admission-controlled
//! [`xqr::engine::QueryService`]: `POST /query` with the query text as
//! the body (optional `X-Tenant`, `X-Deadline-Ms`, `X-Max-Tuples`,
//! `X-Max-Bytes` headers), plus `GET /healthz`, `/readyz`, `/metrics`,
//! `/metrics.json`, `/observe.json`, and `/server.json`. Documents
//! bound with `--doc` are served to every worker. The process drains
//! gracefully — stop accepting, finish in-flight work under the
//! `--drain-ms` budget, cancel survivors — on SIGTERM, SIGINT, or
//! stdin closing (whichever comes first).
//!
//! `--var` binds an untyped string engine-wide; `--param` goes through the
//! prepared-query parameter API: the name must be a `declare variable $x
//! ... external`, and the value is cast to the declared sequence type (a
//! `--param` for an undeclared name is an `XPST0008` error, an unbound
//! required external fails with `XPDY0002`). `--repeat` re-prepares
//! through the engine's plan cache each iteration, so `--repeat 100
//! --time` shows the compile-once/run-many effect directly.
//!
//! Example:
//!
//! ```sh
//! xqr -d auction.xml=data/auction.xml \
//!     -q "for $p in doc('auction.xml')//person return $p/name/text()"
//! ```

use std::process::ExitCode;
use std::time::Instant;

use xqr::engine::{CompileOptions, Engine, ExecutionMode};
use xqr::xml::{AtomicValue, Item, Sequence};

struct Args {
    query: Option<String>,
    query_file: Option<String>,
    docs: Vec<(String, String)>,
    vars: Vec<(String, String)>,
    params: Vec<(String, String)>,
    repeat: usize,
    mode: ExecutionMode,
    materialize: bool,
    explain: bool,
    stats: bool,
    pretty: bool,
    time: bool,
    metrics: bool,
    slow_query_ms: Option<u64>,
    serve: Option<String>,
    drain_ms: u64,
}

const USAGE: &str = "usage: xqr [OPTIONS] (-q QUERY | QUERY_FILE)
  -q, --query TEXT        inline query text
  -d, --doc URI=PATH      bind an XML file under a URI (repeatable)
      --var NAME=VALUE    bind an external variable to a string value
      --param NAME=VALUE  bind a declared external variable, cast to its
                          declared type (repeatable)
      --repeat N          run the query N times through the plan cache
      --mode MODE         no-algebra | no-optim | nl | hash | sort  [hash]
      --materialize       full intermediate tables instead of pipelined cursors
      --explain           print the compiled plan instead of running
      --stats             print rewrite-rule applications to stderr
      --pretty            indent element-only output
      --time              print evaluation time to stderr
      --metrics           print Prometheus-format engine metrics to stderr
      --slow-query-ms N   emit a wide-event JSON line to stderr for any
                          run slower than N milliseconds
      --serve ADDR        serve queries over HTTP on ADDR (POST /query;
                          port 0 picks a free port)
      --drain-ms N        graceful-drain budget on shutdown  [5000]";

fn parse_args() -> Result<Args, String> {
    let mut out = Args {
        query: None,
        query_file: None,
        docs: Vec::new(),
        vars: Vec::new(),
        params: Vec::new(),
        repeat: 1,
        mode: ExecutionMode::OptimHashJoin,
        materialize: false,
        explain: false,
        stats: false,
        pretty: false,
        time: false,
        metrics: false,
        slow_query_ms: None,
        serve: None,
        drain_ms: 5000,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        let arg = argv[i].as_str();
        let value = |i: &mut usize| -> Result<String, String> {
            *i += 1;
            argv.get(*i)
                .cloned()
                .ok_or_else(|| format!("{arg} requires a value"))
        };
        match arg {
            "-q" | "--query" => out.query = Some(value(&mut i)?),
            "-d" | "--doc" => {
                let v = value(&mut i)?;
                let (uri, path) = v
                    .split_once('=')
                    .ok_or_else(|| format!("--doc expects URI=PATH, got {v:?}"))?;
                out.docs.push((uri.to_string(), path.to_string()));
            }
            "--var" => {
                let v = value(&mut i)?;
                let (name, val) = v
                    .split_once('=')
                    .ok_or_else(|| format!("--var expects NAME=VALUE, got {v:?}"))?;
                out.vars.push((name.to_string(), val.to_string()));
            }
            "--param" => {
                let v = value(&mut i)?;
                let (name, val) = v
                    .split_once('=')
                    .ok_or_else(|| format!("--param expects NAME=VALUE, got {v:?}"))?;
                out.params.push((name.to_string(), val.to_string()));
            }
            "--repeat" => {
                let v = value(&mut i)?;
                out.repeat = v
                    .parse::<usize>()
                    .ok()
                    .filter(|n| *n >= 1)
                    .ok_or_else(|| format!("--repeat expects a count >= 1, got {v:?}"))?;
            }
            "--mode" => {
                out.mode = match value(&mut i)?.as_str() {
                    "no-algebra" => ExecutionMode::NoAlgebra,
                    "no-optim" => ExecutionMode::AlgebraNoOptim,
                    "nl" => ExecutionMode::OptimNestedLoop,
                    "hash" => ExecutionMode::OptimHashJoin,
                    "sort" => ExecutionMode::OptimSortJoin,
                    other => return Err(format!("unknown mode {other:?}")),
                };
            }
            "--metrics" => out.metrics = true,
            "--slow-query-ms" => {
                let v = value(&mut i)?;
                out.slow_query_ms = Some(
                    v.parse::<u64>()
                        .map_err(|_| format!("--slow-query-ms expects milliseconds, got {v:?}"))?,
                );
            }
            "--serve" => out.serve = Some(value(&mut i)?),
            "--drain-ms" => {
                let v = value(&mut i)?;
                out.drain_ms = v
                    .parse::<u64>()
                    .map_err(|_| format!("--drain-ms expects milliseconds, got {v:?}"))?;
            }
            "--materialize" => out.materialize = true,
            "--explain" => out.explain = true,
            "--stats" => out.stats = true,
            "--pretty" => out.pretty = true,
            "--time" => out.time = true,
            "-h" | "--help" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other if !other.starts_with('-') && out.query_file.is_none() => {
                out.query_file = Some(other.to_string());
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
        i += 1;
    }
    if out.serve.is_none() && out.query.is_none() && out.query_file.is_none() {
        return Err("a query is required (use -q TEXT or a QUERY_FILE, or --serve ADDR)".into());
    }
    Ok(out)
}

/// SIGTERM/SIGINT land here (set from a raw signal handler, so only
/// async-signal-safe work happens in the handler itself).
static SHUTDOWN: std::sync::atomic::AtomicBool = std::sync::atomic::AtomicBool::new(false);

#[cfg(unix)]
fn install_signal_handlers() {
    // Raw libc signal(2) via FFI — no crates, no allocation in the
    // handler, just a flag store the serve loop polls.
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    extern "C" fn on_signal(_sig: i32) {
        SHUTDOWN.store(true, std::sync::atomic::Ordering::SeqCst);
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    let handler = on_signal as extern "C" fn(i32) as usize;
    unsafe {
        signal(SIGINT, handler);
        signal(SIGTERM, handler);
    }
}

#[cfg(not(unix))]
fn install_signal_handlers() {}

/// `--serve` mode: an admission-controlled service behind the hardened
/// network frontend, drained gracefully on SIGTERM/SIGINT/stdin-EOF.
fn serve(args: &Args, addr: &str) -> Result<(), String> {
    use xqr::engine::{QueryServer, QueryService, ServerConfig, ServiceConfig};

    let svc = std::sync::Arc::new(QueryService::new(ServiceConfig {
        workers: std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(2),
        ..ServiceConfig::default()
    }));
    for (uri, path) in &args.docs {
        let xml = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        svc.bind_document(uri, xml);
    }
    let drain = std::time::Duration::from_millis(args.drain_ms);
    let cfg = ServerConfig {
        drain_deadline: drain,
        ..ServerConfig::default()
    };
    let mut server =
        QueryServer::start(svc, addr, cfg).map_err(|e| format!("cannot bind {addr}: {e}"))?;
    // The exact line scripts and the example client wait for.
    println!("listening on {}", server.addr());
    install_signal_handlers();
    // Closing stdin also triggers the drain, so orchestration that
    // pipes into the process gets clean shutdown without signals.
    std::thread::spawn(|| {
        let mut sink = String::new();
        loop {
            sink.clear();
            match std::io::BufRead::read_line(&mut std::io::stdin().lock(), &mut sink) {
                Ok(0) | Err(_) => break,
                Ok(_) => {}
            }
        }
        SHUTDOWN.store(true, std::sync::atomic::Ordering::SeqCst);
    });
    while !SHUTDOWN.load(std::sync::atomic::Ordering::SeqCst) {
        std::thread::sleep(std::time::Duration::from_millis(50));
    }
    eprintln!("draining (budget {}ms)...", args.drain_ms);
    let report = server.stop(Some(drain));
    eprintln!(
        "drained: {} queued shed, {} in-flight cancelled, connections {}",
        report.service.drained_queued,
        report.service.cancelled,
        if report.conns_drained_in_time {
            "closed in time"
        } else {
            "timed out"
        }
    );
    Ok(())
}

fn run(args: Args) -> Result<(), String> {
    if let Some(addr) = &args.serve {
        return serve(&args, addr);
    }
    let query = match (&args.query, &args.query_file) {
        (Some(q), _) => q.clone(),
        (None, Some(f)) => {
            std::fs::read_to_string(f).map_err(|e| format!("cannot read {f}: {e}"))?
        }
        _ => unreachable!(),
    };
    let mut engine = Engine::new();
    for (uri, path) in &args.docs {
        let xml = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        engine
            .bind_document(uri, &xml)
            .map_err(|e| format!("cannot parse {path}: {e}"))?;
    }
    for (name, val) in &args.vars {
        engine.bind_variable(name, Sequence::singleton(AtomicValue::string(val.as_str())));
    }
    let mut options = CompileOptions::mode(args.mode);
    options.materialize_all = args.materialize;
    let t_prepare = Instant::now();
    let mut prepared = engine
        .prepare_cached(&query, &options)
        .map_err(|e| e.to_string())?;
    let prepare_elapsed = t_prepare.elapsed();
    bind_params(&mut prepared, &args.params)?;
    if args.stats {
        if let Some(stats) = prepared.rewrite_stats() {
            for (rule, n) in &stats.applications {
                eprintln!("{n}\u{00d7} ({rule})");
            }
        }
    }
    if args.explain {
        println!("{}", prepared.explain());
        return Ok(());
    }
    let t = Instant::now();
    let t_run = Instant::now();
    let mut result = prepared.run(&engine).map_err(|e| e.to_string())?;
    slow_query_event(&args, &query, &prepared, t_run.elapsed(), result.len());
    // Further iterations re-prepare through the plan cache — each one is
    // a hash lookup plus an execution, the compile-once/run-many path.
    for _ in 1..args.repeat {
        let mut p = engine
            .prepare_cached(&query, &options)
            .map_err(|e| e.to_string())?;
        bind_params(&mut p, &args.params)?;
        let t_run = Instant::now();
        result = p.run(&engine).map_err(|e| e.to_string())?;
        slow_query_event(&args, &query, &p, t_run.elapsed(), result.len());
    }
    if args.time {
        eprintln!("prepare: {prepare_elapsed:?} (first; repeats hit the plan cache)");
        let total = t.elapsed();
        if args.repeat > 1 {
            eprintln!(
                "evaluation: {total:?} over {} runs ({:?}/run)",
                args.repeat,
                total / args.repeat as u32
            );
        } else {
            eprintln!("evaluation: {total:?}");
        }
    }
    if args.pretty {
        for item in result.iter() {
            match item {
                Item::Node(n) => print!("{}", xqr::xml::serialize::serialize_node_pretty(n)),
                Item::Atomic(a) => println!("{}", a.string_value()),
            }
        }
    } else {
        println!("{}", xqr::xml::serialize_sequence(&result));
    }
    if args.metrics {
        eprint!("{}", engine.metrics_prometheus());
    }
    Ok(())
}

/// Emits one wide-event JSON line to stderr when a run exceeded the
/// `--slow-query-ms` threshold: the query head, the canonical plan hash,
/// the wall clock, and the result cardinality.
fn slow_query_event(
    args: &Args,
    query: &str,
    prepared: &xqr::engine::PreparedQuery,
    elapsed: std::time::Duration,
    rows: usize,
) {
    let Some(threshold) = args.slow_query_ms else {
        return;
    };
    if (elapsed.as_millis() as u64) < threshold {
        return;
    }
    let head: String = query.chars().take(120).collect();
    eprintln!(
        "{{\"event\":\"slow-query\",\"wall_ms\":{:.3},\"threshold_ms\":{threshold},\
         \"rows\":{rows},\"plan_hash\":{},\"query\":\"{}\"}}",
        elapsed.as_secs_f64() * 1e3,
        match prepared.canonical_hash() {
            Some(h) => format!("\"{h:016x}\""),
            None => "null".to_string(),
        },
        xqr::xml::metrics::json_escape(&head)
    );
}

/// Binds every `--param` through the prepared-query parameter API,
/// casting the string value to the parameter's declared type (a bare
/// `declare variable $x external` without a type gets the string as-is).
fn bind_params(
    prepared: &mut xqr::engine::PreparedQuery,
    params: &[(String, String)],
) -> Result<(), String> {
    use xqr::types::{ItemType, SequenceType};
    for (name, val) in params {
        let declared: Option<SequenceType> = prepared
            .parameters()
            .into_iter()
            .find(|(n, _, _)| n.local_part() == name.as_str())
            .and_then(|(_, t, _)| t);
        let value = match declared {
            Some(SequenceType {
                item: ItemType::Atomic(t),
                ..
            }) => Sequence::singleton(
                xqr::types::cast::cast_from_string(val, t)
                    .map_err(|e| format!("--param {name}: {e}"))?,
            ),
            _ => Sequence::singleton(AtomicValue::string(val.as_str())),
        };
        prepared
            .bind_param(name, value)
            .map_err(|e| e.to_string())?;
    }
    Ok(())
}

fn main() -> ExitCode {
    match parse_args() {
        Err(e) => {
            eprintln!("error: {e}\n{USAGE}");
            ExitCode::from(2)
        }
        Ok(args) => match run(args) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        },
    }
}
