//! `xqr` — command-line XQuery runner.
//!
//! ```text
//! xqr [OPTIONS] (-q QUERY | QUERY_FILE)
//!
//!   -q, --query TEXT        inline query text
//!   -d, --doc URI=PATH      bind an XML file under a URI (repeatable)
//!       --var NAME=VALUE    bind an external variable to a string value
//!       --mode MODE         no-algebra | no-optim | nl | hash | sort  [hash]
//!       --materialize       full intermediate tables instead of pipelined cursors
//!       --explain           print the compiled plan instead of running
//!       --stats             print rewrite-rule applications to stderr
//!       --pretty            indent element-only output
//!       --time              print evaluation time to stderr
//! ```
//!
//! Example:
//!
//! ```sh
//! xqr -d auction.xml=data/auction.xml \
//!     -q "for $p in doc('auction.xml')//person return $p/name/text()"
//! ```

use std::process::ExitCode;
use std::time::Instant;

use xqr::engine::{CompileOptions, Engine, ExecutionMode};
use xqr::xml::{AtomicValue, Item, Sequence};

struct Args {
    query: Option<String>,
    query_file: Option<String>,
    docs: Vec<(String, String)>,
    vars: Vec<(String, String)>,
    mode: ExecutionMode,
    materialize: bool,
    explain: bool,
    stats: bool,
    pretty: bool,
    time: bool,
}

const USAGE: &str = "usage: xqr [OPTIONS] (-q QUERY | QUERY_FILE)
  -q, --query TEXT        inline query text
  -d, --doc URI=PATH      bind an XML file under a URI (repeatable)
      --var NAME=VALUE    bind an external variable to a string value
      --mode MODE         no-algebra | no-optim | nl | hash | sort  [hash]
      --materialize       full intermediate tables instead of pipelined cursors
      --explain           print the compiled plan instead of running
      --stats             print rewrite-rule applications to stderr
      --pretty            indent element-only output
      --time              print evaluation time to stderr";

fn parse_args() -> Result<Args, String> {
    let mut out = Args {
        query: None,
        query_file: None,
        docs: Vec::new(),
        vars: Vec::new(),
        mode: ExecutionMode::OptimHashJoin,
        materialize: false,
        explain: false,
        stats: false,
        pretty: false,
        time: false,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        let arg = argv[i].as_str();
        let value = |i: &mut usize| -> Result<String, String> {
            *i += 1;
            argv.get(*i)
                .cloned()
                .ok_or_else(|| format!("{arg} requires a value"))
        };
        match arg {
            "-q" | "--query" => out.query = Some(value(&mut i)?),
            "-d" | "--doc" => {
                let v = value(&mut i)?;
                let (uri, path) = v
                    .split_once('=')
                    .ok_or_else(|| format!("--doc expects URI=PATH, got {v:?}"))?;
                out.docs.push((uri.to_string(), path.to_string()));
            }
            "--var" => {
                let v = value(&mut i)?;
                let (name, val) = v
                    .split_once('=')
                    .ok_or_else(|| format!("--var expects NAME=VALUE, got {v:?}"))?;
                out.vars.push((name.to_string(), val.to_string()));
            }
            "--mode" => {
                out.mode = match value(&mut i)?.as_str() {
                    "no-algebra" => ExecutionMode::NoAlgebra,
                    "no-optim" => ExecutionMode::AlgebraNoOptim,
                    "nl" => ExecutionMode::OptimNestedLoop,
                    "hash" => ExecutionMode::OptimHashJoin,
                    "sort" => ExecutionMode::OptimSortJoin,
                    other => return Err(format!("unknown mode {other:?}")),
                };
            }
            "--materialize" => out.materialize = true,
            "--explain" => out.explain = true,
            "--stats" => out.stats = true,
            "--pretty" => out.pretty = true,
            "--time" => out.time = true,
            "-h" | "--help" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other if !other.starts_with('-') && out.query_file.is_none() => {
                out.query_file = Some(other.to_string());
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
        i += 1;
    }
    if out.query.is_none() && out.query_file.is_none() {
        return Err("a query is required (use -q TEXT or a QUERY_FILE)".into());
    }
    Ok(out)
}

fn run(args: Args) -> Result<(), String> {
    let query = match (&args.query, &args.query_file) {
        (Some(q), _) => q.clone(),
        (None, Some(f)) => {
            std::fs::read_to_string(f).map_err(|e| format!("cannot read {f}: {e}"))?
        }
        _ => unreachable!(),
    };
    let mut engine = Engine::new();
    for (uri, path) in &args.docs {
        let xml = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        engine
            .bind_document(uri, &xml)
            .map_err(|e| format!("cannot parse {path}: {e}"))?;
    }
    for (name, val) in &args.vars {
        engine.bind_variable(name, Sequence::singleton(AtomicValue::string(val.as_str())));
    }
    let mut options = CompileOptions::mode(args.mode);
    options.materialize_all = args.materialize;
    let prepared = engine
        .prepare(&query, &options)
        .map_err(|e| e.to_string())?;
    if args.stats {
        if let Some(stats) = prepared.rewrite_stats() {
            for (rule, n) in &stats.applications {
                eprintln!("{n}\u{00d7} ({rule})");
            }
        }
    }
    if args.explain {
        println!("{}", prepared.explain());
        return Ok(());
    }
    let t = Instant::now();
    let result = prepared.run(&engine).map_err(|e| e.to_string())?;
    if args.time {
        eprintln!("evaluation: {:?}", t.elapsed());
    }
    if args.pretty {
        for item in result.iter() {
            match item {
                Item::Node(n) => print!("{}", xqr::xml::serialize::serialize_node_pretty(n)),
                Item::Atomic(a) => println!("{}", a.string_value()),
            }
        }
    } else {
        println!("{}", xqr::xml::serialize_sequence(&result));
    }
    Ok(())
}

fn main() -> ExitCode {
    match parse_args() {
        Err(e) => {
            eprintln!("error: {e}\n{USAGE}");
            ExitCode::from(2)
        }
        Ok(args) => match run(args) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        },
    }
}
