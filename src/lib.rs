//! # xqr — an algebraic XQuery compiler
//!
//! Meta-crate re-exporting the public API of the engine and its substrates.
//! See [`xqr_engine::Engine`] for the main entry point.
//!
//! This workspace is a from-scratch Rust reproduction of *"A Complete and
//! Efficient Algebraic Compiler for XQuery"* (Ré, Siméon, Fernández,
//! ICDE 2006): complete compilation of XQuery 1.0 into a tuple/XML algebra,
//! unnesting rewritings introducing `GroupBy`/`LOuterJoin`, and
//! XQuery-aware join algorithms.

pub use xqr_clio as clio;
pub use xqr_core as core;
pub use xqr_engine as engine;
pub use xqr_frontend as frontend;
pub use xqr_runtime as runtime;
pub use xqr_types as types;
pub use xqr_xmark as xmark;
pub use xqr_xml as xml;

pub use xqr_engine::{
    BreakerConfig, BudgetKind, CancellationToken, CollectingTracer, CompileOptions, Engine,
    EngineError, ExecutionMode, JoinAlgorithm, LifecyclePhase, Limits, MetricsServer,
    MetricsSnapshot, NoopTracer, ObserveConfig, ObserveReport, Phase, PhaseLatency, PlanCache,
    PlanCacheConfig, PreparedQuery, ProfileNode, QueryProfile, QueryRequest, QueryService,
    QueryTicket, QueryTimeline, RetryPolicy, ServiceConfig, ServiceOutput, ShapeStats, ShedReason,
    StderrTracer, TraceEvent, Tracer,
};
