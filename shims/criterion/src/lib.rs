//! Offline stand-in for the `criterion` crate.
//!
//! Implements the API subset the xqr benches use — `Criterion`,
//! `benchmark_group` / `sample_size` / `bench_function` /
//! `bench_with_input` / `finish`, `Bencher::iter`, `BenchmarkId`, and the
//! `criterion_group!` / `criterion_main!` macros — as a plain timing
//! harness: per benchmark it runs a warm-up pass, then `sample_size`
//! timed samples, and prints min/mean/max. `--test` (what CI smoke runs
//! pass via `cargo bench -- --test`) executes each benchmark body exactly
//! once. A positional argument filters benchmarks by substring, like the
//! real crate.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Shared run configuration parsed from the command line.
#[derive(Clone, Debug)]
struct RunMode {
    /// `--test`: run every benchmark once, don't measure.
    test: bool,
    filter: Option<String>,
}

impl RunMode {
    fn from_args() -> RunMode {
        let mut test = false;
        let mut filter = None;
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--test" => test = true,
                // Flags cargo-bench forwards that we accept and ignore.
                "--bench" | "--benches" | "--nocapture" | "--quiet" | "--verbose" => {}
                other if other.starts_with("--") => {}
                other => filter = Some(other.to_string()),
            }
        }
        RunMode { test, filter }
    }
}

/// The top-level harness handle passed to benchmark functions.
pub struct Criterion {
    mode: RunMode,
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            mode: RunMode::from_args(),
            default_sample_size: 10,
        }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            mode: self.mode.clone(),
            sample_size: self.default_sample_size,
            _marker: std::marker::PhantomData,
        }
    }
}

/// A named benchmark id (`BenchmarkId::new(function, parameter)`).
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{}/{}", function.into(), parameter),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> BenchmarkId {
        BenchmarkId { id: s }
    }
}

pub struct BenchmarkGroup<'c> {
    name: String,
    mode: RunMode,
    sample_size: usize,
    // Tied to the Criterion borrow like the real API.
    _marker: std::marker::PhantomData<&'c ()>,
}

impl<'c> BenchmarkGroup<'c> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into().id);
        self.run(&full, &mut f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.into().id);
        self.run(&full, &mut |b: &mut Bencher| f(b, input));
        self
    }

    pub fn finish(&mut self) {}

    fn run(&self, full_name: &str, f: &mut dyn FnMut(&mut Bencher)) {
        if let Some(filter) = &self.mode.filter {
            if !full_name.contains(filter.as_str()) {
                return;
            }
        }
        if self.mode.test {
            let mut b = Bencher {
                mode: BenchMode::Once,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            println!("test {full_name} ... ok");
            return;
        }
        // Warm-up: one untimed sample.
        let mut warm = Bencher {
            mode: BenchMode::Once,
            elapsed: Duration::ZERO,
        };
        f(&mut warm);
        let mut samples = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let mut b = Bencher {
                mode: BenchMode::Measure,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            samples.push(b.elapsed);
        }
        let min = samples.iter().min().copied().unwrap_or_default();
        let max = samples.iter().max().copied().unwrap_or_default();
        let mean = samples.iter().sum::<Duration>() / samples.len() as u32;
        println!(
            "{full_name}\n    time: [{} {} {}]  ({} samples)",
            fmt(min),
            fmt(mean),
            fmt(max),
            samples.len()
        );
    }
}

enum BenchMode {
    Once,
    Measure,
}

/// Passed to the closure given to `bench_function`; `iter` runs the body.
pub struct Bencher {
    mode: BenchMode,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut body: F) {
        match self.mode {
            BenchMode::Once => {
                black_box(body());
            }
            BenchMode::Measure => {
                let start = Instant::now();
                black_box(body());
                self.elapsed += start.elapsed();
            }
        }
    }
}

fn fmt(d: Duration) -> String {
    let s = d.as_secs_f64();
    if s >= 1.0 {
        format!("{s:.3}s")
    } else if s >= 1e-3 {
        format!("{:.3}ms", s * 1e3)
    } else {
        format!("{:.3}µs", s * 1e6)
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
