//! Offline stand-in for the `rand` crate.
//!
//! The container this repo builds in has no crates.io access, so the real
//! `rand` cannot be fetched. This shim provides exactly the API subset the
//! xqr generators use — `StdRng::seed_from_u64`, `Rng::gen_range` over
//! integer/float ranges, and `Rng::gen_bool` — on top of a SplitMix64
//! core. It is deterministic for a given seed (which is all the
//! generators require), but its streams differ from upstream `rand`, so
//! generated documents differ in content (not in shape or schema) from a
//! build against the real crate.

use std::ops::{Range, RangeInclusive};

/// The minimal generator core (`rand_core::RngCore` analogue).
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

/// Seeding entry point (`rand::SeedableRng` analogue, u64 form only).
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods (`rand::Rng` analogue).
pub trait Rng: RngCore {
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        unit_f64(self.next_u64()) < p
    }
}

impl<T: RngCore> Rng for T {}

/// Ranges that can be sampled uniformly (`rand::distributions::uniform`
/// analogue, reduced to the used instantiations).
pub trait SampleRange<T> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

fn unit_f64(bits: u64) -> f64 {
    // 53 uniform mantissa bits in [0, 1).
    (bits >> 11) as f64 / (1u64 << 53) as f64
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % span;
                (start as i128 + offset as i128) as $t
            }
        }
    )*};
}

int_sample_range!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + unit_f64(rng.next_u64()) * (self.end - self.start)
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// SplitMix64 — deterministic, seedable, and plenty for data generation.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1000), b.gen_range(0..1000i64));
        }
    }

    #[test]
    fn ranges_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3..10);
            assert!((3..10).contains(&v));
            let v = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&v));
            let f = rng.gen_range(1.5..2.5);
            assert!((1.5..2.5).contains(&f));
            let u: u64 = rng.gen_range(1_000_000_000_000_000..=9_999_999_999_999_999);
            assert!(u >= 1_000_000_000_000_000);
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
