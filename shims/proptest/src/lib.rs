//! Offline stand-in for the `proptest` crate.
//!
//! The build container has no crates.io access, so this shim supplies the
//! subset of proptest the xqr property suites use: the `proptest!` macro,
//! `prop_assert!`/`prop_assert_eq!`, `prop_oneof!`, `Just`, range and
//! string-pattern strategies, `prop::collection::vec`, `prop_map`, and
//! `prop_recursive`. Inputs are generated from a deterministic per-test
//! RNG (seeded from the test name), so failures reproduce across runs.
//! There is **no shrinking**: a failing case reports the assertion message
//! of the raw generated input.

pub mod collection;
pub mod strategy;
pub mod test_runner;

pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Alias module matching `proptest::prelude::prop`.
    pub mod prop {
        pub use crate::collection;
    }
}

/// The `proptest!` macro: expands each `fn name(arg in strategy, ...)`
/// item into a `#[test]` that runs `config.cases` deterministic cases.
#[macro_export]
macro_rules! proptest {
    (@items $cfg:expr;
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::Config = $cfg;
                for case in 0..config.cases {
                    let mut rng = $crate::test_runner::TestRng::for_case(stringify!($name), case);
                    let result: ::std::result::Result<(), ::std::string::String> = (|| {
                        $(
                            let strat = $strat;
                            let $arg = $crate::strategy::Strategy::generate(&strat, &mut rng);
                        )+
                        $body
                        #[allow(unreachable_code)]
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(msg) = result {
                        panic!("proptest {} case {}/{} failed: {}", stringify!($name), case + 1, config.cases, msg);
                    }
                }
            }
        )*
    };
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest!(@items $cfg; $($rest)*);
    };
    (
        $($rest:tt)*
    ) => {
        $crate::proptest!(@items $crate::test_runner::Config::default(); $($rest)*);
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err(
                format!("assertion failed: {}", stringify!($cond)),
            );
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(
                format!("assertion failed: {} ({})", stringify!($cond), format!($($fmt)+)),
            );
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (left, right) = (&$a, &$b);
        if !(left == right) {
            return ::std::result::Result::Err(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($a), stringify!($b), left, right,
            ));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$a, &$b);
        if !(left == right) {
            return ::std::result::Result::Err(format!(
                "assertion failed: {} == {} ({})\n  left: {:?}\n right: {:?}",
                stringify!($a), stringify!($b), format!($($fmt)+), left, right,
            ));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (left, right) = (&$a, &$b);
        if left == right {
            return ::std::result::Result::Err(format!(
                "assertion failed: {} != {}\n  both: {:?}",
                stringify!($a),
                stringify!($b),
                left,
            ));
        }
    }};
}

#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![$($crate::strategy::boxed($arm)),+])
    };
}
