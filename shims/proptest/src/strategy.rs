//! Strategies: deterministic value generators (no shrinking).

use std::ops::Range;
use std::rc::Rc;

use crate::test_runner::TestRng;

/// A generator of values (`proptest::strategy::Strategy` analogue).
/// `generate` replaces the real crate's value-tree machinery.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Recursive strategies: `f` receives the strategy for the level below
    /// and builds one level of structure on top; `depth` bounds nesting.
    /// The desired-size/branch hints are accepted for API compatibility
    /// and ignored.
    fn prop_recursive<S, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch: u32,
        f: F,
    ) -> Recursive<Self::Value>
    where
        Self: Sized + 'static,
        S: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S + 'static,
    {
        let f = Rc::new(
            move |inner: BoxedStrategy<Self::Value>| -> BoxedStrategy<Self::Value> {
                Box::new(f(inner))
            },
        );
        Recursive {
            leaf: Rc::new(self),
            depth,
            f,
        }
    }
}

pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

/// Boxes a strategy (used by `prop_oneof!` to unify arm types).
pub fn boxed<S: Strategy + 'static>(s: S) -> BoxedStrategy<S::Value> {
    Box::new(s)
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        (**self).generate(rng)
    }
}

impl<V> Strategy for Rc<dyn Strategy<Value = V>> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        (**self).generate(rng)
    }
}

/// Always yields a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<V: Clone>(pub V);

impl<V: Clone> Strategy for Just<V> {
    type Value = V;
    fn generate(&self, _rng: &mut TestRng) -> V {
        self.0.clone()
    }
}

pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice between boxed alternatives (`prop_oneof!`).
pub struct OneOf<V> {
    arms: Vec<BoxedStrategy<V>>,
}

impl<V> OneOf<V> {
    pub fn new(arms: Vec<BoxedStrategy<V>>) -> OneOf<V> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        OneOf { arms }
    }
}

impl<V> Strategy for OneOf<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let i = rng.usize_inclusive(0, self.arms.len() - 1);
        self.arms[i].generate(rng)
    }
}

pub struct Recursive<V> {
    pub(crate) leaf: Rc<dyn Strategy<Value = V>>,
    pub(crate) depth: u32,
    pub(crate) f: Rc<dyn Fn(BoxedStrategy<V>) -> BoxedStrategy<V>>,
}

impl<V: 'static> Strategy for Recursive<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        // Half the probability mass recurses at each level, bounded by
        // `depth` — small trees dominate, deep ones still occur.
        if self.depth == 0 || rng.bool_with(0.5) {
            self.leaf.generate(rng)
        } else {
            let inner: BoxedStrategy<V> = Box::new(Recursive {
                leaf: self.leaf.clone(),
                depth: self.depth - 1,
                f: self.f.clone(),
            });
            (self.f)(inner).generate(rng)
        }
    }
}

// ===== integer ranges =======================================================

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                rng.i128_inclusive(self.start as i128, self.end as i128 - 1) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.i128_inclusive(*self.start() as i128, *self.end() as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

// ===== tuples ===============================================================

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.generate(rng), self.1.generate(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (
            self.0.generate(rng),
            self.1.generate(rng),
            self.2.generate(rng),
        )
    }
}

impl<A: Strategy, B: Strategy, C: Strategy, D: Strategy> Strategy for (A, B, C, D) {
    type Value = (A::Value, B::Value, C::Value, D::Value);
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (
            self.0.generate(rng),
            self.1.generate(rng),
            self.2.generate(rng),
            self.3.generate(rng),
        )
    }
}

impl<A: Strategy, B: Strategy, C: Strategy, D: Strategy, E: Strategy> Strategy for (A, B, C, D, E) {
    type Value = (A::Value, B::Value, C::Value, D::Value, E::Value);
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (
            self.0.generate(rng),
            self.1.generate(rng),
            self.2.generate(rng),
            self.3.generate(rng),
            self.4.generate(rng),
        )
    }
}

// ===== string patterns ======================================================

/// String literals act as regex-like strategies. Supported shapes (the
/// ones the suites use): `[a-z]{m,n}`, `[a-z]{n}`, `\PC{m,n}` (printable
/// non-control chars), and plain literals (yielded verbatim).
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        generate_pattern(self, rng)
    }
}

fn generate_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let bytes = pattern.as_bytes();
    let (alphabet, rest): (Vec<char>, &str) = if bytes.first() == Some(&b'[') {
        let close = pattern
            .find(']')
            .unwrap_or_else(|| panic!("unclosed class in {pattern:?}"));
        (expand_class(&pattern[1..close]), &pattern[close + 1..])
    } else if let Some(rest) = pattern.strip_prefix("\\PC") {
        // "Not a control character": printable ASCII plus a few multibyte
        // characters so parsers see non-ASCII input too.
        let mut chars: Vec<char> = (' '..='~').collect();
        chars.extend(['é', 'ß', '雪', '→', '𝄞']);
        (chars, rest)
    } else {
        // Plain literal.
        return pattern.to_string();
    };
    let (min, max) = parse_repeat(rest);
    let n = rng.usize_inclusive(min, max);
    let mut out = String::with_capacity(n);
    for _ in 0..n {
        out.push(alphabet[rng.usize_inclusive(0, alphabet.len() - 1)]);
    }
    out
}

/// Expands a character class body (`a-z`, `abc`, `a-zA-Z0-9`).
fn expand_class(body: &str) -> Vec<char> {
    let chars: Vec<char> = body.chars().collect();
    let mut out = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        if i + 2 < chars.len() && chars[i + 1] == '-' {
            let (lo, hi) = (chars[i], chars[i + 2]);
            out.extend(lo..=hi);
            i += 3;
        } else {
            out.push(chars[i]);
            i += 1;
        }
    }
    assert!(!out.is_empty(), "empty character class");
    out
}

/// Parses `{m,n}` or `{n}`; an empty remainder means exactly one.
fn parse_repeat(rest: &str) -> (usize, usize) {
    if rest.is_empty() {
        return (1, 1);
    }
    let body = rest
        .strip_prefix('{')
        .and_then(|r| r.strip_suffix('}'))
        .unwrap_or_else(|| panic!("unsupported repeat syntax {rest:?}"));
    match body.split_once(',') {
        Some((m, n)) => (m.trim().parse().unwrap(), n.trim().parse().unwrap()),
        None => {
            let n: usize = body.trim().parse().unwrap();
            (n, n)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::for_case("strategy-tests", 0)
    }

    #[test]
    fn ranges_and_maps() {
        let mut r = rng();
        for _ in 0..100 {
            let v = (0i64..8).generate(&mut r);
            assert!((0..8).contains(&v));
            let s = (0i64..8).prop_map(|v| v.to_string()).generate(&mut r);
            assert!(s.parse::<i64>().unwrap() < 8);
        }
    }

    #[test]
    fn class_patterns() {
        let mut r = rng();
        for _ in 0..50 {
            let s = "[a-z]{1,8}".generate(&mut r);
            assert!((1..=8).contains(&s.chars().count()));
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));
            let t = "\\PC{0,120}".generate(&mut r);
            assert!(t.chars().count() <= 120);
        }
    }

    #[test]
    fn oneof_and_just() {
        let mut r = rng();
        let s = crate::prop_oneof![Just("a".to_string()), "[b-d]{1,2}".prop_map(|x| x),];
        for _ in 0..50 {
            let v = s.generate(&mut r);
            assert!(!v.is_empty() && v.len() <= 2);
        }
    }

    #[test]
    fn recursion_bounded() {
        let mut r = rng();
        let depth_strategy = Just(0u32).prop_recursive(3, 8, 2, |inner| inner.prop_map(|d| d + 1));
        for _ in 0..200 {
            assert!(depth_strategy.generate(&mut r) <= 3);
        }
    }
}
