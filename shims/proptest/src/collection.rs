//! `prop::collection` analogue — sized `Vec` strategies.

use std::ops::Range;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Element-count bound for `vec`; converts from ranges and exact counts.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    min: usize,
    max: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: std::ops::RangeInclusive<usize>) -> SizeRange {
        SizeRange {
            min: *r.start(),
            max: *r.end(),
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange { min: n, max: n }
    }
}

pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = rng.usize_inclusive(self.size.min, self.size.max);
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_respected() {
        let mut rng = TestRng::for_case("collection-tests", 0);
        for _ in 0..50 {
            let v = vec(0i64..10, 2..4).generate(&mut rng);
            assert!((2..=3).contains(&v.len()));
            let exact = vec(0usize..5, 3).generate(&mut rng);
            assert_eq!(exact.len(), 3);
        }
    }
}
