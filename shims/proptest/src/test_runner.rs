//! Run configuration and the deterministic per-test RNG.

/// `ProptestConfig` analogue — only `cases` is honoured.
#[derive(Clone, Debug)]
pub struct Config {
    pub cases: u32,
}

impl Config {
    pub fn with_cases(cases: u32) -> Config {
        Config { cases }
    }
}

impl Default for Config {
    fn default() -> Config {
        Config { cases: 64 }
    }
}

/// SplitMix64 seeded from the test name and case index, so every case is
/// reproducible without a persisted seed file.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn for_case(test_name: &str, case: u32) -> TestRng {
        // FNV-1a over the name, mixed with the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng {
            state: h ^ ((case as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform usize in `[lo, hi]` (inclusive).
    pub fn usize_inclusive(&mut self, lo: usize, hi: usize) -> usize {
        debug_assert!(lo <= hi);
        let span = (hi - lo) as u128 + 1;
        lo + ((self.next_u64() as u128) % span) as usize
    }

    /// Uniform i128 in `[lo, hi]` (inclusive) — wide enough for every
    /// integer strategy the shim supports.
    pub fn i128_inclusive(&mut self, lo: i128, hi: i128) -> i128 {
        debug_assert!(lo <= hi);
        let span = (hi - lo) as u128 + 1;
        lo + ((self.next_u64() as u128) % span) as i128
    }

    pub fn bool_with(&mut self, p: f64) -> bool {
        ((self.next_u64() >> 11) as f64 / (1u64 << 53) as f64) < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_name_and_case() {
        let mut a = TestRng::for_case("t", 3);
        let mut b = TestRng::for_case("t", 3);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::for_case("t", 4);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn inclusive_bounds_hit() {
        let mut rng = TestRng::for_case("bounds", 0);
        let mut saw_lo = false;
        let mut saw_hi = false;
        for _ in 0..200 {
            match rng.usize_inclusive(0, 3) {
                0 => saw_lo = true,
                3 => saw_hi = true,
                _ => {}
            }
        }
        assert!(saw_lo && saw_hi);
    }
}
