//! Minimal HTTP client for the hardened query frontend — and, with no
//! arguments, a self-serving demo that starts a server in-process,
//! exercises the protocol end to end, and drains it gracefully.
//!
//! ```sh
//! # Self-contained demo (starts its own server on a free port):
//! cargo run --example client
//!
//! # Against an already-running `xqr --serve` instance:
//! cargo run --example client -- 127.0.0.1:7700 "1 + 1"
//! ```
//!
//! The client side is deliberately dependency-free std TCP — the same
//! dozen lines any caller needs: write a `POST /query` with a
//! `Content-Length`, read to EOF, split head from body. Errors come
//! back as JSON with a stable `XQR*` code; `429`/`503` carry a
//! `Retry-After` hint worth honouring.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use xqr::engine::{
    QueryServer, QueryService, ServerConfig, ServiceConfig, SessionConfig, TenantQuotas,
};
use xqr::xmark::{generate, GenOptions};

/// One request/response exchange: returns `(status, body)`.
fn post_query(addr: &str, query: &str, headers: &[(&str, &str)]) -> std::io::Result<(u16, String)> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(10)))?;
    let mut extra = String::new();
    for (k, v) in headers {
        extra.push_str(&format!("{k}: {v}\r\n"));
    }
    stream.write_all(
        format!(
            "POST /query HTTP/1.1\r\nHost: xqr\r\nContent-Length: {}\r\n{extra}\r\n{query}",
            query.len()
        )
        .as_bytes(),
    )?;
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw)?;
    let text = String::from_utf8_lossy(&raw);
    let (head, body) = text.split_once("\r\n\r\n").unwrap_or((&text, ""));
    let status = head
        .lines()
        .next()
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    Ok((status, body.to_string()))
}

fn get(addr: &str, path: &str) -> std::io::Result<(u16, String)> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(10)))?;
    stream.write_all(format!("GET {path} HTTP/1.1\r\nHost: xqr\r\n\r\n").as_bytes())?;
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw)?;
    let text = String::from_utf8_lossy(&raw);
    let (head, body) = text.split_once("\r\n\r\n").unwrap_or((&text, ""));
    let status = head
        .lines()
        .next()
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    Ok((status, body.to_string()))
}

fn main() {
    let mut args = std::env::args().skip(1);
    let (addr, query, server) = match args.next() {
        // Client mode: talk to an existing server.
        Some(addr) => (
            addr,
            args.next().unwrap_or_else(|| "1 + 1".to_string()),
            None,
        ),
        // Demo mode: start a server in-process on a free port.
        None => {
            let svc = Arc::new(QueryService::new(ServiceConfig {
                workers: 2,
                queue_capacity: 32,
                ..ServiceConfig::default()
            }));
            svc.bind_document("auction.xml", generate(&GenOptions::for_bytes(60_000)));
            let cfg = ServerConfig {
                sessions: SessionConfig::default()
                    .with_tenant("bursty", TenantQuotas::default().with_rate(1, 1)),
                drain_deadline: Duration::from_secs(2),
                ..ServerConfig::default()
            };
            let server = QueryServer::start(svc, "127.0.0.1:0", cfg).expect("bind server");
            let addr = server.addr().to_string();
            println!("listening on {addr}");
            (
                addr,
                "count(doc('auction.xml')//item)".to_string(),
                Some(server),
            )
        }
    };

    let (status, body) = post_query(&addr, &query, &[]).expect("query roundtrip");
    println!("query     -> {status}: {body}");
    let (status, body) = get(&addr, "/readyz").expect("readyz");
    println!("/readyz   -> {status}: {}", body.trim());

    if let Some(mut server) = server {
        // Demo the per-tenant quota: the second burst request is
        // refused with the stable XQRG0009 code and a Retry-After.
        let tenant = [("X-Tenant", "bursty")];
        let (s1, _) = post_query(&addr, "1", &tenant).expect("tenant ok");
        let (s2, body) = post_query(&addr, "1", &tenant).expect("tenant limited");
        println!("tenant    -> first {s1}, burst {s2}: {}", body.trim());
        // And a per-request budget trip mapping to 413.
        let (s, body) = post_query(
            &addr,
            "for $x in 1 to 1000000 where $x > 1 return $x",
            &[("X-Max-Tuples", "100")],
        )
        .expect("budget trip");
        println!("budget    -> {s}: {}", body.trim());
        let report = server.stop(None);
        println!(
            "drained   -> queued shed {}, cancelled {}, in time: {}",
            report.service.drained_queued, report.service.cancelled, report.conns_drained_in_time
        );
    }
}
