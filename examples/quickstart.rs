//! Quickstart: load a document, run XQuery, inspect the optimized plan.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use xqr::{CompileOptions, Engine, ExecutionMode};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut engine = Engine::new();
    engine.bind_document(
        "library.xml",
        r#"<library>
             <book year="2004"><title>Ordered Contexts</title><author>May</author></book>
             <book year="2006"><title>Algebraic XQuery</title><author>Re</author>
                               <author>Simeon</author><author>Fernandez</author></book>
             <book year="2003"><title>Projecting XML</title><author>Marian</author>
                               <author>Simeon</author></book>
           </library>"#,
    )?;

    // Plain path + predicate.
    println!(
        "books since 2004 : {}",
        engine.execute_to_string(
            "for $b in doc('library.xml')//book[@year >= 2004] \
             order by $b/title return $b/title/text()"
        )?
    );

    // FLWOR with construction.
    println!(
        "author index     : {}",
        engine.execute_to_string(
            "for $a in distinct-values(doc('library.xml')//author/text()) \
             let $titles := for $b in doc('library.xml')//book \
                            where $b/author/text() = $a return $b/title/text() \
             order by $a \
             return <author name=\"{$a}\" books=\"{count($titles)}\"/>"
        )?
    );

    // Inspect the optimized algebra plan: the nested FLWOR above becomes a
    // GroupBy over an outer join (the paper's Section 5 pipeline).
    let prepared = engine.prepare(
        "for $a in distinct-values(doc('library.xml')//author/text()) \
         let $titles := for $b in doc('library.xml')//book \
                        where $b/author/text() = $a return $b/title/text() \
         return count($titles)",
        &CompileOptions::mode(ExecutionMode::OptimHashJoin),
    )?;
    println!(
        "\nrewrites applied : {:?}",
        prepared.rewrite_stats().unwrap().applications
    );
    println!("\noptimized plan:\n{}", prepared.explain());

    // Every execution mode computes the same answer.
    for mode in ExecutionMode::ALL {
        let out = engine
            .prepare(
                "sum(for $i in (1 to 100) where $i mod 3 = 0 return $i)",
                &CompileOptions::mode(mode),
            )?
            .run_to_string(&engine)?;
        println!("{:<28} -> {out}", mode.label());
    }
    Ok(())
}
