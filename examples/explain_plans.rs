//! Walk through the paper's Section 2/5 running example: compile the XMark
//! Q8 variant naively (plan P1), then show the rewriting pipeline arriving
//! at the GroupBy/LOuterJoin plan P2, rule by rule.
//!
//! ```sh
//! cargo run --example explain_plans
//! ```

use xqr::core::{compile_module, pretty, rewrite_module};
use xqr::frontend::frontend;

const QUERY: &str = "for $p in $auction//person \
     let $a as element(*,Auction)* := \
        for $t in $auction//closed_auction \
        where $t/buyer/@person = $p/@id \
        return validate { $t } \
     return <item person=\"{$p/name/text()}\">{ count($a//element(*,USSeller)) }</item>";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("Query (paper Section 2, XMark Q8 variant):\n{QUERY}\n");

    let core = frontend(&format!("declare variable $auction external; {QUERY}"))?;
    let mut compiled = compile_module(&core);

    println!("— naive plan (P1): compilation rules of Section 4 —\n");
    println!("{}", pretty::indented(&compiled.body));

    let stats = rewrite_module(&mut compiled);
    println!("— rewritings applied (Fig. 5) —\n");
    for (rule, n) in &stats.applications {
        println!("  {n}× ({rule})");
    }

    println!("\n— optimized plan (P2): GroupBy over LOuterJoin —\n");
    println!("{}", pretty::indented(&compiled.body));
    Ok(())
}
