//! Clio-style schema mapping: run the N2/N3 nested mapping queries that
//! motivate the paper (Fig. 1) over a generated DBLP source, and show the
//! speedup unnesting + hash joins give over naive evaluation.
//!
//! ```sh
//! cargo run --release --example schema_mapping
//! ```

use std::time::Instant;

use xqr::clio::{generate_dblp, mapping_query, DblpOptions};
use xqr::{CompileOptions, Engine, ExecutionMode};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let xml = generate_dblp(&DblpOptions::for_bytes(40_000));
    let mut engine = Engine::new();
    engine.bind_document("dblp.xml", &xml)?;
    println!("DBLP source: {} bytes", xml.len());

    let n2 = mapping_query(2);
    println!("\nN2 mapping query (doubly nested, 1 join):\n  {n2}\n");

    let out = engine.execute_to_string(&n2)?;
    println!(
        "mapped output (first 300 chars):\n  {}…\n",
        &out[..out.len().min(300)]
    );

    for levels in [2usize, 3] {
        let q = mapping_query(levels);
        println!("N{levels}:");
        for mode in [
            ExecutionMode::NoAlgebra,
            ExecutionMode::AlgebraNoOptim,
            ExecutionMode::OptimNestedLoop,
            ExecutionMode::OptimHashJoin,
        ] {
            let prepared = engine.prepare(&q, &CompileOptions::mode(mode))?;
            let t = Instant::now();
            prepared.run(&engine)?;
            println!("  {:<28} {:>10.2?}", mode.label(), t.elapsed());
        }
    }

    // What the optimizer did to N3.
    let prepared = engine.prepare(
        &mapping_query(3),
        &CompileOptions::mode(ExecutionMode::OptimHashJoin),
    )?;
    println!(
        "\nN3 rewrites: {:?}",
        prepared.rewrite_stats().unwrap().applications
    );
    let plan = prepared.explain();
    let joins = plan.matches("LOuterJoin").count();
    let groupbys = plan.matches("GroupBy").count();
    println!(
        "optimized N3 plan: {groupbys} GroupBy operators over a cascade of {joins} outer joins"
    );
    Ok(())
}
