//! Runs a query service with the HTTP scrape listener attached and keeps
//! an XMark workload flowing so the endpoints have live data — the
//! target CI curls during the observability job.
//!
//! ```sh
//! cargo run --example observe_scrape -- 127.0.0.1:9184 5
//! ```
//!
//! Arguments: the listen address (default `127.0.0.1:0`) and how many
//! seconds to keep serving (default 5). The bound address is printed on
//! the first line as `listening on <addr>` so a caller using port 0 can
//! discover the port. While running, these endpoints answer:
//!
//! * `/metrics`      — Prometheus text exposition (process + service)
//! * `/metrics.json` — process-wide metrics registry as JSON
//! * `/observe.json` — the full lifecycle report: phase latency
//!   quantiles, the per-shape table, the journal, the slow-query log
//!
//! On exit it prints the final human-readable lifecycle report.

use std::time::{Duration, Instant};

use xqr::engine::{QueryRequest, QueryService, ServiceConfig};
use xqr::xmark::{generate, query, GenOptions, QUERY_COUNT};

fn main() {
    let mut args = std::env::args().skip(1);
    let addr = args.next().unwrap_or_else(|| "127.0.0.1:0".to_string());
    let secs: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(5).max(1);

    let svc = QueryService::new(ServiceConfig {
        workers: 2,
        queue_capacity: 64,
        ..ServiceConfig::default()
    });
    svc.bind_document("auction.xml", generate(&GenOptions::for_bytes(80_000)));

    let server = svc
        .serve_metrics(addr.as_str())
        .expect("bind scrape listener");
    println!("listening on {}", server.addr());

    // Keep a mixed workload flowing (with an occasional deliberately
    // slow-ish join) so scrapes observe moving counters.
    let deadline = Instant::now() + Duration::from_secs(secs);
    let mut i = 0usize;
    while Instant::now() < deadline {
        let n = 1 + i % QUERY_COUNT;
        if let Err(e) = svc.run(QueryRequest::new(query(n))) {
            eprintln!("Q{n}: {e}");
        }
        i += 1;
        std::thread::sleep(Duration::from_millis(10));
    }

    let report = svc.observe();
    println!("{}", report.render_text());
    server.shutdown();
}
