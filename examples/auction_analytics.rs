//! Auction-site analytics over a generated XMark document — the workload
//! family the paper's evaluation uses — comparing the nested-loop and
//! typed-hash join algorithms on the same plans.
//!
//! ```sh
//! cargo run --release --example auction_analytics
//! ```

use std::time::Instant;

use xqr::{CompileOptions, Engine, ExecutionMode};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let xml = xqr::xmark::generate(&xqr::xmark::GenOptions::for_bytes(500_000));
    let mut engine = Engine::new();
    engine.bind_document("auction.xml", &xml)?;
    println!("auction document: {} bytes", xml.len());

    // Top buyers: the paper's running example (XMark Q8 family).
    let top_buyers = "let $auction := doc('auction.xml') return \
         (for $p in $auction/site/people/person \
          let $bought := for $t in $auction/site/closed_auctions/closed_auction \
                         where $t/buyer/@person = $p/@id return $t \
          order by count($bought) descending, $p/name/text() \
          return <buyer name=\"{$p/name/text()}\" auctions=\"{count($bought)}\"/>)[position() <= 5]";
    println!("\ntop 5 buyers:");
    for line in engine.execute_to_string(top_buyers)?.split("/><").take(5) {
        println!("  {line}");
    }

    // Revenue by item category: a 3-way join.
    let by_category = "let $auction := doc('auction.xml') return \
         (for $c in $auction/site/categories/category \
          let $sold := for $t in $auction/site/closed_auctions/closed_auction \
                       for $i in $auction/site/regions//item \
                       where $t/itemref/@item = $i/@id \
                         and $i/incategory/@category = $c/@id \
                       return $t/price \
          order by sum($sold) descending \
          return <category name=\"{$c/name/text()}\" revenue=\"{round(sum($sold))}\"/>)[position() <= 3]";
    println!("\ntop 3 categories by revenue:");
    println!("  {}", engine.execute_to_string(by_category)?);

    // The same prepared plans, different physical joins.
    println!("\njoin algorithm comparison (same optimized plan):");
    for (label, mode) in [
        ("nested-loop", ExecutionMode::OptimNestedLoop),
        ("hash  (Fig.6)", ExecutionMode::OptimHashJoin),
        ("sort  (B-tree)", ExecutionMode::OptimSortJoin),
    ] {
        let q = engine.prepare(top_buyers, &CompileOptions::mode(mode))?;
        let t = Instant::now();
        let out = q.run(&engine)?;
        println!(
            "  {label:<14} {:>10.2?}  ({} buyers)",
            t.elapsed(),
            out.len()
        );
    }
    Ok(())
}
